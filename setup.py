"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 660 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` take the legacy
``setup.py develop`` path, which needs neither.  All real metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
