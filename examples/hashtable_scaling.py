#!/usr/bin/env python3
"""Thread-scaling of remote-memory hash probes across six systems.

A miniature of the paper's Figure 8: a hash table with 95 % of its
records in remote memory, probed by 1..8 threads through each
communication system.  Watch three things:

1. synchronous RDMA is stuck near the bottom (every probe burns a full
   busy-polled round trip of CPU),
2. asynchronous RDMA is an order of magnitude better but still pays
   ~630 ns of verbs per probe,
3. Cowbird tracks the local-memory upper bound.

Run:  python examples/hashtable_scaling.py
"""

from repro.experiments.common import run_microbench

SYSTEMS = ("one-sided", "async", "cowbird-nb", "cowbird", "local")
THREADS = (1, 2, 4, 8)
RECORD_BYTES = 64


def main() -> None:
    print(f"Hash-table probes, {RECORD_BYTES} B records, 95% remote (MOPS)")
    header = f"{'system':>12s}" + "".join(f"{t:>8d}T" for t in THREADS)
    print(header)
    for system in SYSTEMS:
        row = []
        for threads in THREADS:
            result = run_microbench(
                system, threads, record_bytes=RECORD_BYTES,
                ops_per_thread=300,
                pipeline_depth=512 if system.startswith("cowbird") else 100,
            )
            row.append(result.throughput_mops)
        print(f"{system:>12s}" + "".join(f"{v:>9.2f}" for v in row))


if __name__ == "__main__":
    main()
