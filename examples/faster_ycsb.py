#!/usr/bin/env python3
"""FASTER with a larger-than-memory working set, on four storage layers.

Reproduces the paper's case study (Section 7) at example scale: a
FASTER-like KV store whose hybrid log spills cold pages to a storage
device, serving a Zipfian YCSB workload with 4 threads.  Swapping the
IDevice between an SSD, synchronous RDMA, Cowbird, and pure local
memory shows exactly the Figure 9 story: remote memory crushes the SSD,
and Cowbird nearly matches local memory because issuing its I/O costs
the application threads almost nothing.

Run:  python examples/faster_ycsb.py
"""

from repro.experiments.faster_bench import run_faster_bench

SYSTEMS = ("ssd", "one-sided", "async", "cowbird", "local")
THREADS = 4


def main() -> None:
    print(f"FASTER + YCSB (zipfian 0.99), 64 B values, {THREADS} threads")
    print(f"{'backend':>12s} {'MOPS':>9s} {'comm-ratio':>11s} {'device reads':>13s}")
    baseline = None
    for system in SYSTEMS:
        result = run_faster_bench(
            system, THREADS,
            value_bytes=64, record_count=20_000, ops_per_thread=300,
            memory_fraction=0.25,
            pipeline_depth=128 if system.startswith("cowbird") else 64,
        )
        if system == "ssd":
            baseline = result.throughput_mops
        speedup = (
            f"  ({result.throughput_mops / baseline:.0f}x vs SSD)"
            if baseline and system != "ssd" else ""
        )
        print(
            f"{system:>12s} {result.throughput_mops:>9.3f} "
            f"{result.communication_ratio:>11.2f} "
            f"{result.device_fraction:>12.0%}{speedup}"
        )
    print("\nThe shape to notice: remote memory >> SSD, and Cowbird")
    print("approaches local memory because the app threads never touch RDMA.")


if __name__ == "__main__":
    main()
