#!/usr/bin/env python3
"""Tour of the telemetry layer: metrics, spans, and trace export.

Activates a :class:`~repro.telemetry.Telemetry` instance, runs a few
reads through a Cowbird-Spot deployment built inside the activation
scope, and then inspects what was recorded:

  1. hierarchical counters/gauges (NIC posts, link bytes, QP windows),
  2. the engine's request-latency histogram,
  3. span-tracing totals per name (verbs, link serialization, engine
     batches), all timestamped on the *simulated* clock,
  4. a Chrome ``trace_event`` export you can open in Perfetto
     (https://ui.perfetto.dev) to see the run on a timeline.

Telemetry is a pure observer: running this with the telemetry removed
produces byte-identical simulation results.

Run:  python examples/telemetry_tour.py
"""

import tempfile

from repro import telemetry
from repro.cowbird.deploy import deploy_cowbird


def main() -> None:
    tel = telemetry.Telemetry()
    with telemetry.activate(tel):
        dep = deploy_cowbird(engine="spot", remote_bytes=1 << 16)
        instance = dep.instances[0]
        thread = dep.compute.cpu.thread("app")
        for i in range(8):
            dep.pool_region().write(
                dep.region.translate(i * 64), f"record-{i}".encode().ljust(64)
            )

        def app():
            poll = instance.poll_create()
            for i in range(8):
                request_id = yield from instance.async_read(
                    thread, 0, i * 64, 64
                )
                instance.poll_add(poll, request_id)
            done = 0
            while done < 8:
                events = yield from instance.poll_wait(thread, poll, max_ret=8)
                done += len(events)

        dep.sim.run_until_complete(dep.sim.spawn(app()), deadline=50_000_000)

    print("== counters and gauges (hierarchical dotted names)\n")
    for name, value in sorted(tel.snapshot("nic.compute.").items()):
        print(f"  {name} = {value}")
    links = tel.snapshot("link.")
    for name in sorted(links):
        if name.endswith(".tx_bytes"):
            print(f"  {name} = {links[name]}")

    print("\n== the agent's request-latency histogram\n")
    hist = tel.metrics.histogram("spot.request_latency_ns")
    print(f"  count={hist.count}  mean={hist.mean():.0f}ns  max={hist.max:.0f}ns")
    for bound, bucket in zip(hist.bounds, hist.bucket_counts):
        if bucket:
            print(f"  <= {bound:>12.0f} ns : {'#' * bucket} ({bucket})")

    print("\n== span totals (sim-clock intervals)\n")
    for name, count in sorted(tel.tracer.span_names().items()):
        print(f"  {name:<18s} x{count}")
    print(f"\n  last event ends at sim t={tel.tracer.last_timestamp_ns():.0f}ns")

    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", prefix="telemetry_tour_", delete=False
    ) as handle:
        tel.write_chrome_trace(handle)
        print(f"\nchrome trace written to {handle.name} (open in Perfetto)")


if __name__ == "__main__":
    main()
