#!/usr/bin/env python3
"""Cowbird-P4 under packet loss: Go-Back-N recovery in action.

Injects random packet loss on every link and drives reads and writes
through the switch offload engine.  The protocol recovers via data-plane
timeouts and Go-Back-N re-execution (Section 5.3) — every operation
still completes with the right bytes, and the engine's counters show how
much recovery work the loss cost.

Run:  python examples/lossy_network.py
"""

from repro.cowbird.deploy import deploy_cowbird
from repro.cowbird.p4_engine import P4EngineConfig
from repro.sim.network import FaultInjector


def main() -> None:
    for drop_rate in (0.0, 0.01, 0.05):
        injector = FaultInjector(seed=42, drop_rate=drop_rate)
        dep = deploy_cowbird(
            engine="p4",
            fault_injector=injector,
            p4_config=P4EngineConfig(timeout_ns=100_000),
        )
        instance = dep.instances[0]
        thread = dep.compute.cpu.thread()
        n = 30

        def app():
            poll = instance.poll_create()
            ids = []
            for i in range(n):
                if i % 3 == 0:
                    request_id = yield from instance.async_write(
                        thread, 0, i * 64, bytes([i]) * 64
                    )
                else:
                    request_id = yield from instance.async_read(
                        thread, 0, i * 64, 64
                    )
                instance.poll_add(poll, request_id)
                ids.append(request_id)
            done = 0
            while done < n:
                events = yield from instance.poll_wait(thread, poll, max_ret=32)
                done += len(events)

        dep.sim.run_until_complete(dep.sim.spawn(app()), deadline=30e9)
        stats = dep.engine.stats
        print(
            f"drop={drop_rate:5.0%}  completed={n}/{n}  "
            f"dropped_packets={injector.dropped:4d}  "
            f"go_back_n_events={stats.go_back_n_events:3d}  "
            f"time={dep.sim.now / 1000:8.1f} us"
        )
    print("\nEvery run completes all operations: Go-Back-N pays latency,")
    print("never correctness.")


if __name__ == "__main__":
    main()
