#!/usr/bin/env python3
"""The economics: what offloading disaggregation is worth (Table 1).

Combines the paper's Table 1 spot prices with the measured engine
footprint: one spot core services all application threads, and one
engine can multiplex several compute nodes (Section 5.4's TDM).  The
output shows the net cost-efficiency gain per provider.

Run:  python examples/offload_cost.py
"""

from repro.cloud.pricing import (
    PRICE_TABLE,
    cost_efficiency_gain,
    format_table,
    offload_cost_per_compute_node,
)
from repro.cowbird.deploy import deploy_cowbird


def measure_engine_utilization() -> float:
    """Run a burst of traffic and measure the spot core's duty cycle."""
    dep = deploy_cowbird(engine="spot")
    instance = dep.instances[0]
    thread = dep.compute.cpu.thread()

    def app():
        poll = instance.poll_create()
        for i in range(200):
            request_id = yield from instance.async_read(thread, 0, (i % 128) * 64, 64)
            instance.poll_add(poll, request_id)
        done = 0
        while done < 200:
            events = yield from instance.poll_wait(thread, poll, max_ret=64)
            done += len(events)

    dep.sim.run_until_complete(dep.sim.spawn(app()), deadline=30e9)
    return dep.engine.agent_cpu_ns() / dep.sim.now


def main() -> None:
    print(format_table())
    utilization = measure_engine_utilization()
    print(f"\nMeasured agent-core duty cycle for one busy instance: "
          f"{utilization:.0%}")
    print("\nCost-efficiency gain of offloading (freeing ~80% of 8 compute "
          "cores\nfor one spot core), by compute nodes sharing the agent:")
    print(f"{'provider':>10s}{'1 node':>10s}{'4 nodes':>10s}{'agent $/h/node':>17s}")
    for price in PRICE_TABLE:
        one = cost_efficiency_gain(price, compute_nodes_served=1)
        four = cost_efficiency_gain(price, compute_nodes_served=4)
        hourly = offload_cost_per_compute_node(price, compute_nodes_served=4)
        print(f"{price.provider:>10s}{one:>10.0%}{four:>10.0%}{hourly:>15.5f}$")


if __name__ == "__main__":
    main()
