#!/usr/bin/env python3
"""Watch the Cowbird-P4 protocol on the wire, packet by packet.

Attaches a packet sniffer to the compute node and memory pool, runs one
asynchronous read through the switch offload engine, and prints the
resulting RoCEv2 trace.  You can see the whole Section 5.2 sequence:

  1. the switch's low-priority probe (READ of the green block),
  2. the recycled metadata fetch (READ of the request ring),
  3. the Execute-phase read of the memory pool,
  4. the spoofed WRITE delivering the payload to the compute node,
  5. the Phase IV bookkeeping WRITE (red block update).

Run:  python examples/protocol_trace.py
"""

from repro.cowbird.deploy import deploy_cowbird
from repro.rdma.sniffer import PacketSniffer


def main() -> None:
    dep = deploy_cowbird(engine="p4", remote_bytes=1 << 16)
    sniffer = PacketSniffer(dep.sim)
    sniffer.attach_nic(dep.compute.nic, "rx@compute")
    sniffer.attach_nic(dep.pool_host.nic, "rx@pool")

    instance = dep.instances[0]
    thread = dep.compute.cpu.thread("app")
    dep.pool_region().write(dep.region.translate(256), b"the payload bytes")

    def app():
        poll = instance.poll_create()
        request_id = yield from instance.async_read(thread, 0, 256, 17)
        instance.poll_add(poll, request_id)
        events = yield from instance.poll_wait(thread, poll)
        return instance.fetch_response(events[0].request_id)

    data = dep.sim.run_until_complete(dep.sim.spawn(app()), deadline=50_000_000)

    print("wire trace (RoCEv2 packets as delivered):\n")
    print(sniffer.render(limit=20))
    print(f"\nread returned: {data!r}")
    print("\nopcode totals:", dict(sorted(sniffer.opcode_counts().items())))
    stats = dep.engine.stats
    print(f"packets recycled by the switch: {stats.recycled_packets}")
    print(f"probes sent: {stats.probes_sent}")


if __name__ == "__main__":
    main()
