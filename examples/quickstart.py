#!/usr/bin/env python3
"""Quickstart: read and write disaggregated memory through Cowbird.

Stands up the full simulated testbed — a compute node, a memory pool,
and a spot-VM offload engine — then issues asynchronous reads and writes
with the Table 2 API.  Note what the output shows: the compute node's
NIC initiates *zero* RDMA messages, and the per-operation CPU cost on
the application thread is tens of nanoseconds.

Run:  python examples/quickstart.py
"""

from repro.cowbird.deploy import deploy_cowbird


def main() -> None:
    # One call builds the Section 7 testbed and starts the offload
    # engine ("spot" = the Section 6 agent; try engine="p4" too).
    dep = deploy_cowbird(engine="spot", remote_bytes=1 << 20)
    sim = dep.sim
    instance = dep.instances[0]
    thread = dep.compute.cpu.thread("app")

    # Seed some remote memory directly (as an already-running producer
    # would have): offset 4096 in remote region 0.
    dep.pool_region().write(dep.region.translate(4096), b"hello from the pool!")

    def app():
        poll = instance.poll_create()

        # --- asynchronous read: purely local stores, returns a req id.
        read_id = yield from instance.async_read(
            thread, region_id=0, src_offset=4096, length=20
        )
        instance.poll_add(poll, read_id)

        # --- asynchronous write of a payload to remote offset 8192.
        write_id = yield from instance.async_write(
            thread, region_id=0, dest_offset=8192,
            data=b"written via cowbird",
        )
        instance.poll_add(poll, write_id)

        # --- epoll-style completion wait.
        done = 0
        while done < 2:
            events = yield from instance.poll_wait(thread, poll, max_ret=4)
            done += len(events)

        return instance.fetch_response(read_id)

    process = sim.spawn(app())
    payload = sim.run_until_complete(process, deadline=50_000_000)

    print(f"read returned:        {payload!r}")
    print(
        "write visible in pool:",
        dep.pool_region().read(dep.region.translate(8192), 19),
    )
    print(f"simulated time:       {sim.now / 1000:.1f} us")
    print(f"compute-side RDMA messages: {dep.compute.nic.stats.messages_initiated}")
    comm_ns = thread.stats.cpu_ns.get("comm", 0.0)
    print(f"app-thread communication CPU: {comm_ns:.0f} ns total "
          f"({comm_ns / 2:.0f} ns per operation)")
    print(f"offload-engine CPU consumed:  {dep.engine.agent_cpu_ns():.0f} ns")


if __name__ == "__main__":
    main()
