"""ScenarioSpec loading/validation and the SystemRegistry contract."""

import json
from pathlib import Path

import pytest

from repro.cluster import (
    SYSTEMS,
    BuildContext,
    BuiltSystem,
    EngineSpec,
    PoolSpec,
    ScenarioError,
    ScenarioSpec,
    SystemRegistry,
    WorkloadSpec,
    load_scenario,
)
from repro.cluster.spec import _parse_toml_subset

SCENARIO_DIR = Path(__file__).resolve().parents[1] / "examples" / "scenarios"

ALL_SYSTEMS = (
    "local", "two-sided", "one-sided", "async", "cowbird-nb", "cowbird",
    "cowbird-p4", "redy", "aifm", "ssd",
)


class TestSystemRegistry:
    def test_all_ten_systems_registered_in_legend_order(self):
        assert SYSTEMS.names() == ALL_SYSTEMS

    def test_only_cowbird_systems_support_sharding(self):
        sharded = {s for s in SYSTEMS.names() if SYSTEMS.supports_sharding(s)}
        assert sharded == {"cowbird", "cowbird-nb", "cowbird-p4"}

    def test_unknown_system_raises(self):
        with pytest.raises(ValueError, match="unknown system"):
            SYSTEMS.build("no-such-system", None)

    def test_duplicate_registration_rejected(self):
        registry = SystemRegistry()

        @registry.register("thing")
        def build_thing(ctx):
            return BuiltSystem(backends=[])

        with pytest.raises(ValueError, match="already registered"):
            registry.register("thing")(build_thing)

    def test_third_party_registration_is_one_decorator(self):
        registry = SystemRegistry()

        @registry.register("mine", sharded=True)
        def build_mine(ctx):
            return BuiltSystem(backends=["b"] * ctx.threads)

        assert "mine" in registry
        assert registry.supports_sharding("mine")
        ctx = BuildContext(
            bed=None, compute=None, threads=3, remote_bytes=0, cost=None
        )
        assert registry.build("mine", ctx).backends == ["b", "b", "b"]


def _spec(**overrides) -> ScenarioSpec:
    base = dict(name="t", system="cowbird")
    base.update(overrides)
    return ScenarioSpec(**base)


class TestValidation:
    def test_valid_default_spec_passes(self):
        _spec().validate()

    def test_unknown_system_rejected(self):
        with pytest.raises(ScenarioError, match="unknown system"):
            _spec(system="bogus").validate()

    def test_threads_capped_by_compute_capacity(self):
        with pytest.raises(ScenarioError, match="exceeds compute capacity"):
            _spec(workload=WorkloadSpec(threads=17)).validate()

    def test_sharding_limited_to_cowbird(self):
        _spec(pool=PoolSpec(shards=2)).validate()
        with pytest.raises(ScenarioError, match="sharded"):
            _spec(system="redy", pool=PoolSpec(shards=2)).validate()

    def test_engine_config_limited_to_cowbird(self):
        _spec(engine=EngineSpec(config={"batch_size": 8})).validate()
        with pytest.raises(ScenarioError, match="engine.config"):
            _spec(system="local",
                  engine=EngineSpec(config={"batch_size": 8})).validate()

    @pytest.mark.parametrize("workload", [
        WorkloadSpec(threads=0),
        WorkloadSpec(record_bytes=0),
        WorkloadSpec(ops_per_thread=0),
        WorkloadSpec(num_records=0),
        WorkloadSpec(local_fraction=1.5),
        WorkloadSpec(pipeline_depth=0),
    ])
    def test_bad_workloads_rejected(self, workload):
        with pytest.raises(ScenarioError):
            _spec(workload=workload).validate()

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ScenarioError, match="shards"):
            _spec(pool=PoolSpec(shards=0)).validate()


class TestSerialization:
    def test_round_trip_is_lossless(self):
        spec = _spec(
            seed=7,
            pool=PoolSpec(shards=2),
            engine=EngineSpec(config={"batch_size": 25}),
            workload=WorkloadSpec(threads=4, record_bytes=64),
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_to_json_is_stable(self):
        spec = _spec()
        assert spec.to_json() == spec.to_json()
        assert json.loads(spec.to_json())["system"] == "cowbird"

    def test_unknown_keys_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario key"):
            ScenarioSpec.from_dict({"name": "x", "system": "local", "oops": 1})
        with pytest.raises(ScenarioError, match="unknown key"):
            ScenarioSpec.from_dict(
                {"name": "x", "system": "local", "workload": {"treads": 2}}
            )

    def test_missing_required_keys_rejected(self):
        with pytest.raises(ScenarioError, match="missing"):
            ScenarioSpec.from_dict({"name": "x"})


class TestLoading:
    def test_load_json(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(
            {"name": "j", "system": "local", "workload": {"threads": 2}}
        ))
        spec = load_scenario(path)
        assert spec.system == "local"
        assert spec.workload.threads == 2

    def test_load_toml(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text(
            'name = "t"\nsystem = "cowbird"\nseed = 8\n'
            "[pool]\nshards = 2\n"
            "[workload]\nthreads = 4\nlocal_fraction = 0.25\n"
        )
        spec = load_scenario(path)
        assert spec.pool.shards == 2
        assert spec.workload.local_fraction == 0.25
        spec.validate()

    def test_checked_in_examples_load_and_validate(self):
        for name in ("fig08_point.toml", "fig08_point_sharded.toml"):
            spec = load_scenario(SCENARIO_DIR / name)
            spec.validate()
            assert spec.system == "cowbird"

    def test_unsupported_suffix_rejected(self, tmp_path):
        path = tmp_path / "s.yaml"
        path.write_text("name: x")
        with pytest.raises(ScenarioError, match="unsupported scenario format"):
            load_scenario(path)

    def test_invalid_json_reports_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ScenarioError, match="bad.json"):
            load_scenario(path)


class TestTomlFallbackParser:
    """The subset parser must agree with tomllib on scenario files."""

    def test_matches_tomllib_on_example_files(self):
        tomllib = pytest.importorskip("tomllib")
        for name in ("fig08_point.toml", "fig08_point_sharded.toml"):
            text = (SCENARIO_DIR / name).read_text()
            assert _parse_toml_subset(text, name) == tomllib.loads(text)

    def test_value_types_and_dotted_sections(self):
        parsed = _parse_toml_subset(
            's = "str"\nn = 42\nf = 2.5\nb = true\nb2 = false\n'
            "[a.b]\nk = 1\n",
            "inline",
        )
        assert parsed == {
            "s": "str", "n": 42, "f": 2.5, "b": True, "b2": False,
            "a": {"b": {"k": 1}},
        }

    def test_malformed_lines_rejected(self):
        with pytest.raises(ScenarioError, match="key = value"):
            _parse_toml_subset("just some words\n", "inline")
        with pytest.raises(ScenarioError, match="cannot parse value"):
            _parse_toml_subset("k = [1, 2]\n", "inline")
