"""Unit/integration tests for the FASTER KV store (repro.faster)."""

import pytest

from repro.experiments.common import build_microbench
from repro.experiments.faster_bench import load_backing, run_faster_bench
from repro.faster.hashindex import HashIndex
from repro.faster.hybridlog import HybridLog, HybridLogConfig
from repro.faster.store import FasterConfig, FasterKv
from repro.sim.cpu import CostModel


class TestHashIndex:
    def test_get_after_upsert(self):
        index = HashIndex(num_buckets=16)
        index.upsert(42, 0x1000)
        assert index.get(42) == 0x1000

    def test_missing_key_returns_none(self):
        assert HashIndex(16).get(7) is None

    def test_upsert_overwrites_address(self):
        index = HashIndex(16)
        index.upsert(1, 100)
        index.upsert(1, 200)
        assert index.get(1) == 200
        assert len(index) == 1

    def test_delete(self):
        index = HashIndex(16)
        index.upsert(5, 50)
        assert index.delete(5)
        assert index.get(5) is None
        assert not index.delete(5)

    def test_many_keys_survive_collisions(self):
        index = HashIndex(num_buckets=16)  # forces collisions
        for key in range(500):
            index.upsert(key, key * 10)
        for key in range(500):
            assert index.get(key) == key * 10

    def test_load_factor_and_overflow_tracking(self):
        index = HashIndex(num_buckets=16)
        for key in range(500):
            index.upsert(key, key)
        assert index.load_factor() > 1.0  # oversubscribed on purpose
        assert index.collision_overflow > 0

    def test_keys_iterator(self):
        index = HashIndex(16)
        for key in (3, 1, 4):
            index.upsert(key, key)
        assert sorted(index.keys()) == [1, 3, 4]

    def test_power_of_two_buckets_required(self):
        with pytest.raises(ValueError):
            HashIndex(num_buckets=10)


class TestHybridLog:
    def make_log(self, memory_pages=4, page_bits=10):
        return HybridLog(HybridLogConfig(page_bits=page_bits,
                                         memory_pages=memory_pages))

    def test_allocate_monotonic(self):
        log = self.make_log()
        first = log.allocate(100)
        second = log.allocate(100)
        assert second > first

    def test_write_read_round_trip(self):
        log = self.make_log()
        addr = log.allocate(32)
        log.write(addr, b"x" * 32)
        assert log.read(addr, 32) == b"x" * 32

    def test_records_never_span_pages(self):
        log = self.make_log(page_bits=10)  # 1 KB pages
        addrs = [log.allocate(300) for _ in range(8)]
        for addr in addrs:
            page_off = addr & 1023
            assert page_off + 300 <= 1024

    def test_record_larger_than_page_rejected(self):
        log = self.make_log(page_bits=10)
        with pytest.raises(ValueError):
            log.allocate(2000)

    def test_region_classification(self):
        log = self.make_log(memory_pages=8)
        addr = log.allocate(64)
        assert log.region_of(addr) == "mutable"
        assert log.in_memory(addr)

    def test_eviction_protocol(self):
        log = self.make_log(memory_pages=2, page_bits=10)
        addrs = [log.allocate(512) for _ in range(8)]  # 4 pages
        assert log.pages_over_budget() > 0
        page, device_offset, data = log.begin_evict()
        assert device_offset == page << 10
        assert len(data) == 1024
        # Flushing pages still serve reads.
        assert log.in_memory(addrs[0])
        log.finish_evict(page)
        assert not log.in_memory(addrs[0])
        assert log.region_of(addrs[0]) == "stable"
        assert log.head_addr > 0

    def test_tail_page_never_evicts(self):
        log = self.make_log(memory_pages=2, page_bits=10)
        log.allocate(100)
        assert log.begin_evict() is None

    def test_finish_unknown_page_raises(self):
        log = self.make_log()
        with pytest.raises(KeyError):
            log.finish_evict(99)

    def test_stable_read_raises_key_error(self):
        log = self.make_log(memory_pages=2, page_bits=10)
        addrs = [log.allocate(512) for _ in range(8)]
        page, _off, _data = log.begin_evict()
        log.finish_evict(page)
        with pytest.raises(KeyError):
            log.read(addrs[0], 64)


class TestFasterKvSimulated:
    def make_store(self, system="local", threads=1, memory_pages=1 << 20):
        dep = build_microbench(system, threads, remote_bytes=1 << 20)
        config = FasterConfig(
            value_bytes=64,
            log=HybridLogConfig(page_bits=12, memory_pages=memory_pages),
        )
        store = FasterKv(dep.backends[0], CostModel(), config)
        load_backing(dep, store)
        return dep, store

    def run(self, dep, gen, deadline=60e9):
        return dep.sim.run_until_complete(dep.sim.spawn(gen), deadline=deadline)

    def test_upsert_then_memory_read(self):
        dep, store = self.make_store()
        thread = dep.compute.cpu.thread()

        def app():
            yield from store.upsert(thread, 1, b"v" * 64)
            outcome = yield from store.start_read(thread, 1)
            return outcome

        outcome = self.run(dep, app())
        assert outcome.source == "memory"
        assert outcome.value == b"v" * 64

    def test_missing_key(self):
        dep, store = self.make_store()
        thread = dep.compute.cpu.thread()

        def app():
            return (yield from store.start_read(thread, 999))

        assert self.run(dep, app()).source == "missing"

    def test_wrong_value_size_rejected(self):
        dep, store = self.make_store()
        thread = dep.compute.cpu.thread()

        def app():
            yield from store.upsert(thread, 1, b"short")

        with pytest.raises(ValueError):
            self.run(dep, app())

    def test_eviction_spills_through_device_and_reads_back(self):
        """End to end on Cowbird: records pushed out of memory come back
        from the pool via the offload engine."""
        dep, store = self.make_store(system="cowbird", memory_pages=2)
        thread = dep.compute.cpu.thread()
        n = 300  # enough 72 B records to overflow two 4 KB pages

        def app():
            inflight = 0
            for key in range(n):
                flushes = yield from store.upsert(
                    thread, key, bytes([key % 251]) * 64
                )
                inflight += flushes
                while inflight:
                    tokens = yield from dep.backends[0].poll_completions(
                        thread, block=True
                    )
                    yield from store.complete(thread, tokens)
                    inflight -= len(tokens)
            # Key 0 is long evicted: the read must go to the device.
            outcome = yield from store.start_read(thread, 0)
            assert outcome.source == "device"
            while True:
                tokens = yield from dep.backends[0].poll_completions(
                    thread, block=True
                )
                keys = yield from store.complete(thread, tokens)
                if 0 in keys:
                    return outcome

        outcome = self.run(dep, app(), deadline=300e9)
        assert outcome.source == "device"
        assert store.stats_flushes > 0
        assert store.stats_reads_device >= 1

    def test_memory_budget_respected_after_flushes(self):
        dep, store = self.make_store(system="cowbird", memory_pages=2)
        thread = dep.compute.cpu.thread()

        def app():
            inflight = 0
            for key in range(200):
                flushes = yield from store.upsert(thread, key, b"a" * 64)
                inflight += flushes
                if inflight:
                    tokens = yield from dep.backends[0].poll_completions(
                        thread, block=True
                    )
                    yield from store.complete(thread, tokens)
                    inflight -= len(tokens)

        self.run(dep, app(), deadline=300e9)
        assert store.log.memory_page_count <= 3  # budget + tail page slack


class TestFasterBenchHarness:
    def test_local_run_produces_throughput(self):
        result = run_faster_bench("local", 2, record_count=2_000, ops_per_thread=50)
        assert result.throughput_mops > 0
        assert result.total_ops == 100
        assert result.device_fraction == 0.0

    def test_cowbird_run_hits_device(self):
        result = run_faster_bench(
            "cowbird", 2, record_count=4_000, ops_per_thread=50,
            memory_fraction=0.1,
        )
        assert result.throughput_mops > 0
        assert result.device_fraction > 0.5

    def test_redy_out_of_cores_at_16(self):
        result = run_faster_bench("redy", 16, record_count=1_000, ops_per_thread=10)
        assert result.out_of_cores
        assert result.throughput_mops == 0.0

    def test_ssd_much_slower_than_remote_memory(self):
        ssd = run_faster_bench("ssd", 2, record_count=4_000, ops_per_thread=60)
        cowbird = run_faster_bench(
            "cowbird", 2, record_count=4_000, ops_per_thread=60,
        )
        assert cowbird.throughput_mops > 2.3 * ssd.throughput_mops

    def test_sync_rdma_communication_ratio_dominates(self):
        """Figure 10's claim: sync RDMA spends >80 % in communication."""
        result = run_faster_bench(
            "one-sided", 2, record_count=4_000, ops_per_thread=60,
        )
        assert result.communication_ratio > 0.55

    def test_cowbird_communication_ratio_low(self):
        result = run_faster_bench(
            "cowbird", 1, record_count=4_000, ops_per_thread=100,
            pipeline_depth=128,
        )
        assert result.communication_ratio < 0.5
