"""Unit tests for measurement utilities (repro.sim.trace)."""

import pytest

from repro.sim.trace import BandwidthMeter, LatencyRecorder, mops, percentile


class TestPercentile:
    def test_median_of_odd_set(self):
        assert percentile([5, 1, 3], 0.5) == 3

    def test_median_of_even_set_nearest_rank(self):
        assert percentile([1, 2, 3, 4], 0.5) == 2

    def test_p99_of_uniform_range(self):
        data = list(range(1, 101))
        assert percentile(data, 0.99) == 99

    def test_extremes(self):
        data = [10, 20, 30]
        assert percentile(data, 0.0) == 10
        assert percentile(data, 1.0) == 30

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_out_of_range_fraction_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)


class TestBandwidthMeter:
    def test_gbps_computation(self):
        meter = BandwidthMeter()
        meter.record(1250)  # 10_000 bits
        assert meter.gbps(now_ns=100.0) == pytest.approx(100.0)

    def test_reset_moves_window(self):
        meter = BandwidthMeter()
        meter.record(1000)
        meter.reset(now_ns=500.0)
        assert meter.bytes_delivered == 0
        meter.record(1250)
        assert meter.gbps(now_ns=600.0) == pytest.approx(100.0)

    def test_zero_elapsed_returns_zero(self):
        meter = BandwidthMeter()
        meter.record(1000)
        assert meter.gbps(now_ns=0.0) == 0.0


class TestLatencyRecorder:
    def test_summary_statistics(self):
        recorder = LatencyRecorder()
        for value in [1000, 2000, 3000, 4000]:
            recorder.record(value)
        assert recorder.count == 4
        assert recorder.mean_ns() == pytest.approx(2500.0)
        assert recorder.median_us() == pytest.approx(2.0)
        assert recorder.max_us() == pytest.approx(4.0)

    def test_p99_dominated_by_tail(self):
        recorder = LatencyRecorder()
        for _ in range(99):
            recorder.record(1_000)
        recorder.record(50_000)
        assert recorder.p99_us() == pytest.approx(1.0)
        assert recorder.max_us() == pytest.approx(50.0)

    def test_negative_latency_rejected(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.record(-1.0)

    def test_mean_of_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder().mean_ns()


class TestMops:
    def test_rate_conversion(self):
        # 1000 ops in 1_000_000 ns = 1 Mops
        assert mops(1000, 1_000_000) == pytest.approx(1.0)

    def test_zero_elapsed(self):
        assert mops(100, 0) == 0.0
