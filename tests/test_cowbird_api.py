"""Unit tests for the Cowbird client library (engine-less).

These tests use ``deploy_cowbird(engine="none")`` and play the offload
engine by hand, asserting the exact local-memory protocol of Section 4:
what the client publishes in its green block, how requests are laid out
in the rings, and how progress counters drive poll_wait.
"""

import pytest

from repro.cowbird.api import BufferFullError, CowbirdConfig
from repro.cowbird.deploy import deploy_cowbird
from repro.cowbird.wire import GreenBlock, RedBlock, RwType, decode_request_id


def deploy(**kwargs):
    return deploy_cowbird(engine="none", **kwargs)


def run(dep, generator, deadline=10_000_000):
    return dep.sim.run_until_complete(dep.sim.spawn(generator), deadline=deadline)


def push_red(instance, **fields):
    """Act as the engine: RDMA-write an updated red block."""
    red = RedBlock(**{**instance.red.__dict__, **fields})
    instance.region.remote_write(
        instance.bookkeeping.red_addr, red.pack(), instance.region.rkey
    )


class TestIssueRead:
    def test_returns_typed_request_id(self):
        dep = deploy()
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            return (yield from inst.async_read(thread, 0, 0, 64))

        request_id = run(dep, app())
        rw_type, region_id, seq = decode_request_id(request_id)
        assert rw_type is RwType.READ
        assert region_id == 0
        assert seq == 1

    def test_publishes_green_tail(self):
        dep = deploy()
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            yield from inst.async_read(thread, 0, 0, 64)
            yield from inst.async_read(thread, 0, 64, 64)

        run(dep, app())
        raw = inst.region.read(inst.bookkeeping.green_addr, GreenBlock.SIZE)
        assert GreenBlock.unpack(raw).request_meta_tail == 2

    def test_metadata_entry_contents(self):
        dep = deploy()
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            yield from inst.async_read(thread, 0, 128, 256)

        run(dep, app())
        entry = inst.metadata_ring.read_entry(0)
        assert entry.rw_type is RwType.READ
        assert entry.req_addr == dep.region.translate(128)
        assert entry.length == 256
        assert entry.region_id == 0
        # The response address points into the response data ring.
        assert inst.response_data.base_addr <= entry.resp_addr

    def test_only_local_memory_cpu_cost(self):
        """The whole point: issuing costs tens of ns, not ~630 ns."""
        dep = deploy()
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            yield from inst.async_read(thread, 0, 0, 64)

        run(dep, app())
        comm_ns = thread.stats.cpu_ns.get("comm", 0.0)
        assert comm_ns <= dep.compute.verbs.cost.cowbird_post
        assert comm_ns < 100

    def test_unknown_region_rejected(self):
        dep = deploy()
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            yield from inst.async_read(thread, 99, 0, 64)

        with pytest.raises(KeyError):
            run(dep, app())

    def test_out_of_range_offset_rejected(self):
        dep = deploy(remote_bytes=1024)
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            yield from inst.async_read(thread, 0, 1000, 64)

        with pytest.raises(ValueError):
            run(dep, app())


class TestIssueWrite:
    def test_payload_lands_in_request_data_ring(self):
        dep = deploy()
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            yield from inst.async_write(thread, 0, 0, b"payload-bytes")

        run(dep, app())
        entry = inst.metadata_ring.read_entry(0)
        assert entry.rw_type is RwType.WRITE
        assert inst.request_data.read(entry.req_addr, entry.length) == b"payload-bytes"
        assert entry.resp_addr == dep.region.translate(0)

    def test_write_sequence_independent_of_reads(self):
        """Per-type sequence counters (Section 4.3)."""
        dep = deploy()
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()
        ids = []

        def app():
            ids.append((yield from inst.async_read(thread, 0, 0, 8)))
            ids.append((yield from inst.async_write(thread, 0, 0, b"x")))
            ids.append((yield from inst.async_read(thread, 0, 8, 8)))

        run(dep, app())
        assert decode_request_id(ids[0])[2] == 1
        assert decode_request_id(ids[1])[2] == 1  # first *write*
        assert decode_request_id(ids[2])[2] == 2

    def test_empty_write_rejected(self):
        dep = deploy()
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            yield from inst.async_write(thread, 0, 0, b"")

        with pytest.raises(ValueError):
            run(dep, app())


class TestBackpressure:
    def test_metadata_ring_full_raises_buffer_full(self):
        dep = deploy(cowbird_config=CowbirdConfig(metadata_capacity=4))
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            for i in range(5):
                yield from inst.async_read(thread, 0, i * 8, 8)

        with pytest.raises(BufferFullError):
            run(dep, app())

    def test_response_ring_full_raises_buffer_full(self):
        dep = deploy(
            cowbird_config=CowbirdConfig(response_data_capacity=256)
        )
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            yield from inst.async_read(thread, 0, 0, 100)
            yield from inst.async_read(thread, 0, 100, 100)
            yield from inst.async_read(thread, 0, 200, 100)

        with pytest.raises(BufferFullError):
            run(dep, app())

    def test_engine_head_advance_frees_metadata_ring(self):
        dep = deploy(cowbird_config=CowbirdConfig(metadata_capacity=2))
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            yield from inst.async_read(thread, 0, 0, 8)
            yield from inst.async_read(thread, 0, 8, 8)
            # Engine completes both and advances the head.
            push_red(inst, request_meta_head=2, read_progress=2,
                     response_data_tail=16)
            poll = inst.poll_create()
            yield from inst.poll_wait(thread, poll, max_ret=1, timeout=0)
            yield from inst.async_read(thread, 0, 16, 8)  # fits again

        run(dep, app())
        assert inst.metadata_ring.tail == 3


class TestPollInterface:
    def test_poll_wait_returns_after_progress(self):
        dep = deploy()
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()
        sim = dep.sim
        got = []

        def app():
            poll = inst.poll_create()
            rid = yield from inst.async_read(thread, 0, 0, 32)
            inst.poll_add(poll, rid)
            events = yield from inst.poll_wait(thread, poll, max_ret=4)
            got.extend(events)

        # Engine completes the read at t=5us.
        sim.call_after(5_000, lambda: push_red(inst, read_progress=1,
                                               response_data_tail=32))
        run(dep, app())
        assert len(got) == 1
        assert got[0].rw_type is RwType.READ
        assert sim.now >= 5_000

    def test_poll_wait_timeout_returns_empty(self):
        dep = deploy()
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            rid = yield from inst.async_read(thread, 0, 0, 32)
            inst.poll_add(poll, rid)
            return (yield from inst.poll_wait(thread, poll, timeout=10_000))

        events = run(dep, app())
        assert events == []
        assert dep.sim.now >= 10_000

    def test_poll_remove_drops_interest(self):
        dep = deploy()
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            rid = yield from inst.async_read(thread, 0, 0, 32)
            inst.poll_add(poll, rid)
            inst.poll_remove(poll, rid)
            push_red(inst, read_progress=1, response_data_tail=32)
            return (yield from inst.poll_wait(thread, poll, timeout=1_000))

        events = run(dep, app())
        assert events == []

    def test_write_and_read_completions_tracked_separately(self):
        dep = deploy()
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            rid = yield from inst.async_read(thread, 0, 0, 32)
            wid = yield from inst.async_write(thread, 0, 64, b"w" * 8)
            inst.poll_add(poll, rid)
            inst.poll_add(poll, wid)
            push_red(inst, write_progress=1)  # only the write finished
            events = yield from inst.poll_wait(thread, poll, max_ret=4,
                                               timeout=1_000)
            return events

        events = run(dep, app())
        assert len(events) == 1
        assert events[0].rw_type is RwType.WRITE

    def test_unknown_poll_id_raises(self):
        dep = deploy()
        inst = dep.instances[0]
        with pytest.raises(KeyError):
            inst.poll_add(999, 1)


class TestResponseConsumption:
    def test_fetch_response_returns_engine_written_bytes(self):
        dep = deploy()
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            rid = yield from inst.async_read(thread, 0, 0, 16)
            inst.poll_add(poll, rid)
            # Engine writes the data, then the red block.
            entry = inst.metadata_ring.read_entry(0)
            inst.region.remote_write(entry.resp_addr, b"A" * 16, inst.region.rkey)
            push_red(inst, read_progress=1, response_data_tail=16)
            events = yield from inst.poll_wait(thread, poll)
            return inst.fetch_response(events[0].request_id)

        assert run(dep, app()) == b"A" * 16

    def test_fetch_before_completion_raises(self):
        dep = deploy()
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            rid = yield from inst.async_read(thread, 0, 0, 16)
            inst.fetch_response(rid)

        with pytest.raises(RuntimeError, match="not complete"):
            run(dep, app())

    def test_fetch_frees_response_ring_in_order(self):
        dep = deploy(cowbird_config=CowbirdConfig(response_data_capacity=1024))
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            rids = []
            for i in range(3):
                rids.append((yield from inst.async_read(thread, 0, i * 100, 100)))
            push_red(inst, read_progress=3, response_data_tail=300)
            inst._sync_red()
            return rids

        rids = run(dep, app())
        head_before = inst.response_data.head
        inst.fetch_response(rids[1])  # out of order: head cannot move yet
        assert inst.response_data.head == head_before
        inst.fetch_response(rids[0])  # now reads 1 and 2 are consumed
        assert inst.response_data.head == 200

    def test_write_has_no_response_payload(self):
        dep = deploy()
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            return (yield from inst.async_write(thread, 0, 0, b"abc"))

        wid = run(dep, app())
        with pytest.raises(ValueError, match="only reads"):
            inst.fetch_response(wid)


class TestMultiInstance:
    def test_instances_have_disjoint_regions(self):
        dep = deploy(num_instances=3)
        regions = [inst.region for inst in dep.instances]
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                assert a.end_addr <= b.base_addr or b.end_addr <= a.base_addr

    def test_shared_remote_region_visible_to_all(self):
        dep = deploy(num_instances=2)
        for inst in dep.instances:
            assert 0 in inst.remote_regions

    def test_descriptor_reflects_layout(self):
        dep = deploy()
        inst = dep.instances[0]
        descriptor = inst.descriptor()
        assert descriptor.node == "compute"
        assert descriptor.rkey == inst.region.rkey
        assert descriptor.metadata_base == inst.metadata_ring.base_addr
        assert descriptor.remote_regions[0].node == "pool"
