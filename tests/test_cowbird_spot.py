"""Integration tests for the Cowbird-Spot offload engine (Section 6)."""


from repro.cowbird.deploy import deploy_cowbird
from repro.cowbird.spot_engine import SpotEngineConfig


def run_app(dep, generator, deadline=200_000_000):
    return dep.sim.run_until_complete(dep.sim.spawn(generator), deadline=deadline)


def read_write_roundtrip(dep, offset=0, payload=b"spot-engine-payload"):
    inst = dep.instances[0]
    thread = dep.compute.cpu.thread()

    def app():
        poll = inst.poll_create()
        wid = yield from inst.async_write(thread, 0, offset, payload)
        inst.poll_add(poll, wid)
        yield from inst.poll_wait(thread, poll, max_ret=1)
        rid = yield from inst.async_read(thread, 0, offset, len(payload))
        inst.poll_add(poll, rid)
        events = yield from inst.poll_wait(thread, poll, max_ret=1)
        return inst.fetch_response(events[0].request_id)

    return run_app(dep, app())


class TestBasicOperation:
    def test_read_returns_remote_bytes(self):
        dep = deploy_cowbird(engine="spot")
        dep.pool_region().write(dep.region.translate(64), b"hello-cowbird")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            rid = yield from inst.async_read(thread, 0, 64, 13)
            inst.poll_add(poll, rid)
            events = yield from inst.poll_wait(thread, poll)
            return inst.fetch_response(events[0].request_id)

        assert run_app(dep, app()) == b"hello-cowbird"

    def test_write_then_read_roundtrip(self):
        dep = deploy_cowbird(engine="spot")
        assert read_write_roundtrip(dep) == b"spot-engine-payload"

    def test_write_lands_in_pool_memory(self):
        dep = deploy_cowbird(engine="spot")
        read_write_roundtrip(dep, offset=256, payload=b"persisted")
        assert dep.pool_region().read(dep.region.translate(256), 9) == b"persisted"

    def test_compute_node_posts_no_rdma_messages(self):
        """The headline property: zero compute-side RDMA operations."""
        dep = deploy_cowbird(engine="spot")
        read_write_roundtrip(dep)
        assert dep.compute.nic.stats.messages_initiated == 0

    def test_compute_cpu_time_is_tens_of_ns_per_op(self):
        dep = deploy_cowbird(engine="spot")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()
        n = 20

        def app():
            poll = inst.poll_create()
            for i in range(n):
                rid = yield from inst.async_read(thread, 0, i * 64, 64)
                inst.poll_add(poll, rid)
            done = 0
            while done < n:
                events = yield from inst.poll_wait(thread, poll, max_ret=n)
                done += len(events)

        run_app(dep, app())
        comm = thread.stats.cpu_ns.get("comm", 0.0)
        assert comm / n < 100  # tens of ns per op, not ~630

    def test_large_transfer_spans_mtu_segments(self):
        dep = deploy_cowbird(engine="spot")
        payload = bytes(i % 251 for i in range(5000))
        assert read_write_roundtrip(dep, payload=payload) == payload

    def test_many_interleaved_ops(self):
        dep = deploy_cowbird(engine="spot", seed=7)
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()
        import random

        rng = random.Random(7)
        expected = {}

        def app():
            poll = inst.poll_create()
            pending = 0
            for i in range(40):
                offset = i * 128
                if rng.random() < 0.5:
                    data = bytes([i]) * 64
                    expected[offset] = data
                    rid = yield from inst.async_write(thread, 0, offset, data)
                else:
                    rid = yield from inst.async_read(thread, 0, offset, 64)
                inst.poll_add(poll, rid)
                pending += 1
            while pending:
                events = yield from inst.poll_wait(thread, poll, max_ret=64)
                pending -= len(events)

        run_app(dep, app())
        pool_region = dep.pool_region()
        for offset, data in expected.items():
            assert pool_region.read(dep.region.translate(offset), 64) == data


class TestBatching:
    def test_batch_flush_counts(self):
        config = SpotEngineConfig(batch_size=8)
        dep = deploy_cowbird(engine="spot", spot_config=config)
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            for i in range(16):
                rid = yield from inst.async_read(thread, 0, i * 64, 64)
                inst.poll_add(poll, rid)
            done = 0
            while done < 16:
                events = yield from inst.poll_wait(thread, poll, max_ret=16)
                done += len(events)

        run_app(dep, app())
        stats = dep.engine.stats
        assert stats.reads_executed == 16
        assert stats.batches_flushed >= 2
        assert stats.batch_entries_total == 16

    def test_batching_disabled_means_one_flush_per_read(self):
        config = SpotEngineConfig(batch_size=1)
        dep = deploy_cowbird(engine="spot", spot_config=config)
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            for i in range(5):
                rid = yield from inst.async_read(thread, 0, i * 64, 64)
                inst.poll_add(poll, rid)
            done = 0
            while done < 5:
                events = yield from inst.poll_wait(thread, poll, max_ret=8)
                done += len(events)

        run_app(dep, app())
        assert dep.engine.stats.batches_flushed == 5

    def test_partial_batch_flushes_when_idle(self):
        """A batch below BATCH_SIZE must not wait forever."""
        config = SpotEngineConfig(batch_size=100)
        dep = deploy_cowbird(engine="spot", spot_config=config)
        assert read_write_roundtrip(dep) == b"spot-engine-payload"
        assert dep.engine.stats.batches_flushed >= 1

    def test_batching_reduces_rdma_calls(self):
        def run_with(batch_size):
            dep = deploy_cowbird(
                engine="spot", spot_config=SpotEngineConfig(batch_size=batch_size)
            )
            inst = dep.instances[0]
            thread = dep.compute.cpu.thread()

            def app():
                poll = inst.poll_create()
                for i in range(32):
                    rid = yield from inst.async_read(thread, 0, i * 64, 64)
                    inst.poll_add(poll, rid)
                done = 0
                while done < 32:
                    events = yield from inst.poll_wait(thread, poll, max_ret=32)
                    done += len(events)

            run_app(dep, app())
            return dep.compute.nic.stats.packets_in

        # Batched responses mean far fewer packets hit the compute RNIC.
        assert run_with(batch_size=32) < run_with(batch_size=1)


class TestConsistency:
    def test_read_after_write_same_address_sees_new_data(self):
        """Per-range linearizability: the overlap check must hold the
        read until the conflicting write completes."""
        dep = deploy_cowbird(engine="spot")
        dep.pool_region().write(dep.region.translate(0), b"OLD-OLD-")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            wid = yield from inst.async_write(thread, 0, 0, b"NEW-NEW-")
            rid = yield from inst.async_read(thread, 0, 0, 8)
            inst.poll_add(poll, wid)
            inst.poll_add(poll, rid)
            done = 0
            while done < 2:
                events = yield from inst.poll_wait(thread, poll, max_ret=2)
                done += len(events)
            return inst.fetch_response(rid)

        assert run_app(dep, app()) == b"NEW-NEW-"

    def test_non_overlapping_read_not_stalled(self):
        dep = deploy_cowbird(engine="spot")
        dep.pool_region().write(dep.region.translate(4096), b"disjoint")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            wid = yield from inst.async_write(thread, 0, 0, b"w" * 512)
            rid = yield from inst.async_read(thread, 0, 4096, 8)
            inst.poll_add(poll, wid)
            inst.poll_add(poll, rid)
            done = 0
            while done < 2:
                events = yield from inst.poll_wait(thread, poll, max_ret=2)
                done += len(events)
            return inst.fetch_response(rid)

        assert run_app(dep, app()) == b"disjoint"
        assert dep.engine.stats.overlap_stalls == 0

    def test_overlap_stall_is_counted(self):
        dep = deploy_cowbird(engine="spot")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            wid = yield from inst.async_write(thread, 0, 0, b"x" * 256)
            rid = yield from inst.async_read(thread, 0, 128, 64)  # overlaps
            inst.poll_add(poll, wid)
            inst.poll_add(poll, rid)
            done = 0
            while done < 2:
                events = yield from inst.poll_wait(thread, poll, max_ret=2)
                done += len(events)

        run_app(dep, app())
        assert dep.engine.stats.overlap_stalls >= 1

    def test_writes_complete_in_issue_order(self):
        dep = deploy_cowbird(engine="spot")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()
        completions = []

        def app():
            poll = inst.poll_create()
            ids = []
            for i in range(6):
                wid = yield from inst.async_write(thread, 0, i * 64, bytes([i]) * 8)
                inst.poll_add(poll, wid)
                ids.append(wid)
            done = 0
            while done < 6:
                events = yield from inst.poll_wait(thread, poll, max_ret=8)
                completions.extend(e.request_id for e in events)
                done += len(events)
            return ids

        ids = run_app(dep, app())
        assert completions == ids  # linearized, FIFO per type


class TestResourceUsage:
    def test_agent_limited_to_one_core(self):
        dep = deploy_cowbird(engine="spot")
        assert dep.agent_host.cpu.physical_cores == 1
        assert dep.agent_host.cpu.hardware_threads == 2

    def test_agent_cpu_accounted(self):
        dep = deploy_cowbird(engine="spot")
        read_write_roundtrip(dep)
        assert dep.engine.agent_cpu_ns() > 0

    def test_pool_needs_no_cpu(self):
        dep = deploy_cowbird(engine="spot")
        read_write_roundtrip(dep)
        assert dep.pool_host.cpu is None


class TestMultiInstance:
    def test_two_instances_serviced_independently(self):
        dep = deploy_cowbird(engine="spot", num_instances=2)
        dep.pool_region().write(dep.region.translate(0), b"AAAA")
        dep.pool_region().write(dep.region.translate(64), b"BBBB")
        threads = [dep.compute.cpu.thread() for _ in range(2)]
        results = {}

        def app(index, inst, thread, offset):
            poll = inst.poll_create()
            rid = yield from inst.async_read(thread, 0, offset, 4)
            inst.poll_add(poll, rid)
            events = yield from inst.poll_wait(thread, poll)
            results[index] = inst.fetch_response(events[0].request_id)

        sim = dep.sim
        p1 = sim.spawn(app(0, dep.instances[0], threads[0], 0))
        p2 = sim.spawn(app(1, dep.instances[1], threads[1], 64))
        sim.run_until_complete(p1, deadline=100_000_000)
        sim.run_until_complete(p2, deadline=100_000_000)
        assert results == {0: b"AAAA", 1: b"BBBB"}
