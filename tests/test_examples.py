"""Smoke tests: the example scripts must stay runnable.

Only the fast examples run here (the scaling/FASTER sweeps are covered
functionally by the benchmark suite); each executes in-process with its
output captured and key landmarks asserted.
"""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "read returned:" in out
        assert "b'hello from the pool!'" in out
        assert "compute-side RDMA messages: 0" in out

    def test_lossy_network(self, capsys):
        out = run_example("lossy_network.py", capsys)
        assert "completed=30/30" in out
        assert "drop=   5%" in out

    def test_protocol_trace(self, capsys):
        out = run_example("protocol_trace.py", capsys)
        assert "RC_RDMA_READ_REQUEST" in out
        assert "b'the payload bytes'" in out
        assert "packets recycled" in out

    def test_offload_cost(self, capsys):
        out = run_example("offload_cost.py", capsys)
        assert "Table 1" in out
        assert "duty cycle" in out

    def test_telemetry_tour(self, capsys):
        out = run_example("telemetry_tour.py", capsys)
        assert "nic.compute.rx_packets" in out
        assert "spot.read" in out
        assert "chrome trace written to" in out
