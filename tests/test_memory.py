"""Unit tests for the memory substrate (repro.memory)."""

import pytest

from repro.memory import (
    AccessError,
    BoundsError,
    MemoryPool,
    MemoryRegion,
    Permission,
    RegionRegistry,
)


class TestMemoryRegion:
    def region(self, **kwargs):
        defaults = dict(base_addr=0x1000, length=256, lkey=1, rkey=2)
        defaults.update(kwargs)
        return MemoryRegion(**defaults)

    def test_read_back_what_was_written(self):
        region = self.region()
        region.write(0x1000, b"hello")
        assert region.read(0x1000, 5) == b"hello"

    def test_fresh_region_is_zeroed(self):
        region = self.region()
        assert region.read(0x1000, 16) == b"\x00" * 16

    def test_write_at_offset(self):
        region = self.region()
        region.write(0x1080, b"xy")
        assert region.read(0x107F, 4) == b"\x00xy\x00"

    def test_end_addr(self):
        region = self.region()
        assert region.end_addr == 0x1100

    def test_out_of_bounds_read_raises(self):
        region = self.region()
        with pytest.raises(BoundsError):
            region.read(0x1100, 1)
        with pytest.raises(BoundsError):
            region.read(0x0FFF, 1)

    def test_straddling_access_raises(self):
        region = self.region()
        with pytest.raises(BoundsError):
            region.read(0x10FF, 2)

    def test_negative_length_access_raises(self):
        region = self.region()
        with pytest.raises(BoundsError):
            region.read(0x1000, -1)

    def test_remote_read_requires_correct_rkey(self):
        region = self.region()
        region.write(0x1000, b"data")
        assert region.remote_read(0x1000, 4, rkey=2) == b"data"
        with pytest.raises(AccessError):
            region.remote_read(0x1000, 4, rkey=99)

    def test_remote_write_requires_correct_rkey(self):
        region = self.region()
        region.remote_write(0x1000, b"ok", rkey=2)
        assert region.read(0x1000, 2) == b"ok"
        with pytest.raises(AccessError):
            region.remote_write(0x1000, b"no", rkey=3)

    def test_permissions_enforced(self):
        readonly = self.region(permissions=Permission.LOCAL_READ | Permission.REMOTE_READ)
        with pytest.raises(AccessError):
            readonly.write(0x1000, b"x")
        with pytest.raises(AccessError):
            readonly.remote_write(0x1000, b"x", rkey=2)
        # Reads still work.
        assert readonly.read(0x1000, 1) == b"\x00"

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MemoryRegion(base_addr=0, length=0, lkey=1, rkey=2)
        with pytest.raises(ValueError):
            MemoryRegion(base_addr=-1, length=10, lkey=1, rkey=2)


class TestRegionRegistry:
    def test_regions_do_not_overlap(self):
        registry = RegionRegistry()
        regions = [registry.register(1000) for _ in range(5)]
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                assert a.end_addr <= b.base_addr or b.end_addr <= a.base_addr

    def test_alignment_respected(self):
        registry = RegionRegistry()
        registry.register(100)  # misalign the bump pointer
        region = registry.register(100, alignment=4096)
        assert region.base_addr % 4096 == 0

    def test_bad_alignment_rejected(self):
        registry = RegionRegistry()
        with pytest.raises(ValueError):
            registry.register(100, alignment=3)

    def test_lookup_by_rkey(self):
        registry = RegionRegistry()
        region = registry.register(64, name="target")
        assert registry.by_rkey(region.rkey) is region

    def test_unknown_rkey_raises(self):
        registry = RegionRegistry()
        with pytest.raises(AccessError):
            registry.by_rkey(0xDEAD)

    def test_lookup_by_addr(self):
        registry = RegionRegistry()
        first = registry.register(64)
        second = registry.register(64)
        assert registry.by_addr(second.base_addr + 10) is second
        assert registry.by_addr(first.base_addr) is first

    def test_addr_lookup_respects_length(self):
        registry = RegionRegistry()
        region = registry.register(64)
        with pytest.raises(BoundsError):
            registry.by_addr(region.base_addr + 60, length=10)

    def test_deregister_removes_region(self):
        registry = RegionRegistry()
        region = registry.register(64)
        registry.deregister(region)
        assert len(registry) == 0
        with pytest.raises(AccessError):
            registry.by_rkey(region.rkey)

    def test_keys_are_unique(self):
        registry = RegionRegistry()
        keys = {registry.register(16).rkey for _ in range(20)}
        assert len(keys) == 20


class TestMemoryPool:
    def test_allocate_and_address_translation(self):
        pool = MemoryPool("pool")
        handle = pool.allocate_region(4096)
        assert handle.node == "pool"
        assert handle.length == 4096
        assert handle.translate(0) == handle.base_addr
        assert handle.translate(100) == handle.base_addr + 100

    def test_translate_out_of_range_raises(self):
        pool = MemoryPool("pool")
        handle = pool.allocate_region(100)
        with pytest.raises(ValueError):
            handle.translate(100)
        with pytest.raises(ValueError):
            handle.translate(90, length=20)
        with pytest.raises(ValueError):
            handle.translate(-1)

    def test_region_ids_increment(self):
        pool = MemoryPool("pool")
        ids = [pool.allocate_region(10).region_id for _ in range(3)]
        assert ids == [0, 1, 2]

    def test_capacity_enforced(self):
        pool = MemoryPool("pool", capacity_bytes=1000)
        pool.allocate_region(800)
        with pytest.raises(MemoryError):
            pool.allocate_region(300)

    def test_release_returns_capacity(self):
        pool = MemoryPool("pool", capacity_bytes=1000)
        handle = pool.allocate_region(800)
        pool.release_region(handle)
        assert pool.allocated_bytes == 0
        pool.allocate_region(900)  # fits again

    def test_release_unknown_region_raises(self):
        pool_a, pool_b = MemoryPool("a"), MemoryPool("b")
        handle = pool_a.allocate_region(10)
        with pytest.raises(KeyError):
            pool_b.release_region(handle)

    def test_handle_resolves_to_backing_region(self):
        pool = MemoryPool("pool")
        handle = pool.allocate_region(64)
        region = pool.region_for(handle)
        region.write(handle.translate(0), b"abc")
        assert region.remote_read(handle.base_addr, 3, handle.rkey) == b"abc"

    def test_handle_lookup_by_region_id(self):
        pool = MemoryPool("pool")
        handle = pool.allocate_region(64)
        assert pool.handle(handle.region_id) is handle
