"""Integration tests for the RNIC + QP + verbs stack over the testbed."""

import pytest

from repro.rdma.nic import NicConfig
from repro.rdma.qp import (
    CompletionQueue,
    CompletionStatus,
    WorkRequest,
    WorkType,
)
from repro.sim.network import FaultInjector
from repro.testbed import Testbed


def build_bed(**bed_kwargs):
    bed = Testbed(**bed_kwargs)
    compute = bed.add_host("compute", cpu_cores=4)
    pool = bed.add_host("pool")
    qp_c, qp_p = bed.connect_qps(compute, pool)
    return bed, compute, pool, qp_c, qp_p


def run_op(bed, generator, deadline=50_000_000):
    process = bed.sim.spawn(generator)
    return bed.sim.run_until_complete(process, deadline=deadline)


class TestOneSidedRead:
    def test_read_returns_remote_bytes(self):
        bed, compute, pool, qp_c, _ = build_bed()
        remote = pool.registry.register(4096, name="remote")
        local = compute.registry.register(4096, name="local")
        remote.write(remote.base_addr + 100, b"paper-data")
        thread = compute.cpu.thread()

        def op():
            yield from compute.verbs.read_sync(
                thread, qp_c, local.base_addr, remote.base_addr + 100,
                remote.rkey, 10,
            )

        run_op(bed, op())
        assert local.read(local.base_addr, 10) == b"paper-data"

    def test_read_latency_includes_round_trip(self):
        """One-sided read = post + request flight + response flight +
        NIC processing; must be microseconds, not nanoseconds."""
        bed, compute, pool, qp_c, _ = build_bed()
        remote = pool.registry.register(4096)
        local = compute.registry.register(4096)
        thread = compute.cpu.thread()
        done_at = []

        def op():
            yield from compute.verbs.read_sync(
                thread, qp_c, local.base_addr, remote.base_addr, remote.rkey, 64
            )
            done_at.append(bed.sim.now)

        run_op(bed, op())
        assert 2_000 < done_at[0] < 10_000  # 2-10 us

    def test_large_read_segments_at_mtu(self):
        """Reads above 1024 B come back as First/Middle/Last responses."""
        bed, compute, pool, qp_c, qp_p = build_bed()
        remote = pool.registry.register(8192)
        local = compute.registry.register(8192)
        payload = bytes(i % 251 for i in range(3000))
        remote.write(remote.base_addr, payload)
        thread = compute.cpu.thread()

        def op():
            yield from compute.verbs.read_sync(
                thread, qp_c, local.base_addr, remote.base_addr, remote.rkey, 3000
            )

        run_op(bed, op())
        assert local.read(local.base_addr, 3000) == payload
        # 3000 B at MTU 1024 -> 3 response packets + 1 request.
        assert qp_p.packets_sent == 3

    def test_read_consumes_one_psn_per_response_segment(self):
        bed, compute, pool, qp_c, _ = build_bed()
        remote = pool.registry.register(8192)
        local = compute.registry.register(8192)
        thread = compute.cpu.thread()

        def op():
            yield from compute.verbs.read_sync(
                thread, qp_c, local.base_addr, remote.base_addr, remote.rkey, 3000
            )

        run_op(bed, op())
        assert qp_c.send_psn == 3

    def test_sync_read_charges_post_and_spin_as_comm(self):
        bed, compute, pool, qp_c, _ = build_bed()
        remote = pool.registry.register(4096)
        local = compute.registry.register(4096)
        thread = compute.cpu.thread()

        def op():
            yield from compute.verbs.read_sync(
                thread, qp_c, local.base_addr, remote.base_addr, remote.rkey, 64
            )

        run_op(bed, op())
        comm = thread.stats.cpu_ns.get("comm", 0.0)
        # Spin-wait burns the full round trip as communication CPU time.
        assert comm > 2_000
        assert thread.stats.cpu_ns.get("app", 0.0) == 0.0


class TestOneSidedWrite:
    def test_write_lands_in_remote_memory(self):
        bed, compute, pool, qp_c, _ = build_bed()
        remote = pool.registry.register(4096)
        local = compute.registry.register(4096)
        local.write(local.base_addr, b"write-me")
        thread = compute.cpu.thread()

        def op():
            yield from compute.verbs.write_sync(
                thread, qp_c, local.base_addr, remote.base_addr + 8,
                remote.rkey, 8,
            )

        run_op(bed, op())
        assert remote.read(remote.base_addr + 8, 8) == b"write-me"

    def test_multi_packet_write_train(self):
        bed, compute, pool, qp_c, qp_p = build_bed()
        remote = pool.registry.register(8192)
        local = compute.registry.register(8192)
        payload = bytes(i % 249 for i in range(2500))
        local.write(local.base_addr, payload)
        thread = compute.cpu.thread()

        def op():
            yield from compute.verbs.write_sync(
                thread, qp_c, local.base_addr, remote.base_addr, remote.rkey, 2500
            )

        run_op(bed, op())
        assert remote.read(remote.base_addr, 2500) == payload
        # First + Middle + Last data packets then one ACK back.
        assert qp_c.packets_sent == 3
        assert qp_p.packets_sent == 1

    def test_write_completion_arrives_after_ack(self):
        bed, compute, pool, qp_c, _ = build_bed()
        remote = pool.registry.register(4096)
        local = compute.registry.register(4096)
        thread = compute.cpu.thread()
        result = []

        def op():
            completion = yield from compute.verbs.write_sync(
                thread, qp_c, local.base_addr, remote.base_addr, remote.rkey, 128
            )
            result.append(completion)

        run_op(bed, op())
        assert result[0].status is CompletionStatus.SUCCESS
        assert result[0].work_type is WorkType.WRITE


class TestTwoSided:
    def test_send_recv_delivers_payload_and_completions(self):
        bed, compute, pool, qp_c, qp_p = build_bed()
        recv_buf = pool.registry.register(1024)
        qp_p.nic.post(
            qp_p,
            WorkRequest(
                work_type=WorkType.RECV,
                local_addr=recv_buf.base_addr,
                remote_addr=0, rkey=0, length=1024,
            ),
        )
        thread = compute.cpu.thread()

        def op():
            wr = WorkRequest(
                work_type=WorkType.SEND,
                local_addr=0, remote_addr=0, rkey=0,
                length=5, inline_payload=b"hello",
            )
            yield from compute.verbs.post_send(thread, qp_c, wr)
            yield from compute.verbs.spin_poll(thread, qp_c.cq, count=1)

        run_op(bed, op())
        assert recv_buf.read(recv_buf.base_addr, 5) == b"hello"
        recv_completions = qp_p.cq.poll()
        assert len(recv_completions) == 1
        assert recv_completions[0].work_type is WorkType.RECV
        assert recv_completions[0].byte_len == 5


class TestReliability:
    def test_lost_read_response_recovered_by_timeout(self):
        # Each packet crosses two links (host->switch, switch->host) and the
        # injector counts per crossing: 1-2 = read request, 3-4 = response.
        injector = FaultInjector(seed=3, drop_exactly=[3])  # kill the response
        bed, compute, pool, qp_c, _ = build_bed(fault_injector=injector)
        remote = pool.registry.register(4096)
        local = compute.registry.register(4096)
        remote.write(remote.base_addr, b"survivor")
        thread = compute.cpu.thread()

        def op():
            yield from compute.verbs.read_sync(
                thread, qp_c, local.base_addr, remote.base_addr, remote.rkey, 8
            )

        run_op(bed, op())
        assert local.read(local.base_addr, 8) == b"survivor"
        assert compute.nic.stats.retransmit_timeouts >= 1

    def test_lost_write_ack_recovered(self):
        # Crossings: 1-2 = write packet, 3-4 = ACK; kill the ACK's last hop.
        injector = FaultInjector(seed=3, drop_exactly=[4])  # kill the ACK
        bed, compute, pool, qp_c, _ = build_bed(fault_injector=injector)
        remote = pool.registry.register(4096)
        local = compute.registry.register(4096)
        local.write(local.base_addr, b"ackless")
        thread = compute.cpu.thread()

        def op():
            yield from compute.verbs.write_sync(
                thread, qp_c, local.base_addr, remote.base_addr, remote.rkey, 7
            )

        run_op(bed, op())
        assert remote.read(remote.base_addr, 7) == b"ackless"
        assert pool.nic.stats.duplicates >= 1

    def test_random_loss_eventually_completes_all_ops(self):
        injector = FaultInjector(seed=11, drop_rate=0.05)
        bed, compute, pool, qp_c, _ = build_bed(fault_injector=injector)
        remote = pool.registry.register(65536)
        local = compute.registry.register(65536)
        thread = compute.cpu.thread()
        completed = []

        def op():
            for i in range(30):
                yield from compute.verbs.read_sync(
                    thread, qp_c, local.base_addr, remote.base_addr + 64 * i,
                    remote.rkey, 64,
                )
                completed.append(i)

        run_op(bed, op(), deadline=1_000_000_000)
        assert len(completed) == 30

    def test_ack_never_completes_read_with_lost_response(self):
        """Regression: a cumulative ACK for a later WRITE must not
        retire an earlier READ whose response packets were dropped —
        the read has no data and must be retried, not completed."""
        # Crossings: 1-2 read request, 3 read response (pool->switch,
        # DROPPED), then the write train and its ACK flow normally.
        injector = FaultInjector(seed=3, drop_exactly=[3])
        bed, compute, pool, qp_c, _ = build_bed(fault_injector=injector)
        remote = pool.registry.register(4096)
        local = compute.registry.register(4096)
        remote.write(remote.base_addr, b"must-see-this!")
        local.write(local.base_addr + 2048, b"w" * 16)
        thread = compute.cpu.thread()
        results = []

        def op():
            # Pipeline a read then a write on the same QP.
            yield from compute.verbs.read_async(
                thread, qp_c, local.base_addr, remote.base_addr,
                remote.rkey, 14,
            )
            yield from compute.verbs.write_async(
                thread, qp_c, local.base_addr + 2048,
                remote.base_addr + 2048, remote.rkey, 16,
            )
            completions = yield from compute.verbs.spin_poll(
                thread, qp_c.cq, count=2
            )
            results.extend(completions)

        run_op(bed, op(), deadline=10_000_000_000)
        assert len(results) == 2
        assert all(c.status is CompletionStatus.SUCCESS for c in results)
        # The read's data is real, not a garbage buffer.
        assert local.read(local.base_addr, 14) == b"must-see-this!"

    def test_total_blackhole_exhausts_retries(self):
        injector = FaultInjector(seed=1, drop_rate=1.0)
        bed, compute, pool, qp_c, _ = build_bed(fault_injector=injector)
        remote = pool.registry.register(4096)
        local = compute.registry.register(4096)
        thread = compute.cpu.thread()
        failed = []

        def op():
            try:
                yield from compute.verbs.read_sync(
                    thread, qp_c, local.base_addr, remote.base_addr, remote.rkey, 8
                )
            except Exception as exc:  # noqa: BLE001 - asserting on type below
                failed.append(exc)

        run_op(bed, op(), deadline=10_000_000_000)
        assert len(failed) == 1
        assert "retry_exceeded" in str(failed[0])

    def test_bad_rkey_produces_nak(self):
        bed, compute, pool, qp_c, _ = build_bed()
        pool.registry.register(4096)
        local = compute.registry.register(4096)
        thread = compute.cpu.thread()

        def op():
            try:
                yield from compute.verbs.read_sync(
                    thread, qp_c, local.base_addr, 0x4000_0000, 0xBAD_0000, 8
                )
            except Exception:  # noqa: BLE001 - retry exhaustion expected
                pass

        run_op(bed, op(), deadline=10_000_000_000)
        assert pool.nic.stats.naks_sent >= 1


class TestNicPacing:
    def test_message_rate_limits_initiation(self):
        """At 1 Mops the NIC spaces initiations 1000 ns apart."""
        bed = Testbed()
        compute = bed.add_host(
            "compute", cpu_cores=4, nic_config=NicConfig(message_rate_mops=1.0)
        )
        pool = bed.add_host("pool")
        qp_c, _ = bed.connect_qps(compute, pool)
        remote = pool.registry.register(65536)
        local = compute.registry.register(65536)
        thread = compute.cpu.thread()

        def op():
            for i in range(10):
                yield from compute.verbs.read_async(
                    thread, qp_c, local.base_addr + i * 64,
                    remote.base_addr + i * 64, remote.rkey, 64,
                )
            yield from compute.verbs.spin_poll(thread, qp_c.cq, count=10)

        run_op(bed, op())
        # 10 messages at 1 Mops -> at least 9 us of pacing alone.
        assert bed.sim.now > 9_000

    def test_unconnected_qp_rejects_post(self):
        bed = Testbed()
        compute = bed.add_host("compute", cpu_cores=1)
        qp = compute.nic.create_qp()
        with pytest.raises(RuntimeError, match="not connected"):
            compute.nic.post(
                qp,
                WorkRequest(
                    work_type=WorkType.READ, local_addr=0, remote_addr=0,
                    rkey=0, length=8,
                ),
            )


class TestCompletionQueue:
    def test_poll_respects_max_entries(self):
        cq = CompletionQueue()
        from repro.rdma.qp import Completion

        for i in range(5):
            cq.push(Completion(
                wr_id=i, status=CompletionStatus.SUCCESS,
                work_type=WorkType.READ, byte_len=8, qp_num=1,
            ))
        assert len(cq.poll(max_entries=3)) == 3
        assert len(cq.poll(max_entries=10)) == 2
        assert cq.poll() == []

    def test_overflow_counted(self):
        from repro.rdma.qp import Completion

        cq = CompletionQueue(capacity=2)
        for i in range(4):
            cq.push(Completion(
                wr_id=i, status=CompletionStatus.SUCCESS,
                work_type=WorkType.READ, byte_len=8, qp_num=1,
            ))
        assert cq.overflows == 2
        assert len(cq) == 2

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            CompletionQueue(capacity=0)
        cq = CompletionQueue()
        with pytest.raises(ValueError):
            cq.poll(max_entries=0)
