"""White-box tests for Cowbird-P4 engine internals."""

import pytest

from repro.cowbird.deploy import deploy_cowbird
from repro.cowbird.p4_engine import P4EngineConfig
from repro.rdma.packets import psn_add


def build(num_instances=1, **p4_kwargs):
    return deploy_cowbird(
        engine="p4", num_instances=num_instances,
        p4_config=P4EngineConfig(**p4_kwargs),
    )


class TestChannels:
    def test_three_channels_per_single_pool_instance(self):
        dep = build()
        state = dep.engine._instances[0]
        assert state.probe_channel is not None
        assert state.data_channel is not None
        assert len(state.pool_channels) == 1
        # Distinct virtual QPNs, all registered in the demux map.
        vqpns = {
            state.probe_channel.virtual_qpn,
            state.data_channel.virtual_qpn,
            next(iter(state.pool_channels.values())).virtual_qpn,
        }
        assert len(vqpns) == 3
        for vqpn in vqpns:
            assert vqpn in dep.engine._channels_by_vqpn

    def test_probe_channel_uses_lowest_priority(self):
        from repro.sim.network import PRIORITY_LOW, PRIORITY_NORMAL

        dep = build()
        state = dep.engine._instances[0]
        assert state.probe_channel.priority == PRIORITY_LOW
        assert state.data_channel.priority == PRIORITY_NORMAL

    def test_psn_ranges_allocated_contiguously(self):
        dep = build()
        state = dep.engine._instances[0]
        channel = state.data_channel
        op1 = channel.emit_read(0x1000, 100, kind="meta", instance=state)
        op2 = channel.emit_read(0x2000, 3000, kind="meta", instance=state)
        assert op1.first_psn == 0 and op1.num_psns == 1
        assert op2.first_psn == 1 and op2.num_psns == 3  # 3000 B / 1024 MTU
        assert channel.send_psn == 4

    def test_match_finds_covering_op_and_skips_done(self):
        dep = build()
        state = dep.engine._instances[0]
        channel = state.data_channel
        op = channel.emit_read(0x1000, 3000, kind="meta", instance=state)
        assert channel.match(op.first_psn) is op
        assert channel.match(psn_add(op.first_psn, 2)) is op
        assert channel.match(psn_add(op.first_psn, 3)) is None
        channel.retire(op)
        assert channel.match(op.first_psn) is None

    def test_go_back_n_rewinds_psn(self):
        dep = build()
        engine = dep.engine
        state = engine._instances[0]
        channel = state.data_channel
        op1 = channel.emit_read(0x1000, 100, kind="meta", instance=state)
        op2 = channel.emit_read(0x2000, 100, kind="meta", instance=state)
        del op2
        psn_before = channel.send_psn
        assert psn_before == 2
        engine._go_back_n(channel)
        # The rewind resets to the oldest incomplete op's first PSN and
        # re-allocates; meta replays re-enter via _maybe_fetch_metadata,
        # so the counter never exceeds its pre-failure value.
        assert channel.send_psn <= psn_before
        assert engine.stats.go_back_n_events == 1


class TestProbePolicies:
    def test_round_robin_cycles_uniformly(self):
        dep = build(num_instances=3)
        engine = dep.engine
        targets = [engine._next_probe_target() for _ in range(6)]
        names = [t.descriptor.instance_id for t in targets]
        assert names == [0, 1, 2, 0, 1, 2]

    def test_weighted_skips_idle_instances(self):
        dep = build(num_instances=2, probe_policy="weighted", idle_stride=4)
        engine = dep.engine
        hot, idle = engine._instances
        hot.activity_ttl = 16
        idle.activity_ttl = 0
        picks = [engine._next_probe_target() for _ in range(10)]
        hot_picks = sum(1 for p in picks if p is hot)
        idle_picks = sum(1 for p in picks if p is idle)
        assert hot_picks > idle_picks
        assert idle_picks >= 1  # stride guarantees eventual service

    def test_weighted_all_idle_still_probes_eventually(self):
        dep = build(num_instances=2, probe_policy="weighted", idle_stride=3)
        engine = dep.engine
        for state in engine._instances:
            state.activity_ttl = 0
        picks = [engine._next_probe_target() for _ in range(12)]
        assert any(p is not None for p in picks)

    def test_double_engine_on_switch_rejected(self):
        dep = build()
        from repro.cowbird.p4_engine import CowbirdP4Engine

        with pytest.raises(RuntimeError, match="pipeline"):
            CowbirdP4Engine(dep.sim, dep.bed.switch)

    def test_start_requires_instances(self):
        from repro.cowbird.p4_engine import CowbirdP4Engine
        from repro.testbed import Testbed

        bed = Testbed()
        engine = CowbirdP4Engine(bed.sim, bed.switch)
        with pytest.raises(RuntimeError, match="no instances"):
            engine.start()

    def test_double_start_rejected(self):
        dep = build()
        with pytest.raises(RuntimeError, match="already started"):
            dep.engine.start()
