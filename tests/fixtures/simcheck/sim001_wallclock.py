"""Fixture: SIM001 — wall-clock reads in sim-path code."""

import time
from datetime import datetime


def elapsed():
    start = time.time()  # SIM001
    mid = time.monotonic()  # SIM001
    stamp = datetime.now()  # SIM001 (argless)
    return start, mid, stamp
