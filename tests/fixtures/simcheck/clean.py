"""Fixture: fully compliant sim code — zero findings expected."""

import random


class Engine:
    def __init__(self, seed):
        self.rng = random.Random(seed)
        self._probe = None

    def start(self, sim):
        self._probe = sim.call_after_cancellable(5.0, self.tick)

    def stop(self):
        if self._probe is not None:
            self._probe.cancel()

    def tick(self):
        return self.rng.random()


def arm_sorted(sim, hosts):
    for host in sorted(hosts):
        sim.call_at(1.0, host)
