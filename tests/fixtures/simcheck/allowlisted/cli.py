"""Fixture: named cli.py -> SIM001 allowlisted (wall clock is fine here)."""

import time


def wall_elapsed(fn):
    start = time.time()  # allowlisted: no SIM001
    fn()
    return time.time() - start
