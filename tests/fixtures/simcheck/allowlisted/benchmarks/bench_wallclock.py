"""Fixture: under benchmarks/ -> SIM001 allowlisted."""

import time


def bench(fn, repeats):
    start = time.perf_counter()  # allowlisted: no SIM001
    for _ in range(repeats):
        fn()
    return time.perf_counter() - start
