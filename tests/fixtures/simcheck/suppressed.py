"""Fixture: every violation carries an inline suppression -> clean."""

import random
import time


def measured():
    start = time.time()  # simcheck: ignore[SIM001]
    jitter = random.random()  # simcheck: ignore
    rng = random.Random()  # simcheck: ignore[SIM002, SIM001]
    return start, jitter, rng


class Suppressed:
    def start(self, sim):
        self._tok = sim.call_after_cancellable(1.0, self.tick)  # simcheck: ignore[SIM004]

    def tick(self):
        pass
