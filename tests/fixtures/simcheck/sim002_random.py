"""Fixture: SIM002 — unseeded randomness."""

import random


def roll():
    jitter = random.random()  # SIM002: shared module-level RNG
    rng = random.Random()  # SIM002: no seed
    choice = random.choice([1, 2, 3])  # SIM002: shared module-level RNG
    seeded = random.Random(42)  # OK
    return jitter, rng, choice, seeded
