"""Fixture: SIM004 — cancellable tokens nobody can cancel."""


class LeakyEngine:
    def start(self, sim):
        self._probe = sim.call_after_cancellable(5.0, self._tick)  # SIM004
        sim.call_at_cancellable(9.0, self._tick)  # SIM004: discarded

    def _tick(self):
        pass


class CleanEngine:
    def start(self, sim):
        self._probe = sim.call_after_cancellable(5.0, self._tick)  # OK

    def stop(self):
        self._probe.cancel()

    def _tick(self):
        pass
