"""Fixture: SIM006 — broad handlers that swallow simulation errors."""


def swallow(run):
    try:
        run()
    except Exception:  # SIM006: no re-raise, nothing bound
        pass
    try:
        run()
    except:  # noqa: E722  # SIM006: bare except, no re-raise
        pass


def fine(run, log):
    try:
        run()
    except Exception as exc:  # OK: exception is used
        log(exc)
    try:
        run()
    except:  # noqa: E722  # OK: re-raises
        raise
    try:
        run()
    except ValueError:  # OK: specific
        pass
