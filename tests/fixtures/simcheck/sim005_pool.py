"""Fixture: SIM005 — pool acquire with no release in the class."""


class LeakySender:
    def __init__(self, pool):
        self.pool = pool

    def send(self, bth):
        packet = self.pool.acquire("a", "b", bth)  # SIM005
        return packet


class CleanSender:
    def __init__(self, pool):
        self.pool = pool

    def send(self, bth):
        packet = self.pool.acquire("a", "b", bth)  # OK: released below
        self.pool.release(packet)
