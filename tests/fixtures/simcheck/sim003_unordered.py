"""Fixture: SIM003 — scheduling from unordered iteration."""


def arm_all(sim, hosts, table):
    for host in set(hosts):  # SIM003
        sim.call_at(1.0, host.tick)
    for key in table.keys():  # SIM003 (dict view, conservative)
        sim.schedule(key)
    for host in sorted(hosts):  # OK: deterministic order
        sim.call_at(2.0, host.tick)
