"""Spot-VM reclamation: offload-engine failover and recovery.

The paper motivates Cowbird-Spot with spot instances (Section 2.2),
which "can be reclaimed by the cloud provider at any time".  These tests
kill the agent mid-workload and hand the (still running) client
instances to a fresh agent on a new host, which reconstructs its cursors
from the client's red block and re-executes the incomplete suffix.
"""


from repro.cowbird.deploy import deploy_cowbird
from repro.cowbird.spot_engine import CowbirdSpotEngine, SpotEngineConfig
from repro.cowbird.wire import RwType, decode_request_id


def start_replacement_agent(dep, recover=True):
    """Spin up a new agent host and adopt the existing instances."""
    replacement = dep.bed.add_host(
        f"spot-agent-{len(dep.bed.hosts)}", cpu_cores=1, smt=2
    )
    engine = CowbirdSpotEngine(replacement, SpotEngineConfig())
    for instance in dep.instances:
        engine.register_instance(instance, {"pool": dep.pool_host},
                                 recover=recover)
    engine.start()
    return engine


class TestRecoveryBookkeeping:
    def test_fresh_recovery_matches_zero_state(self):
        dep = deploy_cowbird(engine="none")
        agent = dep.bed.add_host("agent", cpu_cores=1, smt=2)
        engine = CowbirdSpotEngine(agent)
        engine.register_instance(dep.instances[0], {"pool": dep.pool_host},
                                 recover=True)
        state = engine._instances[0]
        assert state.parsed_meta == 0
        assert state.read_count == 0
        assert state.resp_data_cursor == 0

    def test_recovery_adopts_red_block_cursors(self):
        dep = deploy_cowbird(engine="spot")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            for i in range(10):
                rid = yield from inst.async_read(thread, 0, i * 64, 64)
                inst.poll_add(poll, rid)
            done = 0
            while done < 10:
                events = yield from inst.poll_wait(thread, poll, max_ret=16)
                done += len(events)

        dep.sim.run_until_complete(dep.sim.spawn(app()), deadline=50e9)
        dep.engine.stop()
        engine2 = start_replacement_agent(dep)
        state = engine2._instances[0]
        assert state.parsed_meta == 10
        assert state.read_count == 10
        assert state.write_count == 0
        assert state.resp_data_cursor == 10 * 64


class TestMidFlightFailover:
    def test_pending_requests_complete_on_new_agent(self):
        """Requests issued after (or lost during) the reclamation are
        executed by the replacement agent."""
        dep = deploy_cowbird(engine="spot")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()
        pool_region = dep.pool_region()
        for i in range(20):
            pool_region.write(dep.region.translate(i * 64), bytes([i + 1]) * 64)
        sim = dep.sim
        results = {}

        def app():
            poll = inst.poll_create()
            rids = []
            # First half completes on the original agent.
            for i in range(10):
                rid = yield from inst.async_read(thread, 0, i * 64, 64)
                inst.poll_add(poll, rid)
                rids.append(rid)
            done = 0
            while done < 10:
                events = yield from inst.poll_wait(thread, poll, max_ret=16)
                done += len(events)
            # --- reclamation: the agent dies right now ---
            dep.engine.stop()
            # The client keeps issuing, unaware.
            for i in range(10, 20):
                rid = yield from inst.async_read(thread, 0, i * 64, 64)
                inst.poll_add(poll, rid)
                rids.append(rid)
            # Grace period passes; a replacement agent takes over.
            yield from thread.sleep(50_000)
            start_replacement_agent(dep)
            while done < 20:
                events = yield from inst.poll_wait(thread, poll, max_ret=16)
                done += len(events)
            for rid in rids:
                results[rid] = inst.fetch_response(rid)

        sim.run_until_complete(sim.spawn(app()), deadline=300e9)
        assert len(results) == 20
        values = [v[0] for v in results.values()]
        assert sorted(values) == list(range(1, 21))

    def test_unfinished_writes_reexecuted(self):
        """Writes parsed but not completed by the dead agent re-execute
        from the request data ring (payloads persist until the head
        advances)."""
        dep = deploy_cowbird(engine="spot")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()
        sim = dep.sim

        def app():
            poll = inst.poll_create()
            # Kill the agent immediately: nothing gets executed.
            dep.engine.stop()
            wids = []
            for i in range(5):
                wid = yield from inst.async_write(
                    thread, 0, i * 64, bytes([0xA0 + i]) * 32
                )
                inst.poll_add(poll, wid)
                wids.append(wid)
            yield from thread.sleep(20_000)
            start_replacement_agent(dep)
            done = 0
            while done < 5:
                events = yield from inst.poll_wait(thread, poll, max_ret=8)
                done += len(events)

        sim.run_until_complete(sim.spawn(app()), deadline=300e9)
        pool_region = dep.pool_region()
        for i in range(5):
            assert pool_region.read(dep.region.translate(i * 64), 32) == (
                bytes([0xA0 + i]) * 32
            )

    def test_interleaved_types_recover_consistently(self):
        """The prefix-published red block keeps per-type sequence
        numbering correct across a failover even when reads and writes
        interleave."""
        dep = deploy_cowbird(engine="spot")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()
        sim = dep.sim
        pool_region = dep.pool_region()
        pool_region.write(dep.region.translate(4096), b"R" * 64)

        def app():
            poll = inst.poll_create()
            ids = []
            for i in range(4):
                wid = yield from inst.async_write(thread, 0, i * 64, b"W" * 16)
                rid = yield from inst.async_read(thread, 0, 4096, 64)
                inst.poll_add(poll, wid)
                inst.poll_add(poll, rid)
                ids.extend([wid, rid])
            done = 0
            while done < 4:  # let roughly half complete
                events = yield from inst.poll_wait(thread, poll, max_ret=2)
                done += len(events)
            dep.engine.stop()
            yield from thread.sleep(20_000)
            start_replacement_agent(dep)
            while done < 8:
                events = yield from inst.poll_wait(thread, poll, max_ret=8)
                done += len(events)
            return ids

        ids = sim.run_until_complete(sim.spawn(app()), deadline=300e9)
        # Every write landed; every read returned the right bytes.
        for request_id in ids:
            rw_type, _region, _seq = decode_request_id(request_id)
            if rw_type is RwType.READ:
                assert inst.fetch_response(request_id) == b"R" * 64
        for i in range(4):
            assert pool_region.read(dep.region.translate(i * 64), 16) == b"W" * 16


class TestConvenienceApi:
    def test_wait_one(self):
        dep = deploy_cowbird(engine="spot")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()
        dep.pool_region().write(dep.region.translate(0), b"single")

        def app():
            rid = yield from inst.async_read(thread, 0, 0, 6)
            event = yield from inst.wait_one(thread, rid)
            return inst.fetch_response(event.request_id)

        assert dep.sim.run_until_complete(dep.sim.spawn(app()),
                                          deadline=50e9) == b"single"

    def test_wait_one_timeout(self):
        dep = deploy_cowbird(engine="none")  # no engine: never completes
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            rid = yield from inst.async_read(thread, 0, 0, 8)
            return (yield from inst.wait_one(thread, rid, timeout=5_000))

        assert dep.sim.run_until_complete(dep.sim.spawn(app()),
                                          deadline=50e9) is None

    def test_select_returns_ready_subset(self):
        dep = deploy_cowbird(engine="spot")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            rids = []
            for i in range(4):
                rid = yield from inst.async_read(thread, 0, i * 64, 16)
                rids.append(rid)
            collected = []
            while len(collected) < 4:
                remaining = [r for r in rids if r not in collected]
                events = yield from inst.select(thread, remaining)
                collected.extend(e.request_id for e in events)
            return collected

        collected = dep.sim.run_until_complete(dep.sim.spawn(app()),
                                               deadline=50e9)
        assert len(collected) == 4

    def test_select_empty_is_noop(self):
        dep = deploy_cowbird(engine="none")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            return (yield from inst.select(thread, []))

        assert dep.sim.run_until_complete(dep.sim.spawn(app()),
                                          deadline=1e9) == []
