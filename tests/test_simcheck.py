"""Golden-file tests for the ``simcheck`` static pass.

Each SIM rule gets a positive fixture (violations detected at the right
lines), plus shared fixtures proving suppression comments and the
SIM001 allowlist work.  The shipped ``src/repro`` tree must lint clean
— that is the CI contract for ``repro lint``.
"""

import json
import os

import pytest

from repro.analysis import lint_paths, lint_source
from repro.analysis.simcheck import is_allowlisted, iter_python_files, run
from repro.cli import main as cli_main

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures", "simcheck")
SRC_REPRO = os.path.join(os.path.dirname(HERE), "src", "repro")


def lint_fixture(name, **kw):
    return lint_paths([os.path.join(FIXTURES, name)], **kw)


def codes(findings):
    return [f.code for f in findings]


class TestRulePositives:
    def test_sim001_wall_clock(self):
        findings = lint_fixture("sim001_wallclock.py")
        assert codes(findings) == ["SIM001", "SIM001", "SIM001"]
        assert [f.line for f in findings] == [8, 9, 10]
        assert "time.time()" in findings[0].message
        assert "datetime.now()" in findings[2].message

    def test_sim002_unseeded_random(self):
        findings = lint_fixture("sim002_random.py")
        assert codes(findings) == ["SIM002", "SIM002", "SIM002"]
        assert [f.line for f in findings] == [7, 8, 9]
        assert "without a seed" in findings[1].message

    def test_sim003_unordered_scheduling(self):
        findings = lint_fixture("sim003_unordered.py")
        assert codes(findings) == ["SIM003", "SIM003"]
        # The sorted() loop at the bottom must not be flagged.
        assert [f.line for f in findings] == [5, 7]

    def test_sim004_uncancelled_tokens(self):
        findings = lint_fixture("sim004_tokens.py")
        assert codes(findings) == ["SIM004", "SIM004"]
        messages = " ".join(f.message for f in findings)
        assert "_probe" in messages
        assert "discarded" in messages
        # CleanEngine cancels in stop() and must not appear.
        assert all("CleanEngine" not in f.message for f in findings)

    def test_sim005_pool_without_release(self):
        findings = lint_fixture("sim005_pool.py")
        assert codes(findings) == ["SIM005"]
        assert "LeakySender" in findings[0].message

    def test_sim006_swallowed_errors(self):
        findings = lint_fixture("sim006_except.py")
        assert codes(findings) == ["SIM006", "SIM006"]
        # All three handlers in fine() are acceptable.
        assert max(f.line for f in findings) < 15

    def test_sim000_parse_error(self):
        findings = lint_source("broken.py", "def f(:\n    pass\n")
        assert codes(findings) == ["SIM000"]
        assert "syntax error" in findings[0].message


class TestSuppressionAndAllowlist:
    def test_suppressed_fixture_is_clean(self):
        assert lint_fixture("suppressed.py") == []

    def test_clean_fixture_is_clean(self):
        assert lint_fixture("clean.py") == []

    def test_suppression_is_code_specific(self):
        src = "import time\nt = time.time()  # simcheck: ignore[SIM002]\n"
        findings = lint_source("mod.py", src)
        assert codes(findings) == ["SIM001"]

    def test_allowlisted_paths(self):
        assert is_allowlisted("src/repro/cli.py")
        assert is_allowlisted("benchmarks/perf/bench_engine.py")
        assert not is_allowlisted("src/repro/sim/engine.py")

    def test_allowlisted_fixtures_have_no_sim001(self):
        findings = lint_fixture("allowlisted")
        assert "SIM001" not in codes(findings)


class TestDriver:
    def test_select_restricts_rules(self):
        findings = lint_paths([FIXTURES], select=["SIM002"])
        assert set(codes(findings)) == {"SIM002"}

    def test_ignore_drops_rules(self):
        findings = lint_paths([FIXTURES], ignore=["SIM001,SIM002"])
        assert "SIM001" not in codes(findings)
        assert "SIM002" not in codes(findings)
        assert "SIM004" in codes(findings)

    def test_walker_prunes_pycache(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "bad.py").write_text("import time\nt = time.time()\n")
        files = list(iter_python_files([str(tmp_path)]))
        assert files == [str(tmp_path / "ok.py")]

    def test_run_reports_missing_path(self, capsys):
        assert run([os.path.join(FIXTURES, "does_not_exist.py")]) == 2

    def test_json_output_shape(self, capsys):
        assert run([os.path.join(FIXTURES, "sim005_pool.py")], as_json=True) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["code"] == "SIM005"
        assert set(payload[0]) == {"path", "line", "col", "code", "message", "hint"}


class TestCliIntegration:
    def test_lint_exits_nonzero_on_seeded_violation(self, capsys):
        rc = cli_main(["lint", os.path.join(FIXTURES, "sim001_wallclock.py")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "SIM001" in out and "hint:" in out

    def test_lint_exits_zero_on_clean_input(self, capsys):
        rc = cli_main(["lint", os.path.join(FIXTURES, "clean.py")])
        assert rc == 0
        assert "0 findings" in capsys.readouterr().out

    def test_shipped_tree_is_simcheck_clean(self):
        findings = lint_paths([SRC_REPRO])
        assert findings == [], "\n".join(f.render() for f in findings)

    @pytest.mark.parametrize("flag", ["--select", "--ignore"])
    def test_lint_filter_flags(self, flag, capsys):
        rc = cli_main(["lint", flag, "SIM006",
                       os.path.join(FIXTURES, "sim006_except.py")])
        capsys.readouterr()
        assert rc == (1 if flag == "--select" else 0)
