"""Integration tests for the per-figure experiment drivers.

Each driver runs at a tiny scale here; the assertions check the *shape*
claims the paper makes, not absolute numbers (see EXPERIMENTS.md).
"""

import pytest

from repro.experiments import fig01, fig02, fig08, fig12, fig13, tab01, tab05
from repro.experiments.common import run_microbench


class TestFig01:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig01.run(ops_per_thread=150)

    def test_all_thread_counts_present(self, rows):
        assert [r.threads for r in rows] == [1, 2, 4]

    def test_sync_rdma_far_below_local(self, rows):
        for row in rows:
            assert row.normalized["one-sided"] < 0.15
            assert row.normalized["two-sided"] < 0.15

    def test_async_beats_sync_by_order_of_magnitude(self, rows):
        for row in rows:
            assert row.normalized["async"] > 3 * row.normalized["one-sided"]

    def test_cowbird_closes_most_of_the_gap(self, rows):
        for row in rows:
            assert row.normalized["cowbird"] > 0.5
            assert row.normalized["cowbird"] > row.normalized["async"]

    def test_rendering(self, rows):
        out = fig01.format_rows(rows)
        assert "cowbird" in out and "threads" in out


class TestFig02:
    @pytest.fixture(scope="class")
    def breakdown(self):
        return fig02.run()

    def test_rdma_total_in_paper_band(self, breakdown):
        assert 550 <= breakdown.rdma_total_ns <= 720

    def test_order_of_magnitude_gap(self, breakdown):
        assert breakdown.speedup >= 10

    def test_measured_matches_model(self, breakdown):
        """The simulation must charge what the model declares."""
        assert breakdown.rdma_measured_ns == pytest.approx(
            breakdown.rdma_total_ns, rel=0.05
        )
        assert breakdown.cowbird_measured_ns <= 3 * breakdown.cowbird_total_ns

    def test_segments_sum(self, breakdown):
        assert sum(breakdown.rdma_segments.values()) == breakdown.rdma_total_ns

    def test_rendering(self, breakdown):
        out = fig02.format_breakdown(breakdown)
        assert "doorbell" in out


class TestFig08Shapes:
    """One panel at reduced scale; the bench target runs the full grid."""

    @pytest.fixture(scope="class")
    def cells(self):
        return fig08.run(
            record_sizes=(64,), thread_counts=(1, 4), ops_per_thread=200,
            systems=("one-sided", "async", "cowbird", "local"),
        )

    def get(self, cells, system, threads):
        return next(
            c for c in cells if c.system == system and c.threads == threads
        )

    def test_ordering_holds(self, cells):
        for threads in (1, 4):
            sync = self.get(cells, "one-sided", threads).throughput_mops
            async_ = self.get(cells, "async", threads).throughput_mops
            cowbird = self.get(cells, "cowbird", threads).throughput_mops
            local = self.get(cells, "local", threads).throughput_mops
            assert sync < async_ < cowbird <= local * 1.05

    def test_bandwidth_ceiling_formula(self):
        # 512 B records: ~(512+58+4+4) bytes per record at 100 Gb/s.
        ceiling = fig08.bandwidth_ceiling_mops(512)
        assert 20 < ceiling < 25

    def test_rendering(self, cells):
        assert "panel" in fig08.format_cells(cells)


class TestFig12:
    @pytest.fixture(scope="class")
    def results(self):
        return fig12.run(thread_counts=(1, 4), ops_per_thread=150)

    def test_cowbird_order_of_magnitude_above_aifm(self, results):
        assert fig12.max_speedup(results) >= 10

    def test_aifm_capped_by_iokernel(self, results):
        aifm = [r for r in results if r.system == "aifm"]
        # Scaling from 1 to 4 threads is sublinear: shared IOKernel.
        by_threads = {r.threads: r.throughput_mops for r in aifm}
        assert by_threads[4] < 3.0 * by_threads[1]

    def test_rendering(self, results):
        assert "speedup" in fig12.format_results(results)


class TestFig13:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig13.run(record_sizes=(64, 1024), ops=120)

    def get(self, rows, system, size):
        return next(
            r for r in rows if r.system == system and r.record_bytes == size
        )

    def test_sync_rdma_is_the_latency_floor(self, rows):
        for size in (64, 1024):
            sync = self.get(rows, "one-sided", size)
            batched = self.get(rows, "async", size)
            assert sync.median_us < batched.median_us

    def test_unbatched_cowbird_close_to_sync_rdma(self, rows):
        """Figure 13: without batching, Cowbird's latency is similar to
        synchronous one-sided RDMA (small protocol delta)."""
        for size in (64, 1024):
            sync = self.get(rows, "one-sided", size)
            cowbird = self.get(rows, "cowbird-nb", size)
            assert cowbird.median_us < sync.median_us + 12.0

    def test_batched_cowbird_beats_async_rdma(self, rows):
        for size in (64, 1024):
            async_ = self.get(rows, "async", size)
            cowbird = self.get(rows, "cowbird", size)
            assert cowbird.median_us < async_.median_us
            assert cowbird.p99_us < async_.p99_us

    def test_p99_at_least_median(self, rows):
        for row in rows:
            assert row.p99_us >= row.median_us

    def test_rendering(self, rows):
        assert "latency" in fig13.format_rows(rows)


class TestTables:
    def test_tab01_matches_paper(self):
        result = tab01.run()
        assert result["max_discount"] == pytest.approx(0.9025, abs=0.01)
        assert len(result["rows"]) == 3
        for provider, gain in result["efficiency_gain_single_node"].items():
            assert gain > 0

    def test_tab05_matches_paper(self):
        result = tab05.run()
        assert result["estimated"] == result["paper"]
        assert result["fits_tofino"]
        assert result["cowbird_only"]["sram_kb"] < result["estimated"]["sram_kb"]


class TestCommunicationRatioMicro:
    def test_sync_above_80_percent(self):
        result = run_microbench("one-sided", 2, record_bytes=64,
                                ops_per_thread=150)
        assert result.communication_ratio > 0.8

    def test_local_is_zero(self):
        result = run_microbench("local", 2, record_bytes=64, ops_per_thread=150)
        assert result.communication_ratio == 0.0
