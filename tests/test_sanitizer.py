"""Unit tests for the runtime ``SimSanitizer``.

Covers the four detector families (packet lifetime, timer tokens,
clock monotonicity, event-stream digest) plus the acceptance criterion
that a fig08 sweep's ``sim.digest`` is identical at ``--parallel 1``
and ``--parallel 4``.
"""

import heapq
import json

import pytest

from repro import telemetry
from repro.analysis import SanitizerError, sanitize_enabled
from repro.experiments.common import run_microbench
from repro.experiments.sweep import SweepPoint, run_sweep
from repro.rdma.packets import Bth, Opcode, PacketPool
from repro.sim.engine import SimulationError, Simulator


def make_pool(sim):
    return PacketPool(sanitizer=sim.sanitizer)


def acquire(pool):
    return pool.acquire(
        "a", "b", Bth(opcode=Opcode.RC_SEND_ONLY, dest_qp=1, psn=0)
    )


class TestEnvGate:
    def test_sanitize_enabled_parses_common_values(self):
        assert not sanitize_enabled({})
        assert not sanitize_enabled({"REPRO_SANITIZE": "0"})
        assert not sanitize_enabled({"REPRO_SANITIZE": "false"})
        assert sanitize_enabled({"REPRO_SANITIZE": "1"})
        assert sanitize_enabled({"REPRO_SANITIZE": "yes"})

    def test_default_simulator_has_no_sanitizer(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        sim = Simulator()
        assert sim.sanitizer is None
        with pytest.raises(SimulationError, match="requires the sanitizer"):
            sim.digest()

    def test_env_flag_enables_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Simulator().sanitizer is not None


class TestPacketLifetime:
    def test_double_release_raises_with_sites(self):
        sim = Simulator(sanitize=True)
        pool = make_pool(sim)
        packet = acquire(pool)
        pool.release(packet)
        with pytest.raises(SanitizerError, match="double-release"):
            pool.release(packet)

    def test_outstanding_packet_reported_as_leak(self):
        sim = Simulator(sanitize=True)
        pool = make_pool(sim)
        acquire(pool)
        with pytest.raises(SanitizerError, match="never released"):
            sim.sanitizer.check_end_of_run()

    def test_released_packet_is_not_a_leak(self):
        sim = Simulator(sanitize=True)
        pool = make_pool(sim)
        packet = acquire(pool)
        pool.release(packet)
        assert sim.sanitizer.check_end_of_run() == []

    def test_reacquired_shell_resets_double_release_state(self):
        sim = Simulator(sanitize=True)
        pool = make_pool(sim)
        first = acquire(pool)
        pool.release(first)
        again = acquire(pool)  # same shell off the free-list
        assert again is first
        pool.release(again)  # one release per acquire: legal
        assert sim.sanitizer.check_end_of_run() == []

    def test_foreign_release_is_counted_not_raised(self):
        sim = Simulator(sanitize=True)
        pool = make_pool(sim)
        stranger = Bth(opcode=Opcode.RC_SEND_ONLY, dest_qp=1, psn=0)
        packet = pool.acquire("a", "b", stranger)
        packet._pool = None  # simulate a never-pooled packet reaching release
        sim.sanitizer._outstanding.clear()
        sim.sanitizer._freed.clear()
        pool.release(packet)
        assert sim.sanitizer.foreign_releases == 1


class TestTimerTokens:
    def test_armed_token_reported(self):
        sim = Simulator(sanitize=True)
        sim.call_after_cancellable(10.0, lambda: None)
        with pytest.raises(SanitizerError, match="still armed"):
            sim.sanitizer.check_end_of_run()

    def test_cancelled_token_is_clean(self):
        sim = Simulator(sanitize=True)
        token = sim.call_after_cancellable(10.0, lambda: None)
        token.cancel()
        assert sim.sanitizer.check_end_of_run() == []

    def test_dispatched_token_is_clean(self):
        sim = Simulator(sanitize=True)
        fired = []
        sim.call_after_cancellable(10.0, lambda: fired.append(True))
        sim.run()
        assert fired == [True]
        assert sim.sanitizer.check_end_of_run() == []


class TestClockAndDigest:
    def test_monotonic_violation_detected(self):
        sim = Simulator(sanitize=True)
        sim.now = 100.0
        heapq.heappush(sim._queue, (5.0, next(sim._sequence), lambda: None))
        sim.run()
        with pytest.raises(SanitizerError, match="ran backwards"):
            sim.sanitizer.check_end_of_run()

    def test_digest_deterministic_across_runs(self):
        def one_run():
            sim = Simulator(sanitize=True)

            def proc():
                for _ in range(5):
                    yield 3.0

            sim.spawn(proc(), name="p")
            sim.run()
            return sim.digest()

        assert one_run() == one_run()

    def test_digest_distinguishes_different_event_streams(self):
        def one_run(steps):
            sim = Simulator(sanitize=True)

            def proc():
                for _ in range(steps):
                    yield 3.0

            sim.spawn(proc(), name="p")
            sim.run()
            return sim.digest()

        assert one_run(5) != one_run(6)


class TestEndToEnd:
    def test_microbench_closes_leak_free_under_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        result = run_microbench(
            "cowbird-p4", threads=2, record_bytes=256, ops_per_thread=40, seed=3
        )
        assert result.total_ops == 80

    def test_fig08_digest_identical_parallel_1_vs_4(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        points = [
            SweepPoint(
                "microbench",
                dict(system=system, threads=2, record_bytes=256,
                     ops_per_thread=40, seed=8),
            )
            for system in ("local", "one-sided", "cowbird", "cowbird-p4")
        ]

        def sweep(parallel):
            tel = telemetry.Telemetry()
            with telemetry.activate(tel):
                run_sweep(points, parallel=parallel)
            return tel.snapshot()

        serial, fanned = sweep(1), sweep(4)
        assert serial["sim.digest"] == fanned["sim.digest"]
        assert serial["sim.digest"]["value"] > 0
        # The whole merged snapshot (digest gauge included) is byte-equal.
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            fanned, sort_keys=True
        )
