"""End-to-end scenarios and the behavior-preservation golden check.

Two guarantees pinned here (ISSUE 4 acceptance criteria):

* the registry-driven ``build_microbench`` produces byte-identical
  results to the pre-refactor if/elif ladder for every system
  (``tests/golden/fig08_point.json`` was captured before the refactor);
* a checked-in scenario file reproduces a fig08 point end-to-end via
  the declarative path, including a 2-shard ``ShardedPool`` variant
  that completes the same workload.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.cluster import OffloadEngine, load_scenario
from repro.cluster.scenario import build_scenario, run_scenario
from repro.experiments.common import MICROBENCH_SYSTEMS, run_microbench

REPO = Path(__file__).resolve().parents[1]
GOLDEN = REPO / "tests" / "golden" / "fig08_point.json"
SCENARIO_DIR = REPO / "examples" / "scenarios"


class TestGoldenBehaviorPreservation:
    @pytest.mark.parametrize("system", MICROBENCH_SYSTEMS)
    def test_fig08_point_unchanged_by_refactor(self, system):
        golden = json.loads(GOLDEN.read_text())
        depth = 512 if system.startswith("cowbird") else 100
        result = run_microbench(
            system, threads=2, record_bytes=256, ops_per_thread=120,
            seed=8, pipeline_depth=depth,
        )
        assert dataclasses.asdict(result) == golden[system]


class TestScenarioReproducesFigure:
    def test_scenario_matches_fig08_cell_exactly(self):
        spec = load_scenario(SCENARIO_DIR / "fig08_point.toml")
        scenario_result = run_scenario(spec)
        direct_result = run_microbench(
            "cowbird", 4, record_bytes=256, ops_per_thread=500,
            seed=8, pipeline_depth=512,
        )
        assert dataclasses.asdict(scenario_result) == dataclasses.asdict(
            direct_result
        )

    def test_sharded_scenario_completes_same_workload(self):
        spec = load_scenario(SCENARIO_DIR / "fig08_point_sharded.toml")
        assert spec.pool.shards == 2
        sharded = run_scenario(spec)
        baseline = run_scenario(
            load_scenario(SCENARIO_DIR / "fig08_point.toml")
        )
        # Same workload completes over 2 shards; throughput stays in
        # the same regime (striping adds no protocol overhead beyond
        # per-node channels).
        assert sharded.total_ops == baseline.total_ops == 4 * 500
        assert sharded.threads == baseline.threads
        assert sharded.throughput_mops == pytest.approx(
            baseline.throughput_mops, rel=0.25
        )


class TestBuildScenario:
    def test_built_engine_satisfies_protocol_and_closes(self):
        spec = load_scenario(SCENARIO_DIR / "fig08_point_sharded.toml")
        deployment = build_scenario(spec)
        assert isinstance(deployment.engine, OffloadEngine)
        assert sorted(deployment.pool_hosts) == ["pool0", "pool1"]
        assert len(deployment.backends) == spec.workload.threads
        deployment.close()
        deployment.close()  # idempotent

    def test_engine_config_overrides_reach_the_engine(self):
        spec = load_scenario(SCENARIO_DIR / "fig08_point.toml")
        spec.engine.config = {"batch_size": 17}
        deployment = build_scenario(spec)
        assert deployment.engine.config.batch_size == 17
        deployment.close()

    def test_invalid_spec_refuses_to_build(self):
        spec = load_scenario(SCENARIO_DIR / "fig08_point.toml")
        spec.system = "nonexistent"
        with pytest.raises(Exception):
            build_scenario(spec)
