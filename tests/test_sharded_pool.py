"""ShardedPool: striping math, per-shard routing, and sharded failover.

A :class:`~repro.memory.pool.ShardedPool` stripes one logical region
over N ordinary pools (block striping, 4 KiB-aligned chunks) and owns a
region-id space spanning all shards.  The cowbird builders wire one
engine channel per pool node, and :class:`CowbirdBackend` routes each
request to the owning shard — so reads/writes land on the right host
and a spot failover recovers against every shard.
"""

import pytest

from repro.experiments.common import build_microbench
from repro.cowbird.spot_engine import CowbirdSpotEngine, SpotEngineConfig
from repro.memory.pool import MemoryPool, ShardedPool


class TestStripingMath:
    def test_shard_bytes_is_aligned_ceiling(self):
        pool = ShardedPool([MemoryPool("a"), MemoryPool("b"), MemoryPool("c")])
        handle = pool.allocate_region(10_000)
        # ceil(10000 / 3) = 3334, rounded up to the 4096 stripe align.
        assert handle.shard_bytes == 4096
        assert handle.length == 3 * 4096
        assert len(handle.shards) == 3
        assert handle.nodes == ("a", "b", "c")

    def test_locate_maps_offsets_to_owning_shard(self):
        pool = ShardedPool([MemoryPool("a"), MemoryPool("b")])
        handle = pool.allocate_region(8192)
        shard0, local0 = handle.locate(100, 16)
        shard1, local1 = handle.locate(4096 + 7, 16)
        assert shard0.node == "a" and local0 == 100
        assert shard1.node == "b" and local1 == 7
        assert handle.shard_index(4095) == 0
        assert handle.shard_index(4096) == 1

    def test_locate_rejects_boundary_crossing_and_oob(self):
        pool = ShardedPool([MemoryPool("a"), MemoryPool("b")])
        handle = pool.allocate_region(8192)
        with pytest.raises(ValueError):
            handle.locate(4090, 16)  # crosses the shard boundary
        with pytest.raises(ValueError):
            handle.shard_index(handle.length)  # out of bounds
        with pytest.raises(ValueError):
            handle.locate(-1)

    def test_region_ids_unique_across_shards(self):
        pool = ShardedPool([MemoryPool("a"), MemoryPool("b")])
        first = pool.allocate_region(4096)
        second = pool.allocate_region(4096)
        ids = [*first.region_ids, *second.region_ids]
        assert len(ids) == len(set(ids))
        assert ids == [0, 1, 2, 3]

    def test_resolution_back_to_backing_regions(self):
        pools = [MemoryPool("a"), MemoryPool("b")]
        sharded = ShardedPool(pools)
        handle = sharded.allocate_region(8192, name="data")
        for i, shard in enumerate(handle.shards):
            assert sharded.pool_for(shard) is pools[i]
            region = sharded.region_for(shard)
            assert region.rkey == shard.rkey
            assert region.length == handle.shard_bytes
        assert sharded.allocated_bytes == 2 * 4096
        with pytest.raises(KeyError):
            sharded.pool_for(MemoryPool("zzz").allocate_region(64))

    def test_single_shard_degenerates_gracefully(self):
        sharded = ShardedPool([MemoryPool("solo")])
        handle = sharded.allocate_region(100)
        assert handle.shard_bytes == 4096
        assert handle.locate(50)[0].node == "solo"
        with pytest.raises(ValueError):
            ShardedPool([])


def _drive_backend(deployment, reads, writes, record=256, deadline=100e9):
    """Issue reads+writes through backend 0; return completed tokens."""
    backend = deployment.backends[0]
    thread = deployment.compute.cpu.thread("sharded-worker")
    completed = []

    def app():
        for offset, length in reads:
            yield from backend.issue_read(thread, offset, length)
        for offset, data in writes:
            yield from backend.issue_write(thread, offset, data)
        want = len(reads) + len(writes)
        while len(completed) < want:
            tokens = yield from backend.poll_completions(
                thread, max_ret=64, block=True
            )
            completed.extend(tokens)

    sim = deployment.sim
    sim.run_until_complete(sim.spawn(app()), deadline=deadline)
    return completed


class TestShardedDeployment:
    def test_builder_stripes_over_n_pool_hosts(self):
        deployment = build_microbench(
            "cowbird", 1, remote_bytes=1 << 16, pool_shards=2
        )
        assert sorted(deployment.pool_hosts) == ["pool0", "pool1"]
        assert deployment.pool.num_shards == 2
        sharded = deployment.backends[0].sharded
        assert sharded is not None
        assert sharded.nodes == ("pool0", "pool1")
        # Engine wired one channel/QP set per pool node.
        instance = deployment.backends[0].instance
        assert {h.node for h in instance.remote_regions.values()} == {
            "pool0", "pool1",
        }
        deployment.close()

    def test_reads_and_writes_route_to_owning_shard(self):
        deployment = build_microbench(
            "cowbird", 1, remote_bytes=1 << 16, pool_shards=2
        )
        sharded_handle = deployment.backends[0].sharded
        shard_bytes = sharded_handle.shard_bytes
        pool = deployment.pool
        # Seed one record in each shard (pool-side write, engine reads).
        for i, shard in enumerate(sharded_handle.shards):
            region = pool.region_for(shard)
            region.write(shard.base_addr + 64, bytes([0xC0 + i]) * 32)
        reads = [(64, 32), (shard_bytes + 64, 32)]
        writes = [(128, b"\x01" * 32), (shard_bytes + 128, b"\x02" * 32)]
        completed = _drive_backend(deployment, reads, writes)
        assert len(completed) == 4
        # Each write landed on its own shard's backing region.
        for i, shard in enumerate(sharded_handle.shards):
            region = pool.region_for(shard)
            assert region.read(shard.base_addr + 128, 32) == bytes([i + 1]) * 32
        deployment.close()

    def test_spot_failover_against_two_shard_pool(self):
        """Reclaim the agent mid-workload; the replacement recovers the
        instance against both shards and the suffix completes."""
        deployment = build_microbench(
            "cowbird", 1, remote_bytes=1 << 16, pool_shards=2
        )
        backend = deployment.backends[0]
        instance = backend.instance
        sharded_handle = backend.sharded
        shard_bytes = sharded_handle.shard_bytes
        bed = deployment.bed
        thread = deployment.compute.cpu.thread("failover-worker")
        offsets = [i * 64 for i in range(8)] + [
            shard_bytes + i * 64 for i in range(8)
        ]

        def app():
            done = 0
            for offset in offsets[:8]:
                yield from backend.issue_write(thread, offset, b"A" * 16)
            while done < 8:
                tokens = yield from backend.poll_completions(
                    thread, max_ret=32, block=True
                )
                done += len(tokens)
            # --- reclamation ---
            deployment.engine.stop()
            for offset in offsets[8:]:
                yield from backend.issue_write(thread, offset, b"B" * 16)
            yield from thread.sleep(50_000)
            replacement = bed.add_host("spot-agent-2", cpu_cores=1, smt=2)
            engine = CowbirdSpotEngine(replacement, SpotEngineConfig())
            engine.register_instance(
                instance, deployment.pool_hosts, recover=True
            )
            engine.start()
            deployment.engine = engine  # so close() stops the live one
            while done < 16:
                tokens = yield from backend.poll_completions(
                    thread, max_ret=32, block=True
                )
                done += len(tokens)

        sim = deployment.sim
        sim.run_until_complete(sim.spawn(app()), deadline=300e9)
        # First batch landed on shard 0, post-failover batch on shard 1.
        shard0, shard1 = sharded_handle.shards
        region0 = deployment.pool.region_for(shard0)
        region1 = deployment.pool.region_for(shard1)
        for i in range(8):
            assert region0.read(shard0.base_addr + i * 64, 16) == b"A" * 16
            assert region1.read(shard1.base_addr + i * 64, 16) == b"B" * 16
        deployment.close()

    def test_sharding_rejected_for_non_cowbird_systems(self):
        with pytest.raises(ValueError, match="does not support sharded"):
            build_microbench("one-sided", 1, pool_shards=2)
