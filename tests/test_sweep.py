"""The deterministic sweep harness: parallel == serial, byte for byte.

Pins the Issue's acceptance criteria for the sweep runner:

* serial (``parallel=1``) and parallel (``parallel=N``) runs return
  identical results and byte-identical ``--json`` dumps,
* the legacy inline path (``parallel=0``) agrees with the harness,
* the on-disk cache replays identical bytes and actually skips work,
* per-point telemetry snapshots merge back losslessly.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import telemetry
from repro.experiments import fig01, fig08, fig13
from repro.experiments.sweep import SweepPoint, run_sweep, sweep_cache_key
from repro.telemetry.metrics import MetricsRegistry

# Tiny grids: enough points to exercise ordering and merging, small
# enough to keep the suite fast.
FIG08_KW = dict(
    record_sizes=(8, 64),
    thread_counts=(1, 2),
    systems=("one-sided", "cowbird"),
    ops_per_thread=20,
)
FIG13_KW = dict(record_sizes=(8, 64), systems=("one-sided", "cowbird"), ops=20)


class TestSweepPoint:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep point kind"):
            SweepPoint("nonsense", {})

    def test_cache_key_stable_under_kwarg_order(self):
        a = sweep_cache_key("microbench", {"system": "local", "threads": 1}, True)
        b = sweep_cache_key("microbench", {"threads": 1, "system": "local"}, True)
        assert a == b

    def test_cache_key_separates_configs(self):
        a = sweep_cache_key("microbench", {"threads": 1}, True)
        b = sweep_cache_key("microbench", {"threads": 2}, True)
        c = sweep_cache_key("faster", {"threads": 1}, True)
        assert len({a, b, c}) == 3


class TestSerialParallelIdentity:
    def test_fig08_parallel_matches_serial(self):
        serial = fig08.run(parallel=1, **FIG08_KW)
        parallel = fig08.run(parallel=2, **FIG08_KW)
        assert parallel == serial

    def test_fig08_harness_matches_legacy_inline(self):
        assert fig08.run(parallel=1, **FIG08_KW) == fig08.run(**FIG08_KW)

    def test_fig13_parallel_matches_serial(self):
        serial = fig13.run(parallel=1, **FIG13_KW)
        parallel = fig13.run(parallel=2, **FIG13_KW)
        assert parallel == serial

    def test_fig01_harness_matches_legacy_inline(self):
        assert fig01.run(ops_per_thread=10, parallel=1) == fig01.run(
            ops_per_thread=10
        )

    def test_merged_telemetry_identical_serial_vs_parallel(self):
        with telemetry.activate() as tel_serial:
            fig08.run(parallel=1, **FIG08_KW)
        with telemetry.activate() as tel_parallel:
            fig08.run(parallel=2, **FIG08_KW)
        assert tel_parallel.snapshot() == tel_serial.snapshot()
        assert tel_serial.snapshot().get("sim.events_dispatched", 0) > 0
        assert (
            tel_parallel.tracer.last_timestamp_ns()
            == tel_serial.tracer.last_timestamp_ns()
        )


class TestCliByteIdentity:
    def _dump(self, tmp_path, name, *extra):
        from repro.cli import main

        path = tmp_path / f"{name}.json"
        rc = main([
            "run", "fig08", "--ops", "10", "--json", str(path), *extra,
        ])
        assert rc == 0
        return path.read_bytes()

    def test_serial_and_parallel_json_byte_identical(self, tmp_path):
        serial = self._dump(tmp_path, "serial", "--parallel", "1", "--no-cache")
        parallel = self._dump(tmp_path, "par", "--parallel", "2", "--no-cache")
        assert parallel == serial

    def test_cache_hit_replays_identical_bytes(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # .repro_cache lands here, not the repo
        cold = self._dump(tmp_path, "cold", "--parallel", "1")
        assert os.path.isdir(tmp_path / ".repro_cache")
        started = time.perf_counter()
        warm = self._dump(tmp_path, "warm", "--parallel", "1")
        warm_wall = time.perf_counter() - started
        assert warm == cold
        # A warm run only deserializes: it must be far under sim cost.
        assert warm_wall < 10.0

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2,
        reason="speedup needs at least two cores",
    )
    def test_parallel_speedup(self, tmp_path):
        started = time.perf_counter()
        self._dump(tmp_path, "speed-serial", "--parallel", "1", "--no-cache")
        serial_wall = time.perf_counter() - started
        started = time.perf_counter()
        self._dump(
            tmp_path, "speed-par", "--parallel", str(os.cpu_count()), "--no-cache"
        )
        parallel_wall = time.perf_counter() - started
        assert parallel_wall < serial_wall


class TestCache:
    def test_cache_skips_recomputation(self, tmp_path):
        cache = str(tmp_path / "cache")
        points = [
            SweepPoint("microbench", dict(
                system="local", threads=1, record_bytes=64, ops_per_thread=20,
                seed=3,
            ))
        ]
        first = run_sweep(points, parallel=1, cache_dir=cache)
        assert len(os.listdir(cache)) == 1
        second = run_sweep(points, parallel=1, cache_dir=cache)
        assert second == first

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        cache = str(tmp_path / "cache")
        points = [
            SweepPoint("microbench", dict(
                system="local", threads=1, record_bytes=64, ops_per_thread=20,
                seed=3,
            ))
        ]
        first = run_sweep(points, parallel=1, cache_dir=cache)
        (entry,) = os.listdir(cache)
        with open(os.path.join(cache, entry), "wb") as handle:
            handle.write(b"garbage")
        second = run_sweep(points, parallel=1, cache_dir=cache)
        assert second == first


class TestMergeSnapshot:
    def test_merge_equals_shared_registry(self):
        # Record the same traffic into (a) one shared registry and
        # (b) two registries merged in order; the results must agree.
        shared = MetricsRegistry()
        parts = [MetricsRegistry(), MetricsRegistry()]
        for i, registry in enumerate(parts):
            for target in (shared, registry):
                target.counter("ops").inc(10 * (i + 1))
                target.gauge("depth").set(5 - i)
                hist = target.histogram("lat", bounds=(1.0, 10.0, 100.0))
                hist.observe(3.0 * (i + 1))
                hist.observe(50.0)
        merged = MetricsRegistry()
        for registry in parts:
            merged.merge_snapshot(registry.snapshot())
        assert merged.snapshot() == shared.snapshot()

    def test_merge_rejects_mismatched_histogram_bounds(self):
        a = MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0))
        b = MetricsRegistry()
        b.histogram("h", bounds=(1.0, 4.0)).observe(3.0)
        with pytest.raises(ValueError, match="mismatched bounds"):
            a.merge_snapshot(b.snapshot())
