"""Edge-case and stress tests across the stack."""


from repro.cowbird.api import CowbirdConfig
from repro.cowbird.deploy import deploy_cowbird
from repro.cowbird.wire import RequestMetadata, RwType
from repro.rdma.packets import PSN_MODULUS
from repro.testbed import Testbed


class TestPsnWraparound:
    """QPs whose PSNs cross the 24-bit boundary must keep working."""

    def build(self, initial_psn):
        bed = Testbed()
        compute = bed.add_host("compute", cpu_cores=2)
        pool = bed.add_host("pool")
        qp_c, qp_p = bed.connect_qps(compute, pool)
        qp_c.send_psn = initial_psn
        qp_p.expected_psn = initial_psn
        remote = pool.registry.register(1 << 16)
        local = compute.registry.register(1 << 16)
        return bed, compute, qp_c, remote, local

    def test_reads_across_wrap(self):
        bed, compute, qp_c, remote, local = self.build(PSN_MODULUS - 3)
        remote.write(remote.base_addr, bytes(range(200)))
        thread = compute.cpu.thread()

        def op():
            for i in range(8):  # PSNs cross 2^24 mid-sequence
                yield from compute.verbs.read_sync(
                    thread, qp_c, local.base_addr, remote.base_addr + i * 8,
                    remote.rkey, 8,
                )

        bed.sim.run_until_complete(bed.sim.spawn(op()), deadline=1e9)
        assert qp_c.send_psn < 16  # wrapped
        assert local.read(local.base_addr, 8) == bytes(range(56, 64))

    def test_segmented_write_across_wrap(self):
        bed, compute, qp_c, remote, local = self.build(PSN_MODULUS - 2)
        payload = bytes(i % 255 for i in range(3000))
        local.write(local.base_addr, payload)
        thread = compute.cpu.thread()

        def op():
            yield from compute.verbs.write_sync(
                thread, qp_c, local.base_addr, remote.base_addr,
                remote.rkey, 3000,
            )

        bed.sim.run_until_complete(bed.sim.spawn(op()), deadline=1e9)
        assert remote.read(remote.base_addr, 3000) == payload


class TestEngineRaces:
    def test_engine_sees_invalid_entry_and_retries(self):
        """An entry whose rw_type has not been written yet (the client
        writes it last) must stop the parse, not corrupt state."""
        dep = deploy_cowbird(engine="spot")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        # Simulate a torn append: bump the tail past a zeroed entry.
        inst.metadata_ring.tail += 1
        inst.green.request_meta_tail = inst.metadata_ring.tail
        inst._publish_green()
        dep.sim.run(until=100_000)
        engine_state = dep.engine._instances[0]
        assert engine_state.parsed_meta == 0  # stopped at INVALID
        # Now complete the append properly and issue through the API.
        entry = RequestMetadata(
            rw_type=RwType.READ,
            req_addr=dep.region.translate(0),
            resp_addr=inst.response_data.base_addr,
            length=16,
            region_id=0,
        )
        inst.region.write(inst.metadata_ring.addr_of(0), entry.pack())
        inst._reads[1] = __import__(
            "repro.cowbird.api", fromlist=["_OutstandingRead"]
        )._OutstandingRead(sequence=1, addr=entry.resp_addr, length=16,
                           pad=0, ring_allocated=True)
        inst.response_data.tail += 16
        dep.sim.run(until=300_000)
        assert dep.engine._instances[0].parsed_meta == 1

    def test_metadata_ring_wraps_many_times(self):
        """Long-running instance: ring indices far beyond capacity."""
        dep = deploy_cowbird(
            engine="spot",
            cowbird_config=CowbirdConfig(metadata_capacity=8),
        )
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()
        n = 50  # 6+ wraps of the 8-entry ring

        def app():
            poll = inst.poll_create()
            for i in range(n):
                rid = yield from inst.async_read(thread, 0, (i % 64) * 8, 8)
                inst.poll_add(poll, rid)
                events = yield from inst.poll_wait(thread, poll, max_ret=8,
                                                   timeout=0)
                del events
                # Throttle to ring capacity.
                while inst.metadata_ring.free_entries() == 0:
                    yield from inst.poll_wait(thread, poll, max_ret=8)
            while inst.requests_completed < n:
                yield from inst.poll_wait(thread, poll, max_ret=8)

        dep.sim.run_until_complete(dep.sim.spawn(app()), deadline=100e9)
        assert inst.requests_completed == n
        assert inst.metadata_ring.tail == n

    def test_response_ring_wrap_with_batching(self):
        """Response payloads wrapping the ring boundary force batch
        splits; data must stay intact."""
        dep = deploy_cowbird(
            engine="spot",
            cowbird_config=CowbirdConfig(response_data_capacity=1024),
        )
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()
        pool_region = dep.pool_region()
        for i in range(20):
            pool_region.write(dep.region.translate(i * 100), bytes([i + 1]) * 100)

        def app():
            poll = inst.poll_create()
            got = {}
            for i in range(20):
                rid = yield from inst.async_read(thread, 0, i * 100, 100)
                inst.poll_add(poll, rid)
                events = yield from inst.poll_wait(thread, poll, max_ret=4)
                for event in events:
                    got[event.request_id] = inst.fetch_response(event.request_id)
            while len(got) < 20:
                events = yield from inst.poll_wait(thread, poll, max_ret=8)
                for event in events:
                    got[event.request_id] = inst.fetch_response(event.request_id)
            return got

        got = dep.sim.run_until_complete(dep.sim.spawn(app()), deadline=100e9)
        values = sorted(set(v[0] for v in got.values()))
        assert values == list(range(1, 21))


class TestMultiplePools:
    def test_instance_spanning_two_memory_pools(self):
        """An instance can register regions on distinct pool nodes; the
        engine opens one channel per pool (Section 5.4)."""
        from repro.cowbird.api import CowbirdClient
        from repro.cowbird.spot_engine import CowbirdSpotEngine

        bed = Testbed()
        compute = bed.add_host("compute", cpu_cores=2)
        pools = {}
        handles = []
        for name in ("pool-a", "pool-b"):
            host, pool = bed.add_pool(name)
            handle = pool.allocate_region(1 << 16)
            # Region ids must be distinct across pools for one client.
            object.__setattr__(handle, "region_id", len(handles))
            pools[name] = (host, pool, handle)
            handles.append(handle)
        agent = bed.add_host("agent", cpu_cores=1, smt=2)
        client = CowbirdClient(compute)
        for handle in handles:
            client.register_remote_region(handle)
        instance = client.create_instance()
        engine = CowbirdSpotEngine(agent)
        engine.register_instance(
            instance, {name: pools[name][0] for name in pools}
        )
        engine.start()
        thread = compute.cpu.thread()
        pools["pool-a"][1].region_for(handles[0]).write(
            handles[0].translate(0), b"from-pool-a"
        )
        pools["pool-b"][1].region_for(handles[1]).write(
            handles[1].translate(0), b"from-pool-b"
        )

        def app():
            poll = instance.poll_create()
            r0 = yield from instance.async_read(thread, 0, 0, 11)
            r1 = yield from instance.async_read(thread, 1, 0, 11)
            instance.poll_add(poll, r0)
            instance.poll_add(poll, r1)
            done = 0
            while done < 2:
                events = yield from instance.poll_wait(thread, poll, max_ret=4)
                done += len(events)
            return instance.fetch_response(r0), instance.fetch_response(r1)

        a, b = bed.sim.run_until_complete(bed.sim.spawn(app()), deadline=50e9)
        assert a == b"from-pool-a"
        assert b == b"from-pool-b"


class TestCompletionQueueStress:
    def test_cq_never_overflows_under_normal_load(self):
        dep = deploy_cowbird(engine="spot")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            for i in range(100):
                rid = yield from inst.async_read(thread, 0, (i % 128) * 8, 8)
                inst.poll_add(poll, rid)
            done = 0
            while done < 100:
                events = yield from inst.poll_wait(thread, poll, max_ret=64)
                done += len(events)

        dep.sim.run_until_complete(dep.sim.spawn(app()), deadline=100e9)
        assert dep.engine.cq.overflows == 0
