"""Unit tests for the CPU/thread model (repro.sim.cpu)."""

import pytest

from repro.sim.cpu import CPU, CostModel, TAG_APP, TAG_COMM
from repro.sim.engine import SimulationError, Simulator


def make_cpu(cores=2, smt=1, **cost_overrides):
    sim = Simulator()
    cost = CostModel(**cost_overrides)
    return sim, CPU(sim, physical_cores=cores, smt=smt, cost_model=cost)


class TestCostModel:
    def test_figure2_rdma_total_in_paper_band(self):
        """The paper reports ~600-700 ns for a full async RDMA post+poll."""
        cost = CostModel()
        assert 550 <= cost.rdma_read_cpu_total() <= 720

    def test_figure2_cowbird_is_order_of_magnitude_cheaper(self):
        cost = CostModel()
        assert cost.rdma_read_cpu_total() >= 10 * cost.cowbird_read_cpu_total()

    def test_cowbird_cost_comparable_to_local_memory_writes(self):
        """Figure 2: Cowbird's cost is a handful of local memory writes."""
        cost = CostModel()
        assert cost.cowbird_read_cpu_total() <= 6 * cost.local_memory_write

    def test_post_and_poll_components_sum(self):
        cost = CostModel()
        assert cost.rdma_post_total() == pytest.approx(
            cost.rdma_post_lock + cost.rdma_post_doorbell + cost.rdma_post_wqe
        )
        assert cost.rdma_poll_total() == pytest.approx(
            cost.rdma_poll_lock + cost.rdma_poll_cqe
        )


class TestThreadCompute:
    def test_compute_takes_simulated_time(self):
        sim, cpu = make_cpu(cores=1)
        thread = cpu.thread()

        def worker():
            yield from thread.compute(100)
            return sim.now

        assert sim.run_until_complete(sim.spawn(worker())) == 100.0

    def test_compute_charges_tagged_account(self):
        sim, cpu = make_cpu()
        thread = cpu.thread()

        def worker():
            yield from thread.compute(100, tag=TAG_APP)
            yield from thread.compute(40, tag=TAG_COMM)
            yield from thread.compute(60, tag=TAG_COMM)

        sim.run_until_complete(sim.spawn(worker()))
        assert thread.stats.cpu_ns[TAG_APP] == 100.0
        assert thread.stats.cpu_ns[TAG_COMM] == 100.0
        assert thread.stats.total_cpu_ns == 200.0

    def test_zero_compute_is_free(self):
        sim, cpu = make_cpu()
        thread = cpu.thread()

        def worker():
            yield from thread.compute(0)
            return sim.now

        assert sim.run_until_complete(sim.spawn(worker())) == 0.0

    def test_negative_compute_raises(self):
        sim, cpu = make_cpu()
        thread = cpu.thread()

        def worker():
            yield from thread.compute(-1)

        process = sim.spawn(worker())
        sim.run()
        with pytest.raises(SimulationError):
            _ = process.completion.value

    def test_two_threads_two_cores_run_in_parallel(self):
        sim, cpu = make_cpu(cores=2)
        t1, t2 = cpu.thread(), cpu.thread()
        done = []

        def worker(thread):
            yield from thread.compute(100)
            done.append(sim.now)

        sim.spawn(worker(t1))
        sim.spawn(worker(t2))
        sim.run()
        assert done == [100.0, 100.0]

    def test_two_threads_one_core_serialize(self):
        sim, cpu = make_cpu(cores=1)
        t1, t2 = cpu.thread(), cpu.thread()
        done = []

        def worker(thread):
            yield from thread.compute(100)
            done.append(sim.now)

        sim.spawn(worker(t1))
        sim.spawn(worker(t2))
        sim.run()
        assert done == [100.0, 200.0]

    def test_queue_wait_recorded_under_contention(self):
        sim, cpu = make_cpu(cores=1)
        t1, t2 = cpu.thread(), cpu.thread()

        def worker(thread):
            yield from thread.compute(100)

        sim.spawn(worker(t1))
        sim.spawn(worker(t2))
        sim.run()
        assert t1.stats.queue_wait_ns == 0.0
        assert t2.stats.queue_wait_ns == 100.0

    def test_core_released_between_chunks_interleaves_fairly(self):
        """Cooperative chunks approximate timesharing: with one core and
        two threads doing 3 x 100 ns chunks, both finish around 600 ns."""
        sim, cpu = make_cpu(cores=1)
        threads = [cpu.thread(), cpu.thread()]
        finish = {}

        def worker(thread):
            for _ in range(3):
                yield from thread.compute(100)
            finish[thread.name] = sim.now

        for thread in threads:
            sim.spawn(worker(thread))
        sim.run()
        assert max(finish.values()) == 600.0
        assert min(finish.values()) == 500.0


class TestSmt:
    def test_smt_doubles_hardware_threads(self):
        sim, cpu = make_cpu(cores=4, smt=2)
        assert cpu.physical_cores == 4
        assert cpu.hardware_threads == 8

    def test_lone_thread_on_core_runs_full_speed(self):
        sim, cpu = make_cpu(cores=1, smt=2)
        thread = cpu.thread()

        def worker():
            yield from thread.compute(100)
            return sim.now

        assert sim.run_until_complete(sim.spawn(worker())) == 100.0

    def test_sibling_sharing_slows_both(self):
        sim, cpu = make_cpu(cores=1, smt=2, smt_efficiency=0.5)
        t1, t2 = cpu.thread(), cpu.thread()
        done = []

        def worker(thread):
            yield from thread.compute(100)
            done.append(sim.now)

        sim.spawn(worker(t1))
        sim.spawn(worker(t2))
        sim.run()
        # Both start together; both stretched to 200 ns by 0.5 efficiency.
        assert done == [200.0, 200.0]

    def test_empty_cores_preferred_over_siblings(self):
        sim, cpu = make_cpu(cores=2, smt=2, smt_efficiency=0.5)
        t1, t2 = cpu.thread(), cpu.thread()
        done = []

        def worker(thread):
            yield from thread.compute(100)
            done.append(sim.now)

        sim.spawn(worker(t1))
        sim.spawn(worker(t2))
        sim.run()
        # Scheduler spreads across physical cores: no SMT penalty.
        assert done == [100.0, 100.0]

    def test_invalid_configs_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CPU(sim, physical_cores=0)
        with pytest.raises(ValueError):
            CPU(sim, physical_cores=1, smt=0)


class TestAccounting:
    def test_blocked_time_recorded(self):
        sim, cpu = make_cpu()
        thread = cpu.thread()

        def worker():
            yield from thread.compute(50)
            yield from thread.wait(sim.timeout(500))
            yield from thread.compute(50)

        sim.run_until_complete(sim.spawn(worker()))
        assert thread.stats.blocked_ns == 500.0
        assert thread.stats.total_cpu_ns == 100.0

    def test_sleep_counts_as_blocked(self):
        sim, cpu = make_cpu()
        thread = cpu.thread()

        def worker():
            yield from thread.sleep(300)

        sim.run_until_complete(sim.spawn(worker()))
        assert thread.stats.blocked_ns == 300.0

    def test_communication_ratio_pure_app(self):
        sim, cpu = make_cpu()
        thread = cpu.thread()

        def worker():
            yield from thread.compute(1000, tag=TAG_APP)

        sim.run_until_complete(sim.spawn(worker()))
        assert thread.stats.communication_ratio() == 0.0

    def test_communication_ratio_counts_comm_and_blocking(self):
        sim, cpu = make_cpu()
        thread = cpu.thread()

        def worker():
            yield from thread.compute(200, tag=TAG_APP)
            yield from thread.compute(300, tag=TAG_COMM)
            yield from thread.wait(sim.timeout(500))

        sim.run_until_complete(sim.spawn(worker()))
        # comm (300) + blocked (500) over total (1000)
        assert thread.stats.communication_ratio() == pytest.approx(0.8)

    def test_communication_ratio_empty_thread(self):
        sim, cpu = make_cpu()
        thread = cpu.thread()
        assert thread.stats.communication_ratio() == 0.0

    def test_wall_time_via_finish(self):
        sim, cpu = make_cpu()
        thread = cpu.thread()

        def worker():
            yield from thread.compute(100)
            thread.finish()

        sim.run_until_complete(sim.spawn(worker()))
        assert thread.stats.wall_ns == 100.0
