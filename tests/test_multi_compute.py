"""Multiple compute nodes sharing one offload engine and memory pool.

Section 5.4: one switch (or agent) multiplexes instances from different
compute/memory node pairs.  These tests wire two compute nodes through a
single engine and verify isolation and correct data movement.
"""

import pytest

from repro.cowbird.api import CowbirdClient
from repro.cowbird.p4_engine import CowbirdP4Engine
from repro.cowbird.spot_engine import CowbirdSpotEngine
from repro.testbed import Testbed


def build_two_compute(engine_kind):
    bed = Testbed()
    computes = [bed.add_host(f"compute-{i}", cpu_cores=4) for i in range(2)]
    pool_host, pool = bed.add_pool("pool")
    handles = [pool.allocate_region(1 << 16) for _ in range(2)]
    instances = []
    for compute, handle in zip(computes, handles):
        client = CowbirdClient(compute)
        # Each node addresses its own region as region_id 0.
        object.__setattr__(handle, "region_id", 0)
        client.register_remote_region(handle)
        instances.append(client.create_instance())
    if engine_kind == "p4":
        engine = CowbirdP4Engine(bed.sim, bed.switch)
    else:
        agent = bed.add_host("agent", cpu_cores=1, smt=2)
        engine = CowbirdSpotEngine(agent)
    for instance in instances:
        engine.register_instance(instance, {"pool": pool_host})
    engine.start()
    return bed, computes, pool, handles, instances, engine


@pytest.mark.parametrize("engine_kind", ["spot", "p4"])
class TestTwoComputeNodes:
    def test_isolated_reads(self, engine_kind):
        bed, computes, pool, handles, instances, _engine = build_two_compute(
            engine_kind
        )
        for i, handle in enumerate(handles):
            pool.region_for(handle).write(
                handle.translate(0), bytes([0x10 + i]) * 32
            )
        results = {}

        def app(index):
            compute = computes[index]
            instance = instances[index]
            thread = compute.cpu.thread()
            poll = instance.poll_create()
            rid = yield from instance.async_read(thread, 0, 0, 32)
            instance.poll_add(poll, rid)
            events = yield from instance.poll_wait(thread, poll)
            results[index] = instance.fetch_response(events[0].request_id)

        p0 = bed.sim.spawn(app(0))
        p1 = bed.sim.spawn(app(1))
        bed.sim.run_until_complete(p0, deadline=100e9)
        bed.sim.run_until_complete(p1, deadline=100e9)
        assert results[0] == bytes([0x10]) * 32
        assert results[1] == bytes([0x11]) * 32

    def test_concurrent_writes_do_not_cross(self, engine_kind):
        bed, computes, pool, handles, instances, _engine = build_two_compute(
            engine_kind
        )

        def app(index):
            compute = computes[index]
            instance = instances[index]
            thread = compute.cpu.thread()
            poll = instance.poll_create()
            ids = []
            for j in range(6):
                wid = yield from instance.async_write(
                    thread, 0, j * 64, bytes([0x40 + index]) * 48
                )
                instance.poll_add(poll, wid)
                ids.append(wid)
            done = 0
            while done < 6:
                events = yield from instance.poll_wait(thread, poll, max_ret=8)
                done += len(events)

        p0 = bed.sim.spawn(app(0))
        p1 = bed.sim.spawn(app(1))
        bed.sim.run_until_complete(p0, deadline=100e9)
        bed.sim.run_until_complete(p1, deadline=100e9)
        for index, handle in enumerate(handles):
            region = pool.region_for(handle)
            for j in range(6):
                assert region.read(handle.translate(j * 64), 48) == (
                    bytes([0x40 + index]) * 48
                )

    def test_compute_nodes_pay_no_rdma(self, engine_kind):
        bed, computes, pool, handles, instances, _engine = build_two_compute(
            engine_kind
        )

        def app(index):
            instance = instances[index]
            thread = computes[index].cpu.thread()
            poll = instance.poll_create()
            rid = yield from instance.async_read(thread, 0, 0, 8)
            instance.poll_add(poll, rid)
            yield from instance.poll_wait(thread, poll)

        p0 = bed.sim.spawn(app(0))
        p1 = bed.sim.spawn(app(1))
        bed.sim.run_until_complete(p0, deadline=100e9)
        bed.sim.run_until_complete(p1, deadline=100e9)
        for compute in computes:
            assert compute.nic.stats.messages_initiated == 0


class TestCli:
    def test_list_command(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out and "tab05" in out

    def test_run_tab05(self, capsys):
        from repro.cli import main

        assert main(["run", "tab05"]) == 0
        out = capsys.readouterr().out
        assert "matches paper row: True" in out

    def test_run_with_json_dump(self, tmp_path, capsys):
        from repro.cli import main
        import json

        out_path = tmp_path / "tab01.json"
        assert main(["run", "tab01", "--json", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert "tab01" in data
        assert len(data["tab01"]["rows"]) == 3

    def test_unknown_experiment_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "fig99"])
