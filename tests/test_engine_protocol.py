"""OffloadEngine protocol conformance across both Cowbird engines.

The cluster layer's contract (ISSUE 4): ``CowbirdP4Engine`` and
``CowbirdSpotEngine`` are interchangeable behind the ``OffloadEngine``
protocol — same construction-free registration, same start/stop
lifecycle, same stats surface — and the same read/write/poll workload
completes identically through either.
"""

import pytest

from repro.cluster import OffloadEngine
from repro.cowbird.deploy import deploy_cowbird

ENGINE_KINDS = ("spot", "p4")

READS = 16
WRITES = 8
RECORD = 128


def _run_protocol_workload(kind: str, seed: int = 3):
    """Drive one instance through reads + writes; return what completed."""
    dep = deploy_cowbird(engine=kind, seed=seed, remote_bytes=1 << 20)
    inst = dep.instances[0]
    thread = dep.compute.cpu.thread()
    pool_region = dep.pool_region()
    for i in range(READS):
        pool_region.write(dep.region.translate(i * RECORD), bytes([i + 1]) * RECORD)
    completed = []

    def app():
        poll = inst.poll_create()
        ids = []
        for i in range(READS):
            rid = yield from inst.async_read(thread, 0, i * RECORD, RECORD)
            inst.poll_add(poll, rid)
            ids.append(rid)
        for i in range(WRITES):
            wid = yield from inst.async_write(
                thread, 0, (READS + i) * RECORD, bytes([0x80 + i]) * 64
            )
            inst.poll_add(poll, wid)
            ids.append(wid)
        done = 0
        while done < READS + WRITES:
            events = yield from inst.poll_wait(thread, poll, max_ret=64)
            completed.extend(e.request_id for e in events)
            done += len(events)
        return ids

    ids = dep.sim.run_until_complete(dep.sim.spawn(app()), deadline=100e9)
    read_data = {rid: inst.fetch_response(rid) for rid in ids[:READS]}
    write_data = {
        i: pool_region.read(dep.region.translate((READS + i) * RECORD), 64)
        for i in range(WRITES)
    }
    return dep, ids, sorted(completed), read_data, write_data


class TestProtocolConformance:
    @pytest.mark.parametrize("kind", ENGINE_KINDS)
    def test_engine_satisfies_protocol(self, kind):
        dep = deploy_cowbird(engine=kind)
        assert isinstance(dep.engine, OffloadEngine)
        dep.close()

    @pytest.mark.parametrize("kind", ENGINE_KINDS)
    def test_stats_snapshot_is_flat_dict(self, kind):
        dep, _ids, completed, _reads, _writes = _run_protocol_workload(kind)
        snapshot = dep.engine.stats_snapshot()
        assert isinstance(snapshot, dict)
        for key, value in snapshot.items():
            assert isinstance(key, str)
            assert isinstance(value, (int, float))
        assert snapshot["reads_executed"] == READS
        assert snapshot["writes_executed"] == WRITES
        assert len(completed) == READS + WRITES
        dep.close()

    @pytest.mark.parametrize("kind", ENGINE_KINDS)
    def test_stop_is_idempotent(self, kind):
        dep = deploy_cowbird(engine=kind)
        dep.engine.stop()
        dep.engine.stop()  # second stop must be a no-op
        dep.close()  # and so must closing again

    @pytest.mark.parametrize("kind", ENGINE_KINDS)
    def test_stop_halts_recurring_work(self, kind):
        """A stopped engine does no further probing as sim time passes."""
        dep, *_ = _run_protocol_workload(kind)
        dep.engine.stop()
        before = dep.engine.stats_snapshot()
        dep.sim.run(until=dep.sim.now + 50e6)  # 50 ms of sim time
        assert dep.engine.stats_snapshot() == before


class TestIdenticalCompletion:
    def test_same_workload_completes_identically_on_both_engines(self):
        """Same instance workload, either engine: same request ids
        complete, same read payloads come back, same write bytes land."""
        results = {
            kind: _run_protocol_workload(kind) for kind in ENGINE_KINDS
        }
        (_, ids_a, completed_a, reads_a, writes_a) = results["spot"]
        (_, ids_b, completed_b, reads_b, writes_b) = results["p4"]
        assert ids_a == ids_b
        assert completed_a == completed_b
        assert reads_a == reads_b
        assert writes_a == writes_b
        for dep, *_rest in results.values():
            dep.close()
