"""Unit/integration tests for the baseline systems (repro.baselines)."""

import pytest

from repro.baselines import (
    AifmConfig,
    LocalMemoryBackend,
    RedyBackend,
    RedyConfig,
    SsdConfig,
    SsdDrive,
)
from repro.experiments.common import build_microbench
from repro.sim.cpu import CostModel
from repro.sim.engine import Simulator
from repro.testbed import Testbed


def drive_worker(dep, backend_index, generator_fn, deadline=120e9):
    thread = dep.compute.cpu.thread()
    backend = dep.backends[backend_index]
    process = dep.sim.spawn(generator_fn(thread, backend))
    return dep.sim.run_until_complete(process, deadline=deadline), thread


def read_n(n, record_bytes=64):
    def gen(thread, backend):
        tokens = []
        for i in range(n):
            token = yield from backend.issue_read(thread, i * record_bytes,
                                                  record_bytes)
            tokens.append(token)
        done = []
        while len(done) < n:
            got = yield from backend.poll_completions(thread, max_ret=n, block=True)
            done.extend(got)
        return (tokens, done)

    return gen


class TestLocalMemoryBackend:
    def test_reads_complete_immediately(self):
        dep = build_microbench("local", 1)
        (tokens, done), thread = drive_worker(dep, 0, read_n(5))
        assert sorted(done) == sorted(tokens)

    def test_costs_are_app_not_comm(self):
        dep = build_microbench("local", 1)
        _result, thread = drive_worker(dep, 0, read_n(10))
        assert thread.stats.cpu_ns.get("comm", 0.0) == 0.0
        assert thread.stats.cpu_ns.get("app", 0.0) > 0.0


class TestOneSidedBackends:
    def test_sync_backend_moves_real_bytes(self):
        dep = build_microbench("one-sided", 1)
        pool_region = dep.pool_host.registry.by_rkey(dep.backends[0].region.rkey)
        pool_region.write(dep.backends[0].region.translate(0), b"Z" * 64)

        def gen(thread, backend):
            token = yield from backend.issue_read(thread, 0, 64)
            got = yield from backend.poll_completions(thread, max_ret=1)
            return token, got

        (token, got), thread = drive_worker(dep, 0, gen)
        assert got == [token]
        # The DMA target (backend scratch) holds the remote bytes.
        scratch = dep.backends[0].scratch
        assert scratch.read(scratch.base_addr, 64) == b"Z" * 64

    def test_sync_burns_round_trip_as_comm_cpu(self):
        dep = build_microbench("one-sided", 1)
        _result, thread = drive_worker(dep, 0, read_n(3))
        # Three round trips of busy polling: microseconds of comm CPU.
        assert thread.stats.cpu_ns["comm"] > 5_000

    def test_async_pipelines_round_trips(self):
        """100 pipelined reads must take far less than 100 RTTs."""
        dep = build_microbench("async", 1)
        _result, _thread = drive_worker(dep, 0, read_n(100))
        assert dep.sim.now < 100 * 2_000  # « 100 x RTT(~3 us)

    def test_async_charges_post_and_poll_per_op(self):
        dep = build_microbench("async", 1)
        _result, thread = drive_worker(dep, 0, read_n(50))
        cost = CostModel()
        per_op = thread.stats.cpu_ns["comm"] / 50
        assert per_op >= cost.rdma_post_total()

    def test_two_sided_uses_pool_cpu(self):
        dep = build_microbench("two-sided", 1)
        _result, _thread = drive_worker(dep, 0, read_n(3))
        server_threads = dep.pool_host.cpu._next_thread_id
        assert server_threads >= 1
        assert dep.pool_host.nic.stats.messages_initiated > 0


class TestSsd:
    def test_drive_latency_floor(self):
        sim = Simulator()
        drive = SsdDrive(sim, SsdConfig())
        future = drive.submit(512)
        sim.run()
        assert future.done
        assert sim.now >= 80_000  # access latency

    def test_queue_depth_limits_parallelism(self):
        sim = Simulator()
        config = SsdConfig(queue_depth=2)
        drive = SsdDrive(sim, config)
        futures = [drive.submit(512) for _ in range(6)]
        sim.run()
        assert all(f.done for f in futures)
        # 6 I/Os in 3 serialized waves of 2: at least ~3 access times.
        assert sim.now >= 3 * config.access_latency_ns * 0.9

    def test_bandwidth_caps_large_transfers(self):
        sim = Simulator()
        drive = SsdDrive(sim, SsdConfig())
        size = 1 << 20  # 1 MB at 6 Gb/s = ~1.4 ms
        future = drive.submit(size)
        sim.run()
        assert future.done
        assert sim.now >= (size * 8) / 6.0 * 0.9

    def test_sector_rounding(self):
        sim = Simulator()
        drive = SsdDrive(sim, SsdConfig())
        drive.submit(8)  # one sector minimum
        sim.run()
        assert drive.bytes_transferred == 512

    def test_invalid_io_rejected(self):
        sim = Simulator()
        drive = SsdDrive(sim)
        with pytest.raises(ValueError):
            drive.submit(0)

    def test_backend_round_trip_with_backing(self):
        dep = build_microbench("ssd", 1)
        backend = dep.backends[0]
        backend.backing_write(0, b"cold-page")
        assert backend.backing_read(0, 9) == b"cold-page"

    def test_per_thread_completion_routing(self):
        """Two threads sharing the drive must not steal each other's
        completions."""
        dep = build_microbench("ssd", 2)
        results = {}

        def gen(name, thread, backend):
            token = yield from backend.issue_read(thread, 0, 64)
            got = yield from backend.poll_completions(thread, max_ret=8, block=True)
            results[name] = (token, got)

        t1 = dep.compute.cpu.thread()
        t2 = dep.compute.cpu.thread()
        p1 = dep.sim.spawn(gen("a", t1, dep.backends[0]))
        p2 = dep.sim.spawn(gen("b", t2, dep.backends[1]))
        dep.sim.run_until_complete(p1, deadline=10e9)
        dep.sim.run_until_complete(p2, deadline=10e9)
        assert results["a"][1] == [results["a"][0]]
        assert results["b"][1] == [results["b"][0]]


class TestRedy:
    def test_batches_requests(self):
        dep = build_microbench("redy", 2)
        _result, _thread = drive_worker(dep, 0, read_n(40))
        backend = dep.backends[0]
        assert backend.outstanding() == 0

    def test_io_threads_occupy_compute_cores(self):
        dep = build_microbench("redy", 4)
        _result, _thread = drive_worker(dep, 0, read_n(10))
        backend = dep.backends[0]
        assert len(backend.io_thread_objs) >= 1
        io_cpu = sum(
            t.stats.cpu_ns.get("comm", 0.0) for t in backend.io_thread_objs
        )
        assert io_cpu > 0  # the stolen cores did real work

    def test_app_thread_cost_is_cheap_enqueue(self):
        dep = build_microbench("redy", 1)
        _result, thread = drive_worker(dep, 0, read_n(20))
        per_op = thread.stats.cpu_ns["comm"] / 20
        # Enqueue + poll checks: far below one RDMA post.
        assert per_op < CostModel().rdma_post_total()

    def test_writes_reach_pool_memory(self):
        dep = build_microbench("redy", 1)
        handle = dep.backends[0].region

        def gen(thread, backend):
            token = yield from backend.issue_write(thread, 128, b"redy-write")
            got = []
            while not got:
                got = yield from backend.poll_completions(thread, block=True)
            return token

        drive_worker(dep, 0, gen)
        pool_region = dep.pool_host.registry.by_rkey(handle.rkey)
        assert pool_region.read(handle.translate(128), 10) == b"redy-write"

    def test_config_validation(self):
        bed = Testbed()
        compute = bed.add_host("c", cpu_cores=2)
        pool = bed.add_host("p")
        from repro.memory.pool import MemoryPool

        mp = MemoryPool("p")
        handle = mp.allocate_region(1024)
        with pytest.raises(ValueError, match="QP pair"):
            RedyBackend(compute, pool, handle, [], RedyConfig(io_threads=2))


class TestAifm:
    def test_iokernel_serializes_all_requests(self):
        """Aggregate AIFM throughput is capped by the IOKernel core."""
        dep = build_microbench("aifm", 4)
        import time

        def gen(thread, backend):
            tokens = set()
            for i in range(30):
                token = yield from backend.issue_read(thread, i * 8, 8)
                tokens.add(token)
                got = yield from backend.poll_completions(thread, max_ret=8)
                tokens.difference_update(got)
            while tokens:
                got = yield from backend.poll_completions(thread, max_ret=8,
                                                          block=True)
                tokens.difference_update(got)

        threads = [dep.compute.cpu.thread() for _ in range(4)]
        procs = [
            dep.sim.spawn(gen(threads[i], dep.backends[i])) for i in range(4)
        ]
        for p in procs:
            dep.sim.run_until_complete(p, deadline=120e9)
        config = AifmConfig()
        total_ops = 120
        # The IOKernel must have spent at least per-op CPU x ops.
        iokernel = dep.backends[0].iokernel_thread
        assert iokernel.stats.cpu_ns["comm"] >= total_ops * config.iokernel_per_op_ns * 0.99

    def test_per_op_cost_includes_switches(self):
        dep = build_microbench("aifm", 1)
        _result, thread = drive_worker(dep, 0, read_n(10, record_bytes=8))
        config = AifmConfig()
        per_op = thread.stats.cpu_ns["comm"] / 10
        assert per_op >= config.deref_ns + config.switch_ns

    def test_network_rtt_dominates_latency(self):
        dep = build_microbench("aifm", 1)
        _result, _thread = drive_worker(dep, 0, read_n(1, record_bytes=8))
        assert dep.sim.now >= AifmConfig().network_rtt_ns

    def test_writes_reach_pool_memory(self):
        dep = build_microbench("aifm", 1)
        handle = dep.backends[0].region

        def gen(thread, backend):
            yield from backend.issue_write(thread, 64, b"aifm-obj")
            got = []
            while not got:
                got = yield from backend.poll_completions(thread, block=True)

        drive_worker(dep, 0, gen)
        pool_region = dep.pool_host.registry.by_rkey(handle.rkey)
        assert pool_region.read(handle.translate(64), 8) == b"aifm-obj"
