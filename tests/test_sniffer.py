"""Tests for the packet sniffer, used to validate protocol sequences."""


from repro.cowbird.deploy import deploy_cowbird
from repro.rdma.packets import Opcode
from repro.rdma.sniffer import PacketSniffer
from repro.testbed import Testbed


class TestBasicCapture:
    def run_one_read(self):
        bed = Testbed()
        compute = bed.add_host("compute", cpu_cores=2)
        pool = bed.add_host("pool")
        sniffer = PacketSniffer(bed.sim)
        sniffer.attach_nic(compute.nic)
        sniffer.attach_nic(pool.nic)
        qp_c, _ = bed.connect_qps(compute, pool)
        remote = pool.registry.register(1 << 12)
        local = compute.registry.register(1 << 12)
        thread = compute.cpu.thread()

        def op():
            yield from compute.verbs.read_sync(
                thread, qp_c, local.base_addr, remote.base_addr, remote.rkey, 64
            )

        bed.sim.run_until_complete(bed.sim.spawn(op()), deadline=1e9)
        return sniffer

    def test_captures_request_and_response(self):
        sniffer = self.run_one_read()
        counts = sniffer.opcode_counts()
        assert counts["RC_RDMA_READ_REQUEST"] == 1
        assert counts["RC_RDMA_READ_RESPONSE_ONLY"] == 1

    def test_timestamps_monotonic(self):
        sniffer = self.run_one_read()
        times = [p.timestamp_ns for p in sniffer.packets]
        assert times == sorted(times)

    def test_filter_by_opcode_and_direction(self):
        sniffer = self.run_one_read()
        requests = sniffer.filter(opcode=Opcode.RC_RDMA_READ_REQUEST)
        assert len(requests) == 1
        assert requests[0].src == "compute"
        to_compute = sniffer.filter(dst="compute")
        assert all(p.dst == "compute" for p in to_compute)

    def test_render_produces_trace(self):
        sniffer = self.run_one_read()
        trace = sniffer.render()
        assert "RC_RDMA_READ_REQUEST" in trace
        assert "compute" in trace

    def test_capacity_cap(self):
        bed = Testbed()
        sniffer = PacketSniffer(bed.sim, max_packets=1)
        compute = bed.add_host("compute", cpu_cores=1)
        pool = bed.add_host("pool")
        sniffer.attach_nic(pool.nic)
        qp_c, _ = bed.connect_qps(compute, pool)
        remote = pool.registry.register(1 << 12)
        local = compute.registry.register(1 << 12)
        thread = compute.cpu.thread()

        def op():
            for i in range(3):
                yield from compute.verbs.read_sync(
                    thread, qp_c, local.base_addr, remote.base_addr,
                    remote.rkey, 8,
                )

        bed.sim.run_until_complete(bed.sim.spawn(op()), deadline=1e9)
        assert len(sniffer) == 1
        assert sniffer.dropped_over_capacity >= 2


class TestHookChaining:
    def test_attach_chains_with_existing_hooks(self):
        """The sniffer must tap alongside other rx hooks, not replace them."""
        bed = Testbed()
        compute = bed.add_host("compute", cpu_cores=2)
        pool = bed.add_host("pool")
        seen = []
        pool.nic.add_rx_hook(lambda packet: seen.append(packet))
        sniffer = PacketSniffer(bed.sim)
        sniffer.attach_nic(pool.nic)
        later = []
        pool.nic.add_rx_hook(lambda packet: later.append(packet))
        qp_c, _ = bed.connect_qps(compute, pool)
        remote = pool.registry.register(1 << 12)
        local = compute.registry.register(1 << 12)
        thread = compute.cpu.thread()

        def op():
            yield from compute.verbs.read_sync(
                thread, qp_c, local.base_addr, remote.base_addr, remote.rkey, 64
            )

        bed.sim.run_until_complete(bed.sim.spawn(op()), deadline=1e9)
        assert len(sniffer) >= 1
        assert len(seen) == len(later) == len(sniffer)

    def test_legacy_rx_hook_property_round_trips(self):
        bed = Testbed()
        host = bed.add_host("h")
        assert host.nic.rx_hook is None
        hook = lambda packet: None  # noqa: E731
        host.nic.rx_hook = hook
        assert host.nic.rx_hook is hook
        host.nic.rx_hook = None
        assert host.nic.rx_hook is None


class TestExport:
    def make_capture(self):
        return TestBasicCapture().run_one_read()

    def test_to_jsonl(self, tmp_path):
        sniffer = self.make_capture()
        path = tmp_path / "packets.jsonl"
        count = sniffer.to_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert count == len(sniffer) == len(lines)
        import json

        first = json.loads(lines[0])
        assert first["opcode"] == "RC_RDMA_READ_REQUEST"
        assert first["src"] == "compute"
        assert first["timestamp_ns"] >= 0
        assert set(first) == {
            "timestamp_ns", "tap", "src", "dst", "opcode",
            "dest_qp", "psn", "payload_bytes", "size_bytes",
        }

    def test_to_chrome_trace(self, tmp_path):
        sniffer = self.make_capture()
        path = tmp_path / "packets.json"
        count = sniffer.to_chrome_trace(str(path))
        import json

        doc = json.loads(path.read_text())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == count == len(sniffer)
        taps = {
            e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert taps == {"rx@compute", "rx@pool"}
        assert all("psn" in e["args"] for e in instants)


class TestProtocolValidation:
    def test_p4_recycling_sequence_visible(self):
        """The sniffer shows the Section 5.2 sequence: probe read ->
        metadata read -> pool read -> spoofed write -> bookkeeping."""
        dep = deploy_cowbird(engine="p4")
        sniffer = PacketSniffer(dep.sim)
        sniffer.attach_nic(dep.compute.nic, "rx@compute")
        sniffer.attach_nic(dep.pool_host.nic, "rx@pool")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()
        dep.pool_region().write(dep.region.translate(0), b"x" * 64)

        def app():
            poll = inst.poll_create()
            rid = yield from inst.async_read(thread, 0, 0, 64)
            inst.poll_add(poll, rid)
            yield from inst.poll_wait(thread, poll)

        dep.sim.run_until_complete(dep.sim.spawn(app()), deadline=50e9)
        counts = sniffer.opcode_counts()
        # Probes + metadata fetch + payload fetch are READ requests; the
        # spoofed data delivery and red update are WRITEs at the compute
        # node; the pool served exactly one read.
        assert counts["RC_RDMA_READ_REQUEST"] >= 3
        assert counts.get("RC_RDMA_WRITE_ONLY", 0) >= 2
        pool_reads = sniffer.filter(
            opcode=Opcode.RC_RDMA_READ_REQUEST, dst="pool"
        )
        assert len(pool_reads) == 1
        # The data write to the compute node carries the payload bytes.
        data_writes = [
            p for p in sniffer.filter(dst="compute")
            if p.opcode is Opcode.RC_RDMA_WRITE_ONLY and p.payload_bytes == 64
        ]
        assert len(data_writes) == 1

    def test_spot_batching_visible_in_byte_accounting(self):
        dep = deploy_cowbird(engine="spot")
        sniffer = PacketSniffer(dep.sim)
        sniffer.attach_nic(dep.compute.nic)
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            for i in range(32):
                rid = yield from inst.async_read(thread, 0, i * 64, 64)
                inst.poll_add(poll, rid)
            done = 0
            while done < 32:
                events = yield from inst.poll_wait(thread, poll, max_ret=32)
                done += len(events)

        dep.sim.run_until_complete(dep.sim.spawn(app()), deadline=50e9)
        # 32 reads batched: far fewer than 32 write packets arrive.
        writes = [
            p for p in sniffer.filter(dst="compute")
            if p.opcode.is_write and p.payload_bytes > 40
        ]
        assert len(writes) < 16
