"""Tests for the packet sniffer, used to validate protocol sequences."""

import pytest

from repro.cowbird.deploy import deploy_cowbird
from repro.rdma.packets import Opcode
from repro.rdma.sniffer import PacketSniffer
from repro.testbed import Testbed


class TestBasicCapture:
    def run_one_read(self):
        bed = Testbed()
        compute = bed.add_host("compute", cpu_cores=2)
        pool = bed.add_host("pool")
        sniffer = PacketSniffer(bed.sim)
        sniffer.attach_nic(compute.nic)
        sniffer.attach_nic(pool.nic)
        qp_c, _ = bed.connect_qps(compute, pool)
        remote = pool.registry.register(1 << 12)
        local = compute.registry.register(1 << 12)
        thread = compute.cpu.thread()

        def op():
            yield from compute.verbs.read_sync(
                thread, qp_c, local.base_addr, remote.base_addr, remote.rkey, 64
            )

        bed.sim.run_until_complete(bed.sim.spawn(op()), deadline=1e9)
        return sniffer

    def test_captures_request_and_response(self):
        sniffer = self.run_one_read()
        counts = sniffer.opcode_counts()
        assert counts["RC_RDMA_READ_REQUEST"] == 1
        assert counts["RC_RDMA_READ_RESPONSE_ONLY"] == 1

    def test_timestamps_monotonic(self):
        sniffer = self.run_one_read()
        times = [p.timestamp_ns for p in sniffer.packets]
        assert times == sorted(times)

    def test_filter_by_opcode_and_direction(self):
        sniffer = self.run_one_read()
        requests = sniffer.filter(opcode=Opcode.RC_RDMA_READ_REQUEST)
        assert len(requests) == 1
        assert requests[0].src == "compute"
        to_compute = sniffer.filter(dst="compute")
        assert all(p.dst == "compute" for p in to_compute)

    def test_render_produces_trace(self):
        sniffer = self.run_one_read()
        trace = sniffer.render()
        assert "RC_RDMA_READ_REQUEST" in trace
        assert "compute" in trace

    def test_capacity_cap(self):
        bed = Testbed()
        sniffer = PacketSniffer(bed.sim, max_packets=1)
        compute = bed.add_host("compute", cpu_cores=1)
        pool = bed.add_host("pool")
        sniffer.attach_nic(pool.nic)
        qp_c, _ = bed.connect_qps(compute, pool)
        remote = pool.registry.register(1 << 12)
        local = compute.registry.register(1 << 12)
        thread = compute.cpu.thread()

        def op():
            for i in range(3):
                yield from compute.verbs.read_sync(
                    thread, qp_c, local.base_addr, remote.base_addr,
                    remote.rkey, 8,
                )

        bed.sim.run_until_complete(bed.sim.spawn(op()), deadline=1e9)
        assert len(sniffer) == 1
        assert sniffer.dropped_over_capacity >= 2


class TestProtocolValidation:
    def test_p4_recycling_sequence_visible(self):
        """The sniffer shows the Section 5.2 sequence: probe read ->
        metadata read -> pool read -> spoofed write -> bookkeeping."""
        dep = deploy_cowbird(engine="p4")
        sniffer = PacketSniffer(dep.sim)
        sniffer.attach_nic(dep.compute.nic, "rx@compute")
        sniffer.attach_nic(dep.pool_host.nic, "rx@pool")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()
        dep.pool_region().write(dep.region.translate(0), b"x" * 64)

        def app():
            poll = inst.poll_create()
            rid = yield from inst.async_read(thread, 0, 0, 64)
            inst.poll_add(poll, rid)
            yield from inst.poll_wait(thread, poll)

        dep.sim.run_until_complete(dep.sim.spawn(app()), deadline=50e9)
        counts = sniffer.opcode_counts()
        # Probes + metadata fetch + payload fetch are READ requests; the
        # spoofed data delivery and red update are WRITEs at the compute
        # node; the pool served exactly one read.
        assert counts["RC_RDMA_READ_REQUEST"] >= 3
        assert counts.get("RC_RDMA_WRITE_ONLY", 0) >= 2
        pool_reads = sniffer.filter(
            opcode=Opcode.RC_RDMA_READ_REQUEST, dst="pool"
        )
        assert len(pool_reads) == 1
        # The data write to the compute node carries the payload bytes.
        data_writes = [
            p for p in sniffer.filter(dst="compute")
            if p.opcode is Opcode.RC_RDMA_WRITE_ONLY and p.payload_bytes == 64
        ]
        assert len(data_writes) == 1

    def test_spot_batching_visible_in_byte_accounting(self):
        dep = deploy_cowbird(engine="spot")
        sniffer = PacketSniffer(dep.sim)
        sniffer.attach_nic(dep.compute.nic)
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            for i in range(32):
                rid = yield from inst.async_read(thread, 0, i * 64, 64)
                inst.poll_add(poll, rid)
            done = 0
            while done < 32:
                events = yield from inst.poll_wait(thread, poll, max_ret=32)
                done += len(events)

        dep.sim.run_until_complete(dep.sim.spawn(app()), deadline=50e9)
        # 32 reads batched: far fewer than 32 write packets arrive.
        writes = [
            p for p in sniffer.filter(dst="compute")
            if p.opcode.is_write and p.payload_bytes > 40
        ]
        assert len(writes) < 16
