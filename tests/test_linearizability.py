"""Randomized linearizability checking against a sequential model.

Section 4.1/5.3: Cowbird guarantees per-type ordered execution from a
single thread and read-after-write consistency (linearizability), on
both offload engines — even under packet loss.  These tests run seeded
random workloads and check every completion against a sequential
reference model of the remote region.
"""

import random

import pytest

from repro.cowbird.deploy import deploy_cowbird
from repro.cowbird.p4_engine import P4EngineConfig
from repro.cowbird.wire import RwType, decode_request_id
from repro.sim.network import FaultInjector

REGION_BYTES = 1 << 14
SLOTS = 16
SLOT_BYTES = 64


def random_workload_check(dep, seed, ops=60, deadline=500e9):
    """Issue a random read/write mix; validate against a shadow model."""
    inst = dep.instances[0]
    thread = dep.compute.cpu.thread()
    rng = random.Random(seed)
    # Shadow model: per-slot version history.  A read must return some
    # value that was (or became) current while it was outstanding: the
    # value at issue time, or any later write to the slot — Section 4.1
    # guarantees per-type order and read-AFTER-write consistency, but a
    # write issued after an in-flight read may legally be observed by it
    # (both linearization orders are valid for concurrent operations).
    history = {slot: [b"\x00" * SLOT_BYTES] for slot in range(SLOTS)}
    read_window = {}   # request_id -> (slot, index of version at issue)
    issue_order = {"read": [], "write": []}
    completion_order = {"read": [], "write": []}
    version = 0

    def app():
        nonlocal version
        poll = inst.poll_create()
        outstanding = 0
        for _ in range(ops):
            slot = rng.randrange(SLOTS)
            offset = slot * SLOT_BYTES
            if rng.random() < 0.4:
                version += 1
                payload = version.to_bytes(4, "little") * (SLOT_BYTES // 4)
                request_id = yield from inst.async_write(
                    thread, 0, offset, payload
                )
                history[slot].append(payload)
                issue_order["write"].append(request_id)
            else:
                request_id = yield from inst.async_read(
                    thread, 0, offset, SLOT_BYTES
                )
                read_window[request_id] = (slot, len(history[slot]) - 1)
                issue_order["read"].append(request_id)
            inst.poll_add(poll, request_id)
            outstanding += 1
            events = yield from inst.poll_wait(
                thread, poll, max_ret=16,
                timeout=None if outstanding >= 24 else 0,
            )
            for event in events:
                rw_type, _r, _s = decode_request_id(event.request_id)
                kind = "read" if rw_type is RwType.READ else "write"
                completion_order[kind].append(event.request_id)
                if rw_type is RwType.READ:
                    data = inst.fetch_response(event.request_id)
                    slot, floor = read_window[event.request_id]
                    assert data in history[slot][floor:], (
                        f"read {event.request_id} returned a value never "
                        f"current during its window (stale or corrupt)"
                    )
            outstanding -= len(events)
        while outstanding > 0:
            events = yield from inst.poll_wait(thread, poll, max_ret=16)
            for event in events:
                rw_type, _r, _s = decode_request_id(event.request_id)
                kind = "read" if rw_type is RwType.READ else "write"
                completion_order[kind].append(event.request_id)
                if rw_type is RwType.READ:
                    data = inst.fetch_response(event.request_id)
                    slot, floor = read_window[event.request_id]
                    assert data in history[slot][floor:]
            outstanding -= len(events)

    dep.sim.run_until_complete(dep.sim.spawn(app()), deadline=deadline)
    # Per-type linearized order (Section 4.1): completions arrive in
    # exactly the order issued, within each operation type.
    assert completion_order["read"] == issue_order["read"]
    assert completion_order["write"] == issue_order["write"]
    # Final pool state = last write per slot (writes complete in issue
    # order, so the last issued write is the last applied).
    pool_region = dep.pool_region()
    for slot, versions in history.items():
        actual = pool_region.read(dep.region.translate(slot * SLOT_BYTES),
                                  SLOT_BYTES)
        assert actual == versions[-1], f"slot {slot} diverged from the model"


@pytest.mark.parametrize("seed", [1, 7, 42])
class TestSpotLinearizability:
    def test_random_mix(self, seed):
        dep = deploy_cowbird(engine="spot", remote_bytes=REGION_BYTES)
        random_workload_check(dep, seed)

    def test_random_mix_under_loss(self, seed):
        dep = deploy_cowbird(
            engine="spot", remote_bytes=REGION_BYTES,
            fault_injector=FaultInjector(seed=seed, drop_rate=0.01),
        )
        random_workload_check(dep, seed, ops=40)


@pytest.mark.parametrize("seed", [3, 11])
class TestP4Linearizability:
    def test_random_mix(self, seed):
        dep = deploy_cowbird(engine="p4", remote_bytes=REGION_BYTES)
        random_workload_check(dep, seed)

    def test_random_mix_under_loss(self, seed):
        dep = deploy_cowbird(
            engine="p4", remote_bytes=REGION_BYTES,
            fault_injector=FaultInjector(seed=seed + 100, drop_rate=0.01),
            p4_config=P4EngineConfig(timeout_ns=100_000),
        )
        random_workload_check(dep, seed, ops=40)
