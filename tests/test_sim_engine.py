"""Unit tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.sim.engine import AllOf, AnyOf, Future, SimulationError, Simulator


class TestClockAndCallbacks:
    def test_clock_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_call_after_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.call_after(100, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [100.0]
        assert sim.now == 100.0

    def test_callbacks_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.call_after(300, lambda: order.append("c"))
        sim.call_after(100, lambda: order.append("a"))
        sim.call_after(200, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_callbacks_fire_in_insertion_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.call_after(50, lambda label=label: order.append(label))
        sim.run()
        assert order == list("abcde")

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.call_after(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(50, lambda: None)

    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        fired = []
        sim.call_after(100, lambda: fired.append(1))
        sim.call_after(500, lambda: fired.append(2))
        sim.run(until=200)
        assert fired == [1]
        assert sim.now == 200.0
        sim.run()
        assert fired == [1, 2]

    def test_run_with_no_events_and_until_advances_clock(self):
        sim = Simulator()
        sim.run(until=1000)
        assert sim.now == 1000.0

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        times = []

        def outer():
            times.append(sim.now)
            sim.call_after(10, inner)

        def inner():
            times.append(sim.now)

        sim.call_after(5, outer)
        sim.run()
        assert times == [5.0, 15.0]


class TestFuture:
    def test_resolve_delivers_value(self):
        sim = Simulator()
        future = sim.future()
        future.resolve(42)
        assert future.done
        assert future.value == 42

    def test_value_before_resolution_raises(self):
        sim = Simulator()
        future = sim.future()
        with pytest.raises(SimulationError):
            _ = future.value

    def test_double_resolve_raises(self):
        sim = Simulator()
        future = sim.future()
        future.resolve(1)
        with pytest.raises(SimulationError):
            future.resolve(2)

    def test_fail_propagates_exception_on_value(self):
        sim = Simulator()
        future = sim.future()
        future.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            _ = future.value

    def test_callback_after_resolution_fires_immediately(self):
        sim = Simulator()
        future = sim.future()
        future.resolve("x")
        seen = []
        future.add_callback(lambda f: seen.append(f.value))
        assert seen == ["x"]

    def test_timeout_future(self):
        sim = Simulator()
        future = sim.timeout(250, value="done")
        sim.run()
        assert future.value == "done"
        assert sim.now == 250.0


class TestCombinators:
    def test_all_of_collects_values_in_order(self):
        sim = Simulator()
        futures = [sim.timeout(delay, value=delay) for delay in (30, 10, 20)]
        combined = sim.all_of(futures)
        sim.run()
        assert combined.value == [30, 10, 20]

    def test_all_of_empty_resolves_immediately(self):
        sim = Simulator()
        combined = sim.all_of([])
        assert combined.done
        assert combined.value == []

    def test_all_of_fails_fast(self):
        sim = Simulator()
        good = sim.timeout(100, value=1)
        bad = sim.future()
        combined = AllOf(sim, [good, bad])
        bad.fail(RuntimeError("child failed"))
        with pytest.raises(RuntimeError, match="child failed"):
            _ = combined.value

    def test_any_of_returns_winner_index_and_value(self):
        sim = Simulator()
        slow = sim.timeout(500, value="slow")
        fast = sim.timeout(100, value="fast")
        combined = sim.any_of([slow, fast])
        sim.run()
        assert combined.value == (1, "fast")

    def test_any_of_requires_children(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            AnyOf(sim, [])


class TestProcess:
    def test_yield_delay(self):
        sim = Simulator()

        def proc():
            yield 100
            yield 50
            return sim.now

        result = sim.run_until_complete(sim.spawn(proc()))
        assert result == 150.0

    def test_yield_future_receives_value(self):
        sim = Simulator()

        def proc():
            value = yield sim.timeout(10, value=99)
            return value

        assert sim.run_until_complete(sim.spawn(proc())) == 99

    def test_yield_none_resumes_same_timestamp(self):
        sim = Simulator()

        def proc():
            before = sim.now
            yield None
            return sim.now - before

        assert sim.run_until_complete(sim.spawn(proc())) == 0.0

    def test_yield_process_waits_for_child(self):
        sim = Simulator()

        def child():
            yield 200
            return "child-result"

        def parent():
            result = yield sim.spawn(child())
            return (sim.now, result)

        assert sim.run_until_complete(sim.spawn(parent())) == (200.0, "child-result")

    def test_negative_delay_raises_inside_process(self):
        sim = Simulator()

        def proc():
            yield -5

        process = sim.spawn(proc())
        sim.run()
        with pytest.raises(SimulationError):
            _ = process.completion.value

    def test_unsupported_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "not-a-valid-target"

        process = sim.spawn(proc())
        sim.run()
        with pytest.raises(SimulationError):
            _ = process.completion.value

    def test_exception_inside_process_captured(self):
        sim = Simulator()

        def proc():
            yield 10
            raise KeyError("inner")

        process = sim.spawn(proc())
        sim.run()
        with pytest.raises(KeyError):
            _ = process.completion.value

    def test_failed_future_throws_into_waiter(self):
        sim = Simulator()
        future = sim.future()

        def proc():
            try:
                yield future
            except ValueError:
                return "caught"
            return "not-caught"

        process = sim.spawn(proc())
        sim.call_after(10, lambda: future.fail(ValueError("x")))
        assert sim.run_until_complete(process) == "caught"

    def test_deadlock_detection(self):
        sim = Simulator()

        def proc():
            yield sim.future()  # never resolved

        process = sim.spawn(proc())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(process)

    def test_deadline_enforced(self):
        sim = Simulator()

        def proc():
            yield 10_000

        process = sim.spawn(proc())
        with pytest.raises(SimulationError, match="deadline"):
            sim.run_until_complete(process, deadline=100)

    def test_alive_transitions(self):
        sim = Simulator()

        def proc():
            yield 10

        process = sim.spawn(proc())
        assert process.alive
        sim.run()
        assert not process.alive

    def test_many_processes_interleave_deterministically(self):
        def run_once():
            sim = Simulator()
            log = []

            def worker(worker_id, period):
                for _ in range(3):
                    yield period
                    log.append((sim.now, worker_id))

            for worker_id, period in [(1, 30), (2, 20), (3, 30)]:
                sim.spawn(worker(worker_id, period))
            sim.run()
            return log

        assert run_once() == run_once()
