"""Unit tests for the RoCEv2 wire format (repro.rdma.packets)."""

import pytest

from repro.rdma.packets import (
    AddressBook,
    Aeth,
    Bth,
    HEADER_OVERHEAD_BYTES,
    Opcode,
    PSN_MODULUS,
    PacketPool,
    READ_RESPONSE_TO_WRITE,
    Reth,
    RocePacket,
    SYNDROME_ACK,
    SYNDROME_NAK_PSN_ERROR,
    psn_add,
    psn_distance,
)


class TestPsnArithmetic:
    def test_add_wraps_at_24_bits(self):
        assert psn_add(PSN_MODULUS - 1, 1) == 0
        assert psn_add(PSN_MODULUS - 1, 2) == 1

    def test_add_negative_delta(self):
        assert psn_add(0, -1) == PSN_MODULUS - 1

    def test_distance_forward(self):
        assert psn_distance(10, 15) == 5

    def test_distance_across_wrap(self):
        assert psn_distance(PSN_MODULUS - 2, 3) == 5


class TestBth:
    def test_round_trip(self):
        bth = Bth(
            opcode=Opcode.RC_RDMA_READ_REQUEST,
            dest_qp=0x1234,
            psn=0xABCDE,
            ack_request=True,
            solicited=True,
        )
        assert Bth.unpack(bth.pack()) == bth

    def test_packed_size_is_12_bytes(self):
        bth = Bth(opcode=Opcode.RC_ACKNOWLEDGE, dest_qp=1, psn=0)
        assert len(bth.pack()) == 12

    def test_opcode_is_first_byte(self):
        bth = Bth(opcode=Opcode.RC_RDMA_WRITE_ONLY, dest_qp=1, psn=0)
        assert bth.pack()[0] == int(Opcode.RC_RDMA_WRITE_ONLY)

    def test_out_of_range_fields_rejected(self):
        with pytest.raises(ValueError):
            Bth(opcode=Opcode.RC_ACKNOWLEDGE, dest_qp=1 << 24, psn=0).pack()
        with pytest.raises(ValueError):
            Bth(opcode=Opcode.RC_ACKNOWLEDGE, dest_qp=1, psn=PSN_MODULUS).pack()


class TestReth:
    def test_round_trip(self):
        reth = Reth(virtual_address=0xDEADBEEF_CAFE, remote_key=0x8000_0001, dma_length=4096)
        assert Reth.unpack(reth.pack()) == reth

    def test_packed_size_is_16_bytes(self):
        assert len(Reth(virtual_address=0, remote_key=0, dma_length=0).pack()) == 16

    def test_rejects_oversized_length(self):
        with pytest.raises(ValueError):
            Reth(virtual_address=0, remote_key=0, dma_length=1 << 32).pack()


class TestAeth:
    def test_round_trip(self):
        aeth = Aeth(syndrome=SYNDROME_NAK_PSN_ERROR, msn=0x123)
        assert Aeth.unpack(aeth.pack()) == aeth

    def test_packed_size_is_4_bytes(self):
        assert len(Aeth(syndrome=0, msn=0).pack()) == 4

    def test_ack_and_nak_classification(self):
        assert Aeth(syndrome=SYNDROME_ACK, msn=0).is_ack
        assert not Aeth(syndrome=SYNDROME_ACK, msn=0).is_nak
        assert Aeth(syndrome=SYNDROME_NAK_PSN_ERROR, msn=0).is_nak
        assert not Aeth(syndrome=SYNDROME_NAK_PSN_ERROR, msn=0).is_ack


class TestOpcodeProperties:
    def test_reth_on_read_request_and_write_head(self):
        assert Opcode.RC_RDMA_READ_REQUEST.carries_reth
        assert Opcode.RC_RDMA_WRITE_FIRST.carries_reth
        assert Opcode.RC_RDMA_WRITE_ONLY.carries_reth
        assert not Opcode.RC_RDMA_WRITE_MIDDLE.carries_reth
        assert not Opcode.RC_RDMA_WRITE_LAST.carries_reth

    def test_aeth_on_responses_and_acks(self):
        assert Opcode.RC_ACKNOWLEDGE.carries_aeth
        assert Opcode.RC_RDMA_READ_RESPONSE_FIRST.carries_aeth
        assert Opcode.RC_RDMA_READ_RESPONSE_ONLY.carries_aeth
        assert not Opcode.RC_RDMA_READ_RESPONSE_MIDDLE.carries_aeth

    def test_read_response_to_write_conversion_map(self):
        """Section 5.2: Response First/Middle/Last map to Write
        First/Middle/Last when Cowbird-P4 recycles them."""
        assert (
            READ_RESPONSE_TO_WRITE[Opcode.RC_RDMA_READ_RESPONSE_FIRST]
            is Opcode.RC_RDMA_WRITE_FIRST
        )
        assert (
            READ_RESPONSE_TO_WRITE[Opcode.RC_RDMA_READ_RESPONSE_MIDDLE]
            is Opcode.RC_RDMA_WRITE_MIDDLE
        )
        assert (
            READ_RESPONSE_TO_WRITE[Opcode.RC_RDMA_READ_RESPONSE_LAST]
            is Opcode.RC_RDMA_WRITE_LAST
        )
        assert (
            READ_RESPONSE_TO_WRITE[Opcode.RC_RDMA_READ_RESPONSE_ONLY]
            is Opcode.RC_RDMA_WRITE_ONLY
        )


class TestRocePacket:
    def make_read_request(self):
        return RocePacket(
            src="compute",
            dst="pool",
            bth=Bth(opcode=Opcode.RC_RDMA_READ_REQUEST, dest_qp=7, psn=42),
            reth=Reth(virtual_address=0x4000_0000, remote_key=0x8000_0001, dma_length=256),
        )

    def test_header_validation_missing_reth(self):
        with pytest.raises(ValueError, match="requires a RETH"):
            RocePacket(
                src="a", dst="b",
                bth=Bth(opcode=Opcode.RC_RDMA_READ_REQUEST, dest_qp=1, psn=0),
            )

    def test_header_validation_unexpected_reth(self):
        with pytest.raises(ValueError, match="must not carry"):
            RocePacket(
                src="a", dst="b",
                bth=Bth(opcode=Opcode.RC_ACKNOWLEDGE, dest_qp=1, psn=0),
                reth=Reth(virtual_address=0, remote_key=0, dma_length=0),
                aeth=Aeth(syndrome=SYNDROME_ACK, msn=0),
            )

    def test_header_validation_missing_aeth(self):
        with pytest.raises(ValueError, match="requires an AETH"):
            RocePacket(
                src="a", dst="b",
                bth=Bth(opcode=Opcode.RC_ACKNOWLEDGE, dest_qp=1, psn=0),
            )

    def test_ack_with_payload_rejected(self):
        with pytest.raises(ValueError, match="no payload"):
            RocePacket(
                src="a", dst="b",
                bth=Bth(opcode=Opcode.RC_ACKNOWLEDGE, dest_qp=1, psn=0),
                aeth=Aeth(syndrome=SYNDROME_ACK, msn=0),
                payload=b"x",
            )

    def test_size_accounting_read_request(self):
        packet = self.make_read_request()
        # Eth(14) + IP(20) + UDP(8) + BTH(12) + RETH(16) + ICRC(4) = 74
        assert packet.size_bytes == HEADER_OVERHEAD_BYTES + 16
        assert packet.size_bytes == 74

    def test_size_accounting_with_payload(self):
        packet = RocePacket(
            src="a", dst="b",
            bth=Bth(opcode=Opcode.RC_RDMA_READ_RESPONSE_ONLY, dest_qp=1, psn=0),
            aeth=Aeth(syndrome=SYNDROME_ACK, msn=0),
            payload=b"z" * 256,
        )
        assert packet.size_bytes == HEADER_OVERHEAD_BYTES + 4 + 256

    def test_pack_produces_exactly_size_bytes(self):
        book = AddressBook()
        packet = self.make_read_request()
        assert len(packet.pack(book)) == packet.size_bytes

    def test_pack_unpack_round_trip(self):
        book = AddressBook()
        packet = self.make_read_request()
        restored = RocePacket.unpack(packet.pack(book), book)
        assert restored.src == "compute"
        assert restored.dst == "pool"
        assert restored.bth == packet.bth
        assert restored.reth == packet.reth
        assert restored.payload == b""

    def test_pack_unpack_round_trip_with_payload(self):
        book = AddressBook()
        packet = RocePacket(
            src="pool", dst="compute",
            bth=Bth(opcode=Opcode.RC_RDMA_READ_RESPONSE_ONLY, dest_qp=5, psn=9),
            aeth=Aeth(syndrome=SYNDROME_ACK, msn=1),
            payload=bytes(range(200)),
        )
        restored = RocePacket.unpack(packet.pack(book), book)
        assert restored.payload == bytes(range(200))
        assert restored.aeth == packet.aeth

    def test_udp_port_is_4791(self):
        book = AddressBook()
        wire = self.make_read_request().pack(book)
        # UDP header starts after Eth(14) + IP(20); dst port is bytes 2-4.
        udp_start = 34
        dst_port = int.from_bytes(wire[udp_start + 2 : udp_start + 4], "big")
        assert dst_port == 4791

    def test_unpack_rejects_non_roce(self):
        book = AddressBook()
        wire = bytearray(self.make_read_request().pack(book))
        wire[36] = 0  # clobber UDP destination port
        wire[37] = 80
        with pytest.raises(ValueError, match="not a RoCEv2"):
            RocePacket.unpack(bytes(wire), book)

    def test_unpack_rejects_truncated(self):
        with pytest.raises(ValueError, match="too short"):
            RocePacket.unpack(b"\x00" * 10)


class TestAddressBook:
    def test_assignments_are_stable(self):
        book = AddressBook()
        ip1 = book.ip_of("alpha")
        assert book.ip_of("alpha") == ip1

    def test_distinct_names_distinct_ips(self):
        book = AddressBook()
        assert book.ip_of("a") != book.ip_of("b")

    def test_reverse_lookup(self):
        book = AddressBook()
        ip = book.ip_of("host-1")
        assert book.name_of(ip) == "host-1"

    def test_unknown_ip_raises(self):
        book = AddressBook()
        with pytest.raises(KeyError):
            book.name_of(0x7F000001)

    def test_mac_derivation(self):
        book = AddressBook()
        mac = book.mac_of("x")
        assert len(mac) == 6
        assert mac[:2] == b"\x02\x00"  # locally administered


class TestZeroCopyUnpack:
    """The memoryview fast path: unpack slices, it does not copy."""

    def make_response(self, payload=bytes(range(200))):
        return RocePacket(
            src="pool", dst="compute",
            bth=Bth(opcode=Opcode.RC_RDMA_READ_RESPONSE_ONLY, dest_qp=5, psn=9),
            aeth=Aeth(syndrome=SYNDROME_ACK, msn=1),
            payload=payload,
        )

    def test_unpacked_payload_is_memoryview_slice(self):
        book = AddressBook()
        restored = RocePacket.unpack(self.make_response().pack(book), book)
        assert isinstance(restored.payload, memoryview)
        assert bytes(restored.payload) == bytes(range(200))

    def test_extension_headers_parse_lazily(self):
        book = AddressBook()
        restored = RocePacket.unpack(self.make_response().pack(book), book)
        assert restored._aeth is None  # not parsed yet
        assert restored.aeth == Aeth(syndrome=SYNDROME_ACK, msn=1)
        assert restored._aeth is not None  # cached after first access

    def test_repack_after_unpack_round_trips(self):
        book = AddressBook()
        wire = self.make_response().pack(book)
        assert RocePacket.unpack(wire, book).pack(book) == wire

    def test_size_bytes_correct_without_parsing_extensions(self):
        book = AddressBook()
        original = self.make_response()
        restored = RocePacket.unpack(original.pack(book), book)
        assert restored.size_bytes == original.size_bytes
        assert restored._aeth is None  # size never forced a parse


class TestRecycle:
    """In-place read-response -> write conversion (the P4 primitive)."""

    def recycled_write(self, payload=bytes(range(64))):
        book = AddressBook()
        response = RocePacket(
            src="pool", dst="compute",
            bth=Bth(opcode=Opcode.RC_RDMA_READ_RESPONSE_ONLY, dest_qp=5, psn=9),
            aeth=Aeth(syndrome=SYNDROME_ACK, msn=1),
            payload=payload,
        )
        arriving = RocePacket.unpack(response.pack(book), book)
        reth = Reth(virtual_address=0x1000, remote_key=0x77, dma_length=len(payload))
        arriving.recycle(
            src="switch", dst="pool",
            opcode=Opcode.RC_RDMA_WRITE_ONLY, dest_qp=3, psn=100,
            ack_request=True, reth=reth,
        )
        return arriving, reth, book

    def test_recycle_matches_fresh_packet_bytes(self):
        recycled, reth, book = self.recycled_write()
        fresh = RocePacket(
            src="switch", dst="pool",
            bth=Bth(opcode=Opcode.RC_RDMA_WRITE_ONLY, dest_qp=3, psn=100,
                    ack_request=True),
            reth=reth,
            payload=bytes(range(64)),
        )
        assert recycled.pack(book) == fresh.pack(book)
        assert recycled == fresh

    def test_recycle_leaves_payload_view_untouched(self):
        recycled, _reth, _book = self.recycled_write()
        assert isinstance(recycled.payload, memoryview)
        assert bytes(recycled.payload) == bytes(range(64))

    def test_recycle_round_trips_through_wire(self):
        recycled, reth, book = self.recycled_write()
        restored = RocePacket.unpack(recycled.pack(book), book)
        assert restored.bth == recycled.bth
        assert restored.reth == reth
        assert restored.payload == bytes(range(64))


class TestPacketPool:
    def make_request(self, pool):
        return pool.acquire(
            src="switch", dst="pool",
            bth=Bth(opcode=Opcode.RC_RDMA_READ_REQUEST, dest_qp=7, psn=42),
            reth=Reth(virtual_address=0x4000, remote_key=0x8, dma_length=256),
        )

    def test_release_then_acquire_reuses_shell(self):
        pool = PacketPool()
        first = self.make_request(pool)
        first.release()
        assert len(pool) == 1
        second = self.make_request(pool)
        assert second is first  # the shell came off the free-list
        assert len(pool) == 0

    def test_release_clears_buffers(self):
        pool = PacketPool()
        packet = pool.acquire(
            src="a", dst="b",
            bth=Bth(opcode=Opcode.RC_RDMA_WRITE_ONLY, dest_qp=1, psn=0),
            reth=Reth(virtual_address=0, remote_key=0, dma_length=4),
            payload=b"data",
        )
        packet.release()
        assert packet.payload == b""
        assert packet._wire is None

    def test_double_release_is_idempotent(self):
        pool = PacketPool()
        packet = self.make_request(pool)
        packet.release()
        packet.release()
        assert len(pool) == 1

    def test_foreign_packet_release_ignored(self):
        pool = PacketPool()
        outsider = RocePacket(
            src="a", dst="b",
            bth=Bth(opcode=Opcode.RC_ACKNOWLEDGE, dest_qp=1, psn=0),
            aeth=Aeth(syndrome=SYNDROME_ACK, msn=0),
        )
        outsider.release()  # no pool: no-op
        pool.release(outsider)  # not ours: ignored
        assert len(pool) == 0

    def test_maxsize_bounds_free_list(self):
        pool = PacketPool(maxsize=2)
        packets = [self.make_request(pool) for _ in range(4)]
        for packet in packets:
            packet.release()
        assert len(pool) == 2

    def test_acquired_shell_packs_like_fresh(self):
        book = AddressBook()
        pool = PacketPool()
        self.make_request(pool).release()
        reused = self.make_request(pool)
        fresh = RocePacket(
            src="switch", dst="pool",
            bth=Bth(opcode=Opcode.RC_RDMA_READ_REQUEST, dest_qp=7, psn=42),
            reth=Reth(virtual_address=0x4000, remote_key=0x8, dma_length=256),
        )
        assert reused.pack(book) == fresh.pack(book)
