"""Tests for the unified telemetry layer.

Pins the subsystem's invariants: hierarchical instrument registration,
histogram bucket arithmetic, span recording against the sim clock, the
Chrome ``trace_event`` JSON schema, the zero-cost null mode, and — most
importantly — that enabling telemetry never changes experiment numbers.
"""

import io
import json

import pytest

from repro import telemetry
from repro.telemetry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    NULL_TELEMETRY,
    NULL_TRACER,
    Telemetry,
    Tracer,
    chrome_trace_document,
    log_bucket_bounds,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.spans import SpanEvent


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("nic.compute.tx_bytes")
        b = reg.counter("nic.compute.tx_bytes")
        assert a is b
        assert len(reg) == 1

    def test_hierarchical_names_and_prefix_queries(self):
        reg = MetricsRegistry()
        reg.counter("nic.compute.tx_bytes")
        reg.counter("nic.compute.rx_bytes")
        reg.counter("nic.pool.tx_bytes")
        reg.gauge("qp.3.outstanding")
        assert reg.names("nic.compute.") == [
            "nic.compute.rx_bytes", "nic.compute.tx_bytes",
        ]
        assert set(reg.snapshot("nic.")) == {
            "nic.compute.rx_bytes", "nic.compute.tx_bytes", "nic.pool.tx_bytes",
        }

    @pytest.mark.parametrize("name", ["", ".x", "x.", "a..b"])
    def test_invalid_names_rejected(self, name):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter(name)

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("sim.events")
        with pytest.raises(TypeError):
            reg.gauge("sim.events")
        with pytest.raises(TypeError):
            reg.histogram("sim.events")

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(2.5)
        reg.histogram("h", bounds=(1.0, 10.0)).observe(5.0)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == {"value": 2.5, "max": 2.5}
        assert snap["h"]["count"] == 1
        assert snap["h"]["bounds"] == [1.0, 10.0]

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_tracks_max(self):
        g = Gauge("g")
        g.set(5)
        g.add(-3)
        assert g.value == 2
        assert g.max_value == 5


class TestHistogram:
    def test_log_bucket_bounds(self):
        assert log_bucket_bounds(1, 8, 2) == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ValueError):
            log_bucket_bounds(0, 8, 2)
        with pytest.raises(ValueError):
            log_bucket_bounds(1, 8, 1.0)

    def test_bucket_edges_are_inclusive_upper(self):
        h = Histogram("h", bounds=(10.0, 100.0))
        h.observe(10.0)   # exactly on the first edge -> first bucket
        h.observe(10.1)   # just above -> second bucket
        h.observe(100.0)  # on the last edge -> second bucket
        h.observe(100.1)  # above every edge -> overflow bucket
        assert h.bucket_counts == [1, 2, 1]

    def test_exact_count_sum_max_mean(self):
        h = Histogram("h", bounds=(1.0,))
        for value in (0.5, 2.0, 7.5):
            h.observe(value)
        assert h.count == 3
        assert h.sum == pytest.approx(10.0)
        assert h.max == 7.5
        assert h.mean() == pytest.approx(10.0 / 3)

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0,)).observe(-1.0)


class TestTracer:
    def make_clock(self):
        state = {"now": 0.0}
        return state, (lambda: state["now"])

    def test_span_context_manager_uses_bound_clock(self):
        state, clock = self.make_clock()
        tracer = Tracer()
        tracer.bind_clock(clock)
        state["now"] = 100.0
        with tracer.span("rdma.read", process="compute", track="qp1", qp=1) as s:
            state["now"] = 250.0
            s.set(bytes=64)
        (event,) = tracer.events
        assert event.begin_ns == 100.0
        assert event.end_ns == 250.0
        assert event.process == "compute"
        assert event.track == "qp1"
        assert event.attrs == {"qp": 1, "bytes": 64}
        assert not event.is_instant

    def test_complete_records_retroactive_interval(self):
        tracer = Tracer()
        tracer.complete("p4.request", 10.0, 30.0, process="switch", track="inst0")
        (event,) = tracer.events
        assert event.duration_ns == 20.0

    def test_instant_events(self):
        state, clock = self.make_clock()
        tracer = Tracer()
        tracer.bind_clock(clock)
        state["now"] = 42.0
        tracer.instant("rdma.nak", process="pool")
        (event,) = tracer.events
        assert event.is_instant
        assert event.begin_ns == 42.0

    def test_capacity_cap_drops_and_counts(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.complete("e", 0.0, 1.0)
        assert len(tracer) == 2
        assert tracer.dropped_over_capacity == 3

    def test_span_names_and_last_timestamp(self):
        tracer = Tracer()
        tracer.complete("a", 0.0, 5.0)
        tracer.complete("a", 1.0, 3.0)
        tracer.complete("b", 2.0, 9.0)
        assert tracer.span_names() == {"a": 2, "b": 1}
        assert tracer.last_timestamp_ns() == 9.0
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.last_timestamp_ns() == 0.0


class TestChromeExport:
    def sample_events(self):
        return [
            SpanEvent("rdma.read", 1000.0, 3000.0, "compute", "qp1", {"bytes": 64}),
            SpanEvent("rdma.nak", 4000.0, 4000.0, "pool", "nic", {}),
            SpanEvent("link.tx", 500.0, 700.0, "net", "compute->switch", {}),
        ]

    def test_document_schema(self):
        doc = chrome_trace_document(self.sample_events(), metrics={"c": 1})
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"] == {"metrics": {"c": 1}}
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        durations = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(durations) == 2
        assert len(instants) == 1
        # One process_name per distinct process, one thread_name per track.
        assert sum(1 for e in meta if e["name"] == "process_name") == 3
        assert sum(1 for e in meta if e["name"] == "thread_name") == 3

    def test_timestamps_convert_to_microseconds(self):
        doc = chrome_trace_document(self.sample_events())
        read = next(
            e for e in doc["traceEvents"] if e.get("name") == "rdma.read"
        )
        assert read["ts"] == 1.0
        assert read["dur"] == 2.0
        assert read["args"] == {"bytes": 64}
        nak = next(e for e in doc["traceEvents"] if e.get("name") == "rdma.nak")
        assert nak["ph"] == "i"
        assert nak["s"] == "t"
        assert "dur" not in nak

    def test_pid_tid_stable_per_process_and_track(self):
        doc = chrome_trace_document(self.sample_events() + self.sample_events())
        reads = [e for e in doc["traceEvents"] if e.get("name") == "rdma.read"]
        assert len({(e["pid"], e["tid"]) for e in reads}) == 1
        naks = [e for e in doc["traceEvents"] if e.get("name") == "rdma.nak"]
        assert reads[0]["pid"] != naks[0]["pid"]

    def test_round_trips_through_json(self):
        handle = io.StringIO()
        tel = Telemetry()
        tel.complete("x", 0.0, 10.0)
        tel.counter("c").inc()
        tel.write_chrome_trace(handle)
        doc = json.loads(handle.getvalue())
        assert doc["otherData"]["metrics"]["c"] == 1

    def test_jsonl_export(self):
        handle = io.StringIO()
        tel = Telemetry()
        tel.complete("x", 0.0, 10.0, process="p", track="t", k="v")
        tel.write_jsonl(handle)
        lines = handle.getvalue().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record == {
            "name": "x", "begin_ns": 0.0, "end_ns": 10.0,
            "process": "p", "track": "t", "attrs": {"k": "v"},
        }


class TestNullMode:
    def test_null_registry_hands_out_shared_noops(self):
        assert NULL_REGISTRY.counter("a.b") is NULL_COUNTER
        assert NULL_REGISTRY.gauge("a.b") is NULL_GAUGE
        assert NULL_REGISTRY.histogram("a.b") is NULL_HISTOGRAM
        assert len(NULL_REGISTRY) == 0

    def test_null_instruments_record_nothing(self):
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(5.0)
        NULL_HISTOGRAM.observe(3.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("x", process="p") as s:
            s.set(k=1)
        NULL_TRACER.complete("y", 0.0, 1.0)
        NULL_TRACER.instant("z")
        assert len(NULL_TRACER) == 0

    def test_null_telemetry_is_disabled_and_empty(self):
        assert NULL_TELEMETRY.enabled is False
        assert Telemetry().enabled is True
        NULL_TELEMETRY.counter("a.b").inc()
        assert NULL_TELEMETRY.snapshot() == {}


class TestActivation:
    def test_activate_installs_and_restores(self):
        assert telemetry.current() is None
        with telemetry.activate() as tel:
            assert telemetry.current() is tel
            with telemetry.activate(NULL_TELEMETRY):
                assert telemetry.current() is NULL_TELEMETRY
            assert telemetry.current() is tel
        assert telemetry.current() is None

    def test_install_uninstall(self):
        tel = Telemetry()
        try:
            assert telemetry.install(tel) is tel
            assert telemetry.current() is tel
        finally:
            telemetry.uninstall()
        assert telemetry.current() is None

    def test_testbed_picks_up_active_telemetry(self):
        from repro.testbed import Testbed

        with telemetry.activate() as tel:
            bed = Testbed()
        assert bed.sim.telemetry is tel
        bed2 = Testbed()
        assert bed2.sim.telemetry is NULL_TELEMETRY


class TestInstrumentation:
    """Telemetry actually observes the simulated stack."""

    def run_one_read(self, tel):
        from repro.testbed import Testbed

        with telemetry.activate(tel):
            bed = Testbed()
            compute = bed.add_host("compute", cpu_cores=2)
            pool = bed.add_host("pool")
            qp_c, _ = bed.connect_qps(compute, pool)
            remote = pool.registry.register(1 << 12)
            local = compute.registry.register(1 << 12)
            thread = compute.cpu.thread()

            def op():
                yield from compute.verbs.read_sync(
                    thread, qp_c, local.base_addr, remote.base_addr,
                    remote.rkey, 64,
                )

            bed.sim.run_until_complete(bed.sim.spawn(op()), deadline=1e9)
        return bed

    def test_counters_cover_nic_link_and_sim(self):
        tel = Telemetry()
        self.run_one_read(tel)
        snap = tel.snapshot()
        assert snap["nic.compute.posts"] == 1
        assert snap["nic.compute.tx_packets"] >= 1
        assert snap["nic.pool.rx_packets"] >= 1
        assert snap["link.compute->switch.tx_bytes"] > 0
        assert snap["sim.events_dispatched"] > 0

    def test_spans_cover_verbs_rdma_and_link(self):
        tel = Telemetry()
        self.run_one_read(tel)
        names = tel.tracer.span_names()
        assert names["verbs.read_sync"] == 1
        assert names["rdma.read"] == 1
        assert names["link.tx"] >= 2  # request out, response back
        # All timestamps are sim-time (the read completes in microseconds).
        assert 0 < tel.tracer.last_timestamp_ns() < 1e9


class TestDeterminism:
    """Enabling telemetry must never change an experiment's numbers."""

    @pytest.mark.parametrize("system", ["one-sided", "cowbird", "cowbird-p4"])
    def test_microbench_identical_with_and_without(self, system):
        from repro.experiments.common import run_microbench

        kwargs = dict(threads=2, ops_per_thread=40)
        bare = run_microbench(system, **kwargs)
        with telemetry.activate() as tel:
            traced = run_microbench(system, **kwargs)
        assert len(tel.tracer) > 0  # telemetry actually recorded
        assert traced.total_ops == bare.total_ops
        assert traced.elapsed_ns == bare.elapsed_ns
        assert traced.throughput_mops == bare.throughput_mops
        assert traced.comm_cpu_ns == bare.comm_cpu_ns
        assert traced.per_thread_mops == bare.per_thread_mops

    def test_fig01_identical_with_and_without(self):
        from repro.experiments import fig01

        bare = fig01.run(ops_per_thread=20)
        with telemetry.activate():
            traced = fig01.run(ops_per_thread=20)
        assert traced == bare


class TestCli:
    def test_run_with_trace_metrics_and_json(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        json_path = tmp_path / "dump.json"
        rc = main([
            "run", "fig01", "--ops", "10",
            "--trace", str(trace_path),
            "--json", str(json_path),
            "--metrics",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry metrics" in out
        # The trace holds spans from at least three subsystems.
        doc = json.loads(trace_path.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"verbs.read_sync", "link.tx", "sim.process"} <= names
        # The JSON dump carries run metadata without displacing records.
        dump = json.loads(json_path.read_text())
        assert "fig01" in dump
        meta = dump["meta"]
        assert meta["repro_version"]
        entry = meta["experiments"]["fig01"]
        assert entry["seed"] == 1
        assert entry["sim_duration_ns"] > 0
        # wall-clock stays on stdout only: keeping it out of the dump is
        # what makes serial and parallel runs byte-identical.
        assert "wall_clock_s" not in entry
        assert entry["total_ops"] > 0

    def test_metrics_subcommand(self, capsys):
        from repro.cli import main

        rc = main(["metrics", "fig02", "--prefix", "nic."])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nic.compute.posts" in out
