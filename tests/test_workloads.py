"""Unit tests for workload generators (repro.workloads)."""

from collections import Counter

import pytest

from repro.workloads.hashtable import HashTable, HashTableConfig
from repro.workloads.ycsb import (
    UniformGenerator,
    YcsbConfig,
    YcsbOp,
    YcsbWorkload,
    ZipfianGenerator,
    fnv1a_64,
)


class TestUniformGenerator:
    def test_values_in_range(self):
        gen = UniformGenerator(1000, seed=1)
        assert all(0 <= gen.next() < 1000 for _ in range(500))

    def test_deterministic_by_seed(self):
        a = UniformGenerator(1000, seed=5)
        b = UniformGenerator(1000, seed=5)
        assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]

    def test_distinct_seeds_differ(self):
        a = UniformGenerator(1000, seed=1)
        b = UniformGenerator(1000, seed=2)
        assert [a.next() for _ in range(50)] != [b.next() for _ in range(50)]

    def test_roughly_uniform_coverage(self):
        gen = UniformGenerator(10, seed=3)
        counts = Counter(gen.next() for _ in range(10_000))
        for key in range(10):
            assert 800 < counts[key] < 1200

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            UniformGenerator(0)


class TestZipfianGenerator:
    def test_values_in_range(self):
        gen = ZipfianGenerator(10_000, seed=7)
        assert all(0 <= gen.next() < 10_000 for _ in range(1000))

    def test_skew_concentrates_mass(self):
        """With theta=0.99 the hottest key takes a large share."""
        gen = ZipfianGenerator(10_000, theta=0.99, seed=11, scrambled=False)
        counts = Counter(gen.next() for _ in range(20_000))
        top_share = counts.most_common(1)[0][1] / 20_000
        assert top_share > 0.05  # the single hottest key

    def test_unscrambled_rank_zero_is_hottest(self):
        gen = ZipfianGenerator(1000, seed=2, scrambled=False)
        counts = Counter(gen.next() for _ in range(20_000))
        assert counts.most_common(1)[0][0] == 0

    def test_scrambling_spreads_hot_keys(self):
        gen = ZipfianGenerator(1000, seed=2, scrambled=True)
        counts = Counter(gen.next() for _ in range(20_000))
        hottest = counts.most_common(1)[0][0]
        assert hottest == fnv1a_64(0) % 1000

    def test_deterministic_by_seed(self):
        a = ZipfianGenerator(5000, seed=9)
        b = ZipfianGenerator(5000, seed=9)
        assert [a.next() for _ in range(200)] == [b.next() for _ in range(200)]

    def test_more_skew_than_uniform(self):
        zipf = ZipfianGenerator(1000, seed=4, scrambled=False)
        uniform = UniformGenerator(1000, seed=4)
        zipf_top10 = Counter(zipf.next() for _ in range(10_000)).most_common(10)
        unif_top10 = Counter(uniform.next() for _ in range(10_000)).most_common(10)
        assert sum(c for _, c in zipf_top10) > 2 * sum(c for _, c in unif_top10)

    def test_invalid_theta_rejected(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(100, theta=1.0)
        with pytest.raises(ValueError):
            ZipfianGenerator(100, theta=0.0)


class TestYcsbWorkload:
    def test_pure_read_mix(self):
        workload = YcsbWorkload(YcsbConfig(read_fraction=1.0))
        ops = [op for op, _ in workload.ops(200)]
        assert all(op is YcsbOp.READ for op in ops)

    def test_mixed_workload_ratio(self):
        workload = YcsbWorkload(YcsbConfig(read_fraction=0.5, seed=3))
        ops = [op for op, _ in workload.ops(2000)]
        reads = sum(1 for op in ops if op is YcsbOp.READ)
        assert 850 < reads < 1150

    def test_value_payload_size_and_determinism(self):
        workload = YcsbWorkload(YcsbConfig(value_bytes=64))
        value = workload.value_for(42)
        assert len(value) == 64
        assert value == workload.value_for(42)
        assert value != workload.value_for(43)

    def test_record_bytes(self):
        config = YcsbConfig(value_bytes=512)
        assert config.record_bytes == 520

    def test_worker_seeds_decorrelate(self):
        a = YcsbWorkload(YcsbConfig(), worker_seed=1)
        b = YcsbWorkload(YcsbConfig(), worker_seed=2)
        assert [k for _, k in a.ops(50)] != [k for _, k in b.ops(50)]

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            YcsbConfig(read_fraction=1.5)
        with pytest.raises(ValueError):
            YcsbConfig(distribution="pareto")


class TestHashTable:
    def test_local_fraction_respected(self):
        config = HashTableConfig(num_records=1000, local_fraction=0.05)
        table = HashTable(config)
        assert table.local_count == 50
        assert table.remote_count == 950

    def test_locate_split(self):
        table = HashTable(HashTableConfig(num_records=100, local_fraction=0.1))
        locals_ = sum(1 for k in range(100) if table.locate(k)[0])
        assert locals_ == 10

    def test_remote_offsets_distinct_and_aligned(self):
        config = HashTableConfig(num_records=100, record_bytes=256,
                                 local_fraction=0.0)
        table = HashTable(config)
        offsets = {table.locate(k)[1] for k in range(100)}
        assert len(offsets) == 100
        assert all(off % 256 == 0 for off in offsets)

    def test_remote_bytes_needed(self):
        config = HashTableConfig(num_records=100, record_bytes=64,
                                 local_fraction=0.5)
        assert HashTable(config).remote_bytes_needed() == 50 * 64

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            HashTableConfig(local_fraction=1.5)
        with pytest.raises(ValueError):
            HashTableConfig(num_records=0)
