"""Unit tests for Cowbird wire formats and ring buffers."""

import pytest

from repro.cowbird.buffers import DataRing, MetadataRing, RingFullError, skip_pad
from repro.cowbird.wire import (
    BookkeepingLayout,
    GreenBlock,
    METADATA_ENTRY_BYTES,
    RedBlock,
    RequestMetadata,
    RwType,
    decode_request_id,
    encode_request_id,
)
from repro.memory.region import MemoryRegion


def make_region(length=8192):
    return MemoryRegion(base_addr=0x1000, length=length, lkey=1, rkey=2)


class TestRequestMetadata:
    def entry(self, **kwargs):
        defaults = dict(
            rw_type=RwType.READ, req_addr=0x4000_0000, resp_addr=0x2000,
            length=256, region_id=3,
        )
        defaults.update(kwargs)
        return RequestMetadata(**defaults)

    def test_round_trip(self):
        entry = self.entry()
        assert RequestMetadata.unpack(entry.pack()) == entry

    def test_packed_size_is_32_bytes(self):
        """Fixed-size entries are R1: parsable without conditionals."""
        assert len(self.entry().pack()) == 32
        assert METADATA_ENTRY_BYTES == 32

    def test_write_entry_round_trip(self):
        entry = self.entry(rw_type=RwType.WRITE, req_addr=0x3000,
                           resp_addr=0x4000_0100)
        assert RequestMetadata.unpack(entry.pack()) == entry

    def test_invalid_marker_survives(self):
        entry = self.entry(rw_type=RwType.INVALID)
        assert RequestMetadata.unpack(entry.pack()).rw_type is RwType.INVALID

    def test_zeroed_memory_parses_as_invalid(self):
        """Fresh ring memory must read as not-ready, never as a request."""
        assert RequestMetadata.unpack(b"\x00" * 32).rw_type is RwType.INVALID

    def test_field_ranges_enforced(self):
        with pytest.raises(ValueError):
            self.entry(region_id=1 << 16)
        with pytest.raises(ValueError):
            self.entry(length=1 << 32)
        with pytest.raises(ValueError):
            self.entry(req_addr=-1)

    def test_truncated_unpack_raises(self):
        with pytest.raises(ValueError):
            RequestMetadata.unpack(b"\x00" * 8)


class TestBookkeepingBlocks:
    def test_green_round_trip(self):
        green = GreenBlock(request_meta_tail=123, request_data_tail=456789)
        assert GreenBlock.unpack(green.pack()) == green

    def test_red_round_trip(self):
        red = RedBlock(
            request_meta_head=1, request_data_head=2, response_data_tail=3,
            write_progress=4, read_progress=5,
        )
        assert RedBlock.unpack(red.pack()) == red

    def test_blocks_fit_single_rdma_ops(self):
        """R3: each block must be readable/writable in one small RDMA op."""
        assert GreenBlock.SIZE == 16
        assert RedBlock.SIZE == 40

    def test_layout_separates_cache_lines(self):
        layout = BookkeepingLayout(base_addr=0x100)
        assert layout.red_addr - layout.green_addr >= 64
        assert layout.TOTAL_BYTES >= layout.RED_OFFSET + RedBlock.SIZE


class TestRequestIdEncoding:
    def test_round_trip(self):
        request_id = encode_request_id(RwType.READ, region_id=7, sequence=1234)
        assert decode_request_id(request_id) == (RwType.READ, 7, 1234)

    def test_types_do_not_collide(self):
        read_id = encode_request_id(RwType.READ, 1, 5)
        write_id = encode_request_id(RwType.WRITE, 1, 5)
        assert read_id != write_id

    def test_regions_do_not_collide(self):
        a = encode_request_id(RwType.READ, 1, 5)
        b = encode_request_id(RwType.READ, 2, 5)
        assert a != b

    def test_sequence_comparable_by_integer_arithmetic(self):
        """Section 4.3: completion checks are plain integer compares."""
        earlier = encode_request_id(RwType.READ, 1, 10)
        later = encode_request_id(RwType.READ, 1, 11)
        assert later - earlier == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            encode_request_id(RwType.READ, -1, 1)
        with pytest.raises(ValueError):
            encode_request_id(RwType.READ, 0, 0)


class TestSkipPad:
    def test_no_pad_when_fits(self):
        assert skip_pad(100, 200, 1024) == 0

    def test_pad_at_boundary(self):
        assert skip_pad(900, 200, 1024) == 124

    def test_exact_fit_needs_no_pad(self):
        assert skip_pad(824, 200, 1024) == 0

    def test_wrapped_pointer(self):
        assert skip_pad(1024 + 900, 200, 1024) == 124


class TestMetadataRing:
    def make_ring(self, capacity=8):
        region = make_region()
        return MetadataRing(region, region.base_addr, capacity)

    def entry(self, length=64):
        return RequestMetadata(
            rw_type=RwType.READ, req_addr=0x4000_0000, resp_addr=0x2000,
            length=length, region_id=0,
        )

    def test_append_and_read_back(self):
        ring = self.make_ring()
        index = ring.append(self.entry())
        assert index == 0
        assert ring.read_entry(0) == self.entry()

    def test_fills_then_rejects(self):
        ring = self.make_ring(capacity=4)
        for _ in range(4):
            ring.append(self.entry())
        with pytest.raises(RingFullError):
            ring.append(self.entry())

    def test_head_advance_frees_space(self):
        ring = self.make_ring(capacity=2)
        ring.append(self.entry())
        ring.append(self.entry())
        ring.advance_head(1)
        ring.append(self.entry())  # no raise
        assert ring.tail == 3

    def test_wraparound_addressing(self):
        ring = self.make_ring(capacity=4)
        assert ring.addr_of(0) == ring.addr_of(4)
        assert ring.addr_of(5) == ring.addr_of(1)

    def test_entries_between(self):
        ring = self.make_ring()
        for length in (10, 20, 30):
            ring.append(self.entry(length=length))
        lengths = [e.length for e in ring.entries_between(0, 3)]
        assert lengths == [10, 20, 30]

    def test_head_cannot_move_backwards_or_past_tail(self):
        ring = self.make_ring()
        ring.append(self.entry())
        ring.advance_head(1)
        with pytest.raises(ValueError):
            ring.advance_head(0)
        with pytest.raises(ValueError):
            ring.advance_head(5)

    def test_ring_must_fit_region(self):
        region = make_region(length=64)
        with pytest.raises(ValueError):
            MetadataRing(region, region.base_addr, capacity=1024)


class TestDataRing:
    def make_ring(self, capacity=1024):
        region = make_region(4096)
        return DataRing(region, region.base_addr, capacity)

    def test_reserve_write_read(self):
        ring = self.make_ring()
        addr = ring.reserve(11)
        ring.write(addr, b"hello ring!")
        assert ring.read(addr, 11) == b"hello ring!"

    def test_sequential_reservations_are_contiguous(self):
        ring = self.make_ring()
        first = ring.reserve(100)
        second = ring.reserve(100)
        assert second == first + 100

    def test_no_wrap_rule_pads(self):
        ring = self.make_ring(capacity=256)
        ring.reserve(100)
        ring.reserve(100)
        ring.advance_head(200)  # free both
        addr = ring.reserve(100)  # would straddle: skips 56 pad bytes
        assert addr == ring.base_addr  # restarts at the ring base
        assert ring.tail == 256 + 100

    def test_full_ring_rejects(self):
        ring = self.make_ring(capacity=256)
        ring.reserve(128)
        ring.reserve(100)
        with pytest.raises(RingFullError):
            ring.reserve(100)

    def test_oversized_allocation_rejected(self):
        """Allocations above half the capacity are rejected outright."""
        ring = self.make_ring(capacity=64)
        with pytest.raises(ValueError):
            ring.reserve(33)

    def test_zero_length_rejected(self):
        ring = self.make_ring()
        with pytest.raises(ValueError):
            ring.reserve(0)

    def test_mirror_reserve_matches_reserve(self):
        """The engine's cursor replay must equal the client's layout."""
        ring = self.make_ring(capacity=256)
        mirror_cursor = 0
        lengths = [100, 100, 30, 90, 128, 16]
        for length in lengths:
            # Free everything so the client never blocks on capacity.
            ring.advance_head(ring.tail)
            client_addr = ring.reserve(length)
            engine_addr, mirror_cursor = ring.mirror_reserve(mirror_cursor, length)
            assert engine_addr == client_addr
            assert mirror_cursor == ring.tail
