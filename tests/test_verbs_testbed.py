"""Unit tests for the verbs layer, testbed assembly, and deploy helper."""

import pytest

from repro.cowbird.deploy import deploy_cowbird
from repro.rdma.nic import NicConfig
from repro.rdma.verbs import RdmaError
from repro.sim.cpu import CostModel, TAG_COMM
from repro.testbed import Testbed


class TestVerbsCosts:
    def build(self):
        bed = Testbed()
        compute = bed.add_host("compute", cpu_cores=2)
        pool = bed.add_host("pool")
        qp_c, _ = bed.connect_qps(compute, pool)
        remote = pool.registry.register(1 << 16)
        local = compute.registry.register(1 << 16)
        return bed, compute, qp_c, remote, local

    def test_post_charges_figure2_breakdown(self):
        bed, compute, qp_c, remote, local = self.build()
        thread = compute.cpu.thread()
        cost = compute.verbs.cost

        def op():
            yield from compute.verbs.read_async(
                thread, qp_c, local.base_addr, remote.base_addr, remote.rkey, 8
            )

        bed.sim.run_until_complete(bed.sim.spawn(op()), deadline=1e9)
        assert thread.stats.cpu_ns[TAG_COMM] == pytest.approx(
            cost.rdma_post_total()
        )

    def test_poll_empty_cheaper_than_reap(self):
        bed, compute, qp_c, remote, local = self.build()
        cost = compute.verbs.cost
        t_empty = compute.cpu.thread()
        t_reap = compute.cpu.thread()

        def empty_poll():
            completions = yield from compute.verbs.poll_cq(t_empty, qp_c.cq)
            assert completions == []

        bed.sim.run_until_complete(bed.sim.spawn(empty_poll()), deadline=1e9)

        def read_and_reap():
            yield from compute.verbs.read_async(
                t_reap, qp_c, local.base_addr, remote.base_addr, remote.rkey, 8
            )
            waiter = bed.sim.future()
            qp_c.cq.notify_next_push(waiter)
            yield from t_reap.wait(waiter)
            yield from compute.verbs.poll_cq(t_reap, qp_c.cq)

        bed.sim.run_until_complete(bed.sim.spawn(read_and_reap()), deadline=1e9)
        reap_cost = t_reap.stats.cpu_ns[TAG_COMM] - cost.rdma_post_total()
        assert t_empty.stats.cpu_ns[TAG_COMM] < reap_cost

    def test_rdma_error_surfaces_status(self):
        bed, compute, qp_c, remote, local = self.build()
        thread = compute.cpu.thread()
        # Black-hole the uplink so retries exhaust.
        from repro.sim.network import FaultInjector

        compute.uplink.fault_injector = FaultInjector(seed=1, drop_rate=1.0)

        def op():
            yield from compute.verbs.read_sync(
                thread, qp_c, local.base_addr, remote.base_addr, remote.rkey, 8
            )

        process = bed.sim.spawn(op())
        bed.sim.run(until=10e9)
        with pytest.raises(RdmaError):
            _ = process.completion.value


class TestTestbedAssembly:
    def test_duplicate_host_rejected(self):
        bed = Testbed()
        bed.add_host("a")
        with pytest.raises(ValueError):
            bed.add_host("a")

    def test_nic_config_derived_from_cost_model(self):
        cost = CostModel(nic_message_rate_mops=123.0, mtu_bytes=2048)
        bed = Testbed(cost=cost)
        host = bed.add_host("h")
        assert host.nic.config.message_rate_mops == 123.0
        assert host.nic.config.mtu_bytes == 2048

    def test_explicit_nic_config_wins(self):
        bed = Testbed()
        host = bed.add_host("h", nic_config=NicConfig(message_rate_mops=7.0))
        assert host.nic.config.message_rate_mops == 7.0

    def test_per_host_bandwidth_override(self):
        bed = Testbed()
        host = bed.add_host("slow", bandwidth_gbps=25.0)
        assert host.uplink.bandwidth_gbps == 25.0
        assert bed.switch.port_to("slow").bandwidth_gbps == 25.0

    def test_host_without_cpu_has_none(self):
        bed = Testbed()
        host = bed.add_host("passive")
        assert host.cpu is None

    def test_qp_cross_connection(self):
        bed = Testbed()
        a = bed.add_host("a")
        b = bed.add_host("b")
        qp_a, qp_b = bed.connect_qps(a, b)
        assert qp_a.remote_node == "b" and qp_a.remote_qpn == qp_b.qpn
        assert qp_b.remote_node == "a" and qp_b.remote_qpn == qp_a.qpn


class TestDeployHelper:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            deploy_cowbird(engine="fpga")

    def test_none_engine_builds_client_only(self):
        dep = deploy_cowbird(engine="none")
        assert dep.engine is None
        assert dep.agent_host is None
        assert len(dep.instances) == 1

    def test_p4_engine_has_no_agent_host(self):
        dep = deploy_cowbird(engine="p4")
        assert dep.agent_host is None
        assert dep.engine is not None

    def test_multiple_instances(self):
        dep = deploy_cowbird(engine="spot", num_instances=3)
        assert len(dep.instances) == 3
        assert len(dep.engine._instances) == 3

    def test_pool_region_accessor(self):
        dep = deploy_cowbird(engine="none", remote_bytes=4096)
        region = dep.pool_region()
        assert region.length == 4096
