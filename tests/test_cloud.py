"""Unit tests for the pricing/cost model (repro.cloud, Table 1)."""

import pytest

from repro.cloud.pricing import (
    PRICE_TABLE,
    VmPrice,
    cost_efficiency_gain,
    format_table,
    offload_cost_per_compute_node,
    spot_discount,
)


class TestPriceTable:
    def test_three_providers(self):
        assert {p.provider for p in PRICE_TABLE} == {"GCP", "AWS", "Azure"}

    def test_paper_values(self):
        gcp = next(p for p in PRICE_TABLE if p.provider == "GCP")
        assert gcp.on_demand_hourly == pytest.approx(0.257)
        assert gcp.spot_hourly == pytest.approx(0.059)
        azure = next(p for p in PRICE_TABLE if p.provider == "Azure")
        assert azure.spot_hourly == pytest.approx(0.023)

    def test_discount_up_to_90_percent(self):
        """Section 2.2: 'the cost can be reduced by up to 90%'."""
        best = max(spot_discount(p) for p in PRICE_TABLE)
        assert 0.85 <= best <= 0.95

    def test_all_discounts_substantial(self):
        assert all(spot_discount(p) > 0.7 for p in PRICE_TABLE)

    def test_invalid_prices_rejected(self):
        with pytest.raises(ValueError):
            VmPrice("X", "t", on_demand_hourly=0.1, spot_hourly=0.2)
        with pytest.raises(ValueError):
            VmPrice("X", "t", on_demand_hourly=0.0, spot_hourly=0.0)


class TestCostAnalysis:
    def test_offload_cost_amortizes_across_nodes(self):
        price = PRICE_TABLE[0]
        one = offload_cost_per_compute_node(price, compute_nodes_served=1)
        four = offload_cost_per_compute_node(price, compute_nodes_served=4)
        assert four == pytest.approx(one / 4)

    def test_offload_always_profitable_at_paper_numbers(self):
        """Freeing >80% of compute CPU for a fraction of a spot core is
        a clear win on every provider."""
        for price in PRICE_TABLE:
            assert cost_efficiency_gain(price) > 0.5

    def test_gain_increases_with_nodes_served(self):
        price = PRICE_TABLE[1]
        single = cost_efficiency_gain(price, compute_nodes_served=1)
        multi = cost_efficiency_gain(price, compute_nodes_served=4)
        assert multi > single

    def test_zero_freed_cpu_is_a_loss(self):
        price = PRICE_TABLE[0]
        assert cost_efficiency_gain(price, cpu_fraction_freed=0.0) < 0

    def test_validation(self):
        price = PRICE_TABLE[0]
        with pytest.raises(ValueError):
            offload_cost_per_compute_node(price, compute_nodes_served=0)
        with pytest.raises(ValueError):
            cost_efficiency_gain(price, cpu_fraction_freed=1.5)

    def test_render(self):
        rendered = format_table()
        assert "GCP" in rendered and "spot" in rendered.lower()
