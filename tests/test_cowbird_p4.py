"""Integration tests for the Cowbird-P4 offload engine (Section 5)."""

import pytest

from repro.cowbird.deploy import deploy_cowbird
from repro.cowbird.p4_engine import P4EngineConfig
from repro.cowbird.p4_resources import (
    cowbird_pipeline_units,
    estimate_pipeline_resources,
)
from repro.sim.network import FaultInjector, PRIORITY_LOW


def run_app(dep, generator, deadline=500_000_000):
    return dep.sim.run_until_complete(dep.sim.spawn(generator), deadline=deadline)


def roundtrip(dep, offset=0, payload=b"p4-engine-payload"):
    inst = dep.instances[0]
    thread = dep.compute.cpu.thread()

    def app():
        poll = inst.poll_create()
        wid = yield from inst.async_write(thread, 0, offset, payload)
        inst.poll_add(poll, wid)
        yield from inst.poll_wait(thread, poll, max_ret=1)
        rid = yield from inst.async_read(thread, 0, offset, len(payload))
        inst.poll_add(poll, rid)
        events = yield from inst.poll_wait(thread, poll, max_ret=1)
        return inst.fetch_response(events[0].request_id)

    return run_app(dep, app())


class TestBasicOperation:
    def test_read_returns_remote_bytes(self):
        dep = deploy_cowbird(engine="p4")
        dep.pool_region().write(dep.region.translate(32), b"switch-read")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            rid = yield from inst.async_read(thread, 0, 32, 11)
            inst.poll_add(poll, rid)
            events = yield from inst.poll_wait(thread, poll)
            return inst.fetch_response(events[0].request_id)

        assert run_app(dep, app()) == b"switch-read"

    def test_write_then_read_roundtrip(self):
        dep = deploy_cowbird(engine="p4")
        assert roundtrip(dep) == b"p4-engine-payload"

    def test_write_lands_in_pool_memory(self):
        dep = deploy_cowbird(engine="p4")
        roundtrip(dep, offset=512, payload=b"to-the-pool")
        assert dep.pool_region().read(dep.region.translate(512), 11) == b"to-the-pool"

    def test_no_cpu_anywhere_but_the_app(self):
        """Cowbird-P4 requires no compute, pool, or agent CPU at all."""
        dep = deploy_cowbird(engine="p4")
        roundtrip(dep)
        assert dep.compute.nic.stats.messages_initiated == 0
        assert dep.pool_host.cpu is None
        assert dep.agent_host is None

    def test_segmented_transfer(self):
        dep = deploy_cowbird(engine="p4")
        payload = bytes(i % 253 for i in range(4000))
        assert roundtrip(dep, payload=payload) == payload

    def test_pipelined_reads(self):
        dep = deploy_cowbird(engine="p4")
        pool_region = dep.pool_region()
        for i in range(16):
            pool_region.write(dep.region.translate(i * 64), bytes([i]) * 64)
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            rids = []
            for i in range(16):
                rid = yield from inst.async_read(thread, 0, i * 64, 64)
                inst.poll_add(poll, rid)
                rids.append(rid)
            done = 0
            while done < 16:
                events = yield from inst.poll_wait(thread, poll, max_ret=16)
                done += len(events)
            return [inst.fetch_response(rid) for rid in rids]

        results = run_app(dep, app())
        assert results == [bytes([i]) * 64 for i in range(16)]


class TestPacketRecycling:
    def test_recycling_dominates_generation(self):
        """Only probes are generated; everything else is recycled."""
        dep = deploy_cowbird(engine="p4")
        roundtrip(dep)
        stats = dep.engine.stats
        assert stats.recycled_packets > 0
        assert stats.probe_responses > 0

    def test_probes_are_lowest_priority(self):
        dep = deploy_cowbird(engine="p4")
        roundtrip(dep)
        # Probe traffic shows up in the low-priority byte counters of the
        # switch->compute link; data traffic in the normal class.
        downlink = dep.bed.switch.port_to("compute")
        assert downlink.stats.bytes_by_priority.get(PRIORITY_LOW, 0) > 0

    def test_probe_rate_respects_interval(self):
        dep = deploy_cowbird(
            engine="p4", p4_config=P4EngineConfig(probe_interval_ns=2_000)
        )
        dep.sim.run(until=100_000)
        # 100 us / 2 us = 50 ticks; only one probe outstanding at a time.
        assert dep.engine.stats.probes_sent <= 51
        assert dep.engine.stats.probes_sent >= 10

    def test_adaptive_probing_backs_off_when_idle(self):
        dep = deploy_cowbird(
            engine="p4",
            p4_config=P4EngineConfig(probe_interval_ns=2_000, adaptive_probing=True),
        )
        dep.sim.run(until=500_000)
        idle_probes = dep.engine.stats.probes_sent
        fixed = deploy_cowbird(
            engine="p4", p4_config=P4EngineConfig(probe_interval_ns=2_000)
        )
        fixed.sim.run(until=500_000)
        assert idle_probes < fixed.engine.stats.probes_sent


class TestConsistency:
    def test_read_after_write_sees_new_data(self):
        """Pause-all-reads keeps reads behind in-flight writes."""
        dep = deploy_cowbird(engine="p4")
        dep.pool_region().write(dep.region.translate(0), b"OLDVALUE")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            wid = yield from inst.async_write(thread, 0, 0, b"NEWVALUE")
            rid = yield from inst.async_read(thread, 0, 0, 8)
            inst.poll_add(poll, wid)
            inst.poll_add(poll, rid)
            done = 0
            while done < 2:
                events = yield from inst.poll_wait(thread, poll, max_ret=2)
                done += len(events)
            return inst.fetch_response(rid)

        assert run_app(dep, app()) == b"NEWVALUE"

    def test_all_reads_pause_even_disjoint_ones(self):
        """Unlike Spot, P4 pauses every read while a write fetches."""
        dep = deploy_cowbird(engine="p4")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            wid = yield from inst.async_write(thread, 0, 0, b"w" * 1024)
            rid = yield from inst.async_read(thread, 0, 8192, 64)  # disjoint
            inst.poll_add(poll, wid)
            inst.poll_add(poll, rid)
            done = 0
            while done < 2:
                events = yield from inst.poll_wait(thread, poll, max_ret=2)
                done += len(events)

        run_app(dep, app())
        assert dep.engine.stats.reads_paused >= 0  # counted when batched together

    def test_per_type_fifo_completion_order(self):
        dep = deploy_cowbird(engine="p4")
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()
        order = []

        def app():
            poll = inst.poll_create()
            rids = []
            for i in range(5):
                rid = yield from inst.async_read(thread, 0, i * 64, 64)
                inst.poll_add(poll, rid)
                rids.append(rid)
            done = 0
            while done < 5:
                events = yield from inst.poll_wait(thread, poll, max_ret=8)
                order.extend(e.request_id for e in events)
                done += len(events)
            return rids

        rids = run_app(dep, app())
        assert order == rids


class TestFaultTolerance:
    def test_recovers_from_random_loss(self):
        injector = FaultInjector(seed=5, drop_rate=0.02)
        dep = deploy_cowbird(
            engine="p4", fault_injector=injector,
            p4_config=P4EngineConfig(timeout_ns=100_000),
        )
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()
        pool_region = dep.pool_region()
        for i in range(20):
            pool_region.write(dep.region.translate(i * 64), bytes([i + 1]) * 64)

        def app():
            poll = inst.poll_create()
            rids = []
            for i in range(20):
                rid = yield from inst.async_read(thread, 0, i * 64, 64)
                inst.poll_add(poll, rid)
                rids.append(rid)
            done = 0
            while done < 20:
                events = yield from inst.poll_wait(thread, poll, max_ret=32)
                done += len(events)
            return [inst.fetch_response(rid) for rid in rids]

        results = run_app(dep, app(), deadline=5_000_000_000)
        assert results == [bytes([i + 1]) * 64 for i in range(20)]

    def test_go_back_n_counted_under_loss(self):
        injector = FaultInjector(seed=9, drop_rate=0.1)
        dep = deploy_cowbird(
            engine="p4", fault_injector=injector,
            p4_config=P4EngineConfig(timeout_ns=50_000),
        )
        roundtrip(dep)
        assert dep.engine.stats.go_back_n_events >= 1

    def test_write_recovery_preserves_data(self):
        injector = FaultInjector(seed=13, drop_rate=0.05)
        dep = deploy_cowbird(
            engine="p4", fault_injector=injector,
            p4_config=P4EngineConfig(timeout_ns=100_000),
        )
        inst = dep.instances[0]
        thread = dep.compute.cpu.thread()

        def app():
            poll = inst.poll_create()
            ids = []
            for i in range(10):
                wid = yield from inst.async_write(thread, 0, i * 64, bytes([i]) * 64)
                inst.poll_add(poll, wid)
                ids.append(wid)
            done = 0
            while done < 10:
                events = yield from inst.poll_wait(thread, poll, max_ret=16)
                done += len(events)

        run_app(dep, app(), deadline=5_000_000_000)
        pool_region = dep.pool_region()
        for i in range(10):
            assert pool_region.read(dep.region.translate(i * 64), 64) == bytes([i]) * 64


class TestMultiInstanceTdm:
    def test_probes_round_robin_across_instances(self):
        dep = deploy_cowbird(engine="p4", num_instances=3)
        dep.sim.run(until=100_000)
        # All three instances' probe channels saw traffic.
        for state in dep.engine._instances:
            assert state.probe_channel.send_psn > 0

    def test_instances_do_not_interfere(self):
        dep = deploy_cowbird(engine="p4", num_instances=2)
        dep.pool_region().write(dep.region.translate(0), b"XXXX")
        dep.pool_region().write(dep.region.translate(64), b"YYYY")
        results = {}
        threads = [dep.compute.cpu.thread() for _ in range(2)]

        def app(index, inst, thread, offset):
            poll = inst.poll_create()
            rid = yield from inst.async_read(thread, 0, offset, 4)
            inst.poll_add(poll, rid)
            events = yield from inst.poll_wait(thread, poll)
            results[index] = inst.fetch_response(events[0].request_id)

        sim = dep.sim
        p1 = sim.spawn(app(0, dep.instances[0], threads[0], 0))
        p2 = sim.spawn(app(1, dep.instances[1], threads[1], 64))
        sim.run_until_complete(p1, deadline=500_000_000)
        sim.run_until_complete(p2, deadline=500_000_000)
        assert results == {0: b"XXXX", 1: b"YYYY"}


class TestTable5Resources:
    def test_matches_paper_row(self):
        resources = estimate_pipeline_resources()
        assert resources.phv_bits == 1085
        assert resources.sram_kb == 1424
        assert resources.tcam_kb == pytest.approx(1.28)
        assert resources.stages == 12
        assert resources.vliw_instructions == 38
        assert resources.stateful_alus == 11

    def test_fits_tofino(self):
        assert estimate_pipeline_resources().fits_tofino()

    def test_without_l3_forwarding_is_smaller(self):
        bare = estimate_pipeline_resources(
            cowbird_pipeline_units(l3_forwarding=False)
        )
        full = estimate_pipeline_resources()
        assert bare.sram_kb < full.sram_kb
        assert bare.stages <= full.stages
