"""Unit tests for the network substrate (repro.sim.network, sim.tcp)."""

from dataclasses import dataclass

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import (
    DuplexLink,
    FaultInjector,
    Link,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    Switch,
)
from repro.sim.tcp import TcpAckDemux, TcpFlow, TcpSink
from repro.sim.units import transmission_time_ns


@dataclass
class FakePacket:
    src: str = "a"
    dst: str = "b"
    size_bytes: int = 1000
    priority: int = PRIORITY_NORMAL
    label: str = ""


class Collector:
    """Endpoint that records (time, packet) arrivals."""

    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, packet, link):
        self.arrivals.append((self.sim.now, packet))


class TestUnits:
    def test_transmission_time_100gbps(self):
        # 1250 bytes = 10000 bits at 100 Gb/s -> 100 ns
        assert transmission_time_ns(1250, 100) == pytest.approx(100.0)

    def test_transmission_time_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            transmission_time_ns(100, 0)


class TestLink:
    def test_delivery_includes_serialization_and_propagation(self):
        sim = Simulator()
        sink = Collector(sim)
        link = Link(sim, "l", sink, bandwidth_gbps=100, propagation_delay_ns=500)
        link.send(FakePacket(size_bytes=1250))
        sim.run()
        assert len(sink.arrivals) == 1
        assert sink.arrivals[0][0] == pytest.approx(600.0)  # 100 + 500

    def test_back_to_back_packets_serialize(self):
        sim = Simulator()
        sink = Collector(sim)
        link = Link(sim, "l", sink, bandwidth_gbps=100, propagation_delay_ns=0)
        for _ in range(3):
            link.send(FakePacket(size_bytes=1250))
        sim.run()
        times = [t for t, _ in sink.arrivals]
        assert times == pytest.approx([100.0, 200.0, 300.0])

    def test_strict_priority_preempts_queue_order(self):
        """A high-priority packet enqueued behind low-priority packets is
        transmitted as soon as the in-flight serialization finishes."""
        sim = Simulator()
        sink = Collector(sim)
        link = Link(sim, "l", sink, bandwidth_gbps=100, propagation_delay_ns=0)
        link.send(FakePacket(size_bytes=1250, priority=PRIORITY_LOW, label="low1"))
        link.send(FakePacket(size_bytes=1250, priority=PRIORITY_LOW, label="low2"))
        link.send(FakePacket(size_bytes=1250, priority=PRIORITY_HIGH, label="high"))
        sim.run()
        labels = [p.label for _, p in sink.arrivals]
        assert labels == ["low1", "high", "low2"]

    def test_low_priority_only_uses_idle_cycles(self):
        """With a saturating high-priority stream, low-priority traffic
        starves — the property the probe-priority design relies on."""
        sim = Simulator()
        sink = Collector(sim)
        link = Link(sim, "l", sink, bandwidth_gbps=100, propagation_delay_ns=0)
        for _ in range(10):
            link.send(FakePacket(size_bytes=1250, priority=PRIORITY_HIGH, label="hi"))
        link.send(FakePacket(size_bytes=125, priority=PRIORITY_LOW, label="probe"))
        sim.run()
        labels = [p.label for _, p in sink.arrivals]
        assert labels.index("probe") == len(labels) - 1

    def test_stats_track_bytes_by_priority(self):
        sim = Simulator()
        sink = Collector(sim)
        link = Link(sim, "l", sink)
        link.send(FakePacket(size_bytes=100, priority=PRIORITY_HIGH))
        link.send(FakePacket(size_bytes=200, priority=PRIORITY_LOW))
        sim.run()
        assert link.stats.bytes_by_priority[PRIORITY_HIGH] == 100
        assert link.stats.bytes_by_priority[PRIORITY_LOW] == 200
        assert link.stats.packets_sent == 2

    def test_utilization_fraction(self):
        sim = Simulator()
        sink = Collector(sim)
        link = Link(sim, "l", sink, bandwidth_gbps=100, propagation_delay_ns=0)
        link.send(FakePacket(size_bytes=1250))  # 100 ns busy
        sim.run(until=1000)
        assert link.stats.utilization(1000) == pytest.approx(0.1)

    def test_invalid_link_configs_rejected(self):
        sim = Simulator()
        sink = Collector(sim)
        with pytest.raises(ValueError):
            Link(sim, "l", sink, bandwidth_gbps=0)
        with pytest.raises(ValueError):
            Link(sim, "l", sink, num_priorities=0)


class TestFaultInjection:
    def test_no_faults_by_default(self):
        injector = FaultInjector(seed=1)
        assert not any(injector.should_drop(FakePacket()) for _ in range(100))

    def test_drop_rate_one_drops_everything(self):
        injector = FaultInjector(seed=1, drop_rate=1.0)
        assert all(injector.should_drop(FakePacket()) for _ in range(10))
        assert injector.dropped == 10

    def test_drop_exactly_targets_specific_ordinals(self):
        injector = FaultInjector(seed=1, drop_exactly=[2])
        results = [injector.should_drop(FakePacket()) for _ in range(4)]
        assert results == [False, True, False, False]

    def test_deterministic_across_instances(self):
        a = FaultInjector(seed=7, drop_rate=0.3)
        b = FaultInjector(seed=7, drop_rate=0.3)
        seq_a = [a.should_drop(FakePacket()) for _ in range(50)]
        seq_b = [b.should_drop(FakePacket()) for _ in range(50)]
        assert seq_a == seq_b

    def test_dropped_packet_never_delivered(self):
        sim = Simulator()
        sink = Collector(sim)
        link = Link(
            sim, "l", sink, fault_injector=FaultInjector(seed=1, drop_rate=1.0)
        )
        link.send(FakePacket())
        sim.run()
        assert sink.arrivals == []
        assert link.stats.packets_dropped == 1

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(corrupt_rate=-0.1)


class TestSwitch:
    def build(self, sim):
        switch = Switch(sim, forward_delay_ns=100)
        sink_a = Collector(sim)
        sink_b = Collector(sim)
        link_a = Link(sim, "to-a", sink_a, propagation_delay_ns=0)
        link_b = Link(sim, "to-b", sink_b, propagation_delay_ns=0)
        switch.attach("a", link_a)
        switch.attach("b", link_b)
        return switch, sink_a, sink_b

    def test_forwards_by_destination(self):
        sim = Simulator()
        switch, sink_a, sink_b = self.build(sim)
        switch.receive(FakePacket(dst="b"), None)
        switch.receive(FakePacket(dst="a"), None)
        sim.run()
        assert len(sink_a.arrivals) == 1
        assert len(sink_b.arrivals) == 1
        assert switch.packets_forwarded == 2

    def test_unroutable_counted_not_crashed(self):
        sim = Simulator()
        switch, _, _ = self.build(sim)
        switch.receive(FakePacket(dst="nowhere"), None)
        sim.run()
        assert switch.packets_unroutable == 1

    def test_duplicate_attach_rejected(self):
        sim = Simulator()
        switch, _, _ = self.build(sim)
        with pytest.raises(ValueError):
            switch.attach("a", Link(sim, "dup", Collector(sim)))

    def test_pipeline_can_consume(self):
        sim = Simulator()
        switch, sink_a, sink_b = self.build(sim)
        switch.pipeline = lambda packet, link: []
        switch.receive(FakePacket(dst="b"), None)
        sim.run()
        assert sink_b.arrivals == []
        assert switch.packets_consumed == 1

    def test_pipeline_can_rewrite_destination(self):
        sim = Simulator()
        switch, sink_a, sink_b = self.build(sim)

        def redirect(packet, link):
            packet.dst = "a"
            return [packet]

        switch.pipeline = redirect
        switch.receive(FakePacket(dst="b"), None)
        sim.run()
        assert len(sink_a.arrivals) == 1
        assert sink_b.arrivals == []

    def test_pipeline_can_multiply_packets(self):
        sim = Simulator()
        switch, sink_a, sink_b = self.build(sim)
        switch.pipeline = lambda packet, link: [
            FakePacket(dst="a"),
            FakePacket(dst="b"),
        ]
        switch.receive(FakePacket(dst="b"), None)
        sim.run()
        assert len(sink_a.arrivals) == 1
        assert len(sink_b.arrivals) == 1

    def test_inject_generates_without_ingress(self):
        sim = Simulator()
        switch, sink_a, _ = self.build(sim)
        switch.inject(FakePacket(dst="a"))
        sim.run()
        assert len(sink_a.arrivals) == 1
        assert switch.packets_generated == 1

    def test_forward_delay_applied(self):
        sim = Simulator()
        switch, sink_a, _ = self.build(sim)
        switch.receive(FakePacket(dst="a", size_bytes=1250), None)
        sim.run()
        # 100 ns forward delay + 100 ns serialization at 100 Gb/s
        assert sink_a.arrivals[0][0] == pytest.approx(200.0)


class TestDuplexLink:
    def test_both_directions_work(self):
        sim = Simulator()
        sink_a, sink_b = Collector(sim), Collector(sim)
        duplex = DuplexLink(sim, "d", sink_a, sink_b, propagation_delay_ns=0)
        duplex.a_to_b.send(FakePacket(dst="b"))
        duplex.b_to_a.send(FakePacket(dst="a"))
        sim.run()
        assert len(sink_a.arrivals) == 1
        assert len(sink_b.arrivals) == 1


class TestTcpFlow:
    def build_path(self, sim, bandwidth_gbps=25.0):
        """sender --link--> sink, with an ack path back."""
        demux = TcpAckDemux()
        sink = TcpSink(sim, "sink")
        data_link = Link(sim, "data", sink, bandwidth_gbps=bandwidth_gbps,
                         propagation_delay_ns=1000)
        ack_link = Link(sim, "ack", demux, bandwidth_gbps=bandwidth_gbps,
                        propagation_delay_ns=1000)
        sink.ack_link = ack_link
        return demux, sink, data_link

    def test_flow_saturates_idle_link(self):
        sim = Simulator()
        demux, sink, data_link = self.build_path(sim, bandwidth_gbps=25.0)
        flow = TcpFlow(sim, "sender", "sink", data_link, window=64)
        demux.register_flow(flow)
        sink.register_flow(flow)
        flow.start()
        sim.run(until=1_000_000)  # 1 ms
        flow.stop()
        achieved = flow.achieved_gbps(sim.now)
        assert achieved > 0.9 * 25.0

    def test_window_limits_inflight(self):
        sim = Simulator()
        demux, sink, data_link = self.build_path(sim)
        flow = TcpFlow(sim, "sender", "sink", data_link, window=4)
        demux.register_flow(flow)
        sink.register_flow(flow)
        flow.start()
        assert flow._in_flight == 4

    def test_two_flows_share_fairly(self):
        sim = Simulator()
        demux, sink, data_link = self.build_path(sim, bandwidth_gbps=25.0)
        flows = [
            TcpFlow(sim, "sender", "sink", data_link, window=32) for _ in range(2)
        ]
        for flow in flows:
            demux.register_flow(flow)
            sink.register_flow(flow)
            flow.start()
        sim.run(until=1_000_000)
        rates = [flow.achieved_gbps(sim.now) for flow in flows]
        assert sum(rates) > 0.9 * 25.0
        assert abs(rates[0] - rates[1]) < 0.2 * max(rates)

    def test_high_priority_contender_steals_bandwidth(self):
        sim = Simulator()
        demux, sink, data_link = self.build_path(sim, bandwidth_gbps=25.0)
        tcp = TcpFlow(sim, "sender", "sink", data_link, window=32,
                      priority=PRIORITY_NORMAL)
        rdma_like = TcpFlow(sim, "sender", "sink", data_link, window=32,
                            priority=PRIORITY_HIGH)
        for flow in (tcp, rdma_like):
            demux.register_flow(flow)
            sink.register_flow(flow)
            flow.start()
        sim.run(until=1_000_000)
        assert rdma_like.achieved_gbps(sim.now) > tcp.achieved_gbps(sim.now)

    def test_invalid_window_rejected(self):
        sim = Simulator()
        demux, sink, data_link = self.build_path(sim)
        with pytest.raises(ValueError):
            TcpFlow(sim, "s", "d", data_link, window=0)
