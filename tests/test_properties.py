"""Property-based tests (hypothesis) for core invariants."""

from hypothesis import given, settings, strategies as st

from repro.cowbird.buffers import DataRing, RingFullError, skip_pad
from repro.cowbird.wire import (
    GreenBlock,
    RedBlock,
    RequestMetadata,
    RwType,
    decode_request_id,
    encode_request_id,
)
from repro.faster.hybridlog import HybridLog, HybridLogConfig
from repro.memory.region import MemoryRegion
from repro.rdma.packets import (
    AddressBook,
    Aeth,
    Bth,
    Opcode,
    PSN_MODULUS,
    Reth,
    RocePacket,
    psn_add,
    psn_distance,
)
from repro.sim.trace import percentile
from repro.workloads.ycsb import ZipfianGenerator


psn = st.integers(min_value=0, max_value=PSN_MODULUS - 1)


class TestPsnProperties:
    @given(psn, st.integers(min_value=0, max_value=1 << 30))
    def test_add_stays_in_range(self, start, delta):
        assert 0 <= psn_add(start, delta) < PSN_MODULUS

    @given(psn, st.integers(min_value=0, max_value=PSN_MODULUS - 1))
    def test_distance_inverts_add(self, start, delta):
        assert psn_distance(start, psn_add(start, delta)) == delta

    @given(psn, psn)
    def test_distance_antisymmetry(self, a, b):
        if a != b:
            assert psn_distance(a, b) + psn_distance(b, a) == PSN_MODULUS
        else:
            assert psn_distance(a, b) == 0


class TestWireFormatProperties:
    @given(
        opcode=st.sampled_from(list(Opcode)),
        dest_qp=st.integers(min_value=0, max_value=(1 << 24) - 1),
        seq=psn,
        ack=st.booleans(),
        solicited=st.booleans(),
    )
    def test_bth_round_trip(self, opcode, dest_qp, seq, ack, solicited):
        bth = Bth(opcode=opcode, dest_qp=dest_qp, psn=seq, ack_request=ack,
                  solicited=solicited)
        assert Bth.unpack(bth.pack()) == bth

    @given(
        vaddr=st.integers(min_value=0, max_value=(1 << 64) - 1),
        rkey=st.integers(min_value=0, max_value=(1 << 32) - 1),
        length=st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    def test_reth_round_trip(self, vaddr, rkey, length):
        reth = Reth(virtual_address=vaddr, remote_key=rkey, dma_length=length)
        assert Reth.unpack(reth.pack()) == reth

    @given(
        syndrome=st.integers(min_value=0, max_value=255),
        msn=st.integers(min_value=0, max_value=(1 << 24) - 1),
    )
    def test_aeth_round_trip(self, syndrome, msn):
        aeth = Aeth(syndrome=syndrome, msn=msn)
        assert Aeth.unpack(aeth.pack()) == aeth

    @settings(max_examples=50)
    @given(
        payload=st.binary(min_size=0, max_size=1024),
        seq=psn,
        qp=st.integers(min_value=0, max_value=(1 << 24) - 1),
    )
    def test_full_packet_round_trip(self, payload, seq, qp):
        book = AddressBook()
        packet = RocePacket(
            src="alpha", dst="beta",
            bth=Bth(opcode=Opcode.RC_RDMA_READ_RESPONSE_ONLY, dest_qp=qp, psn=seq),
            aeth=Aeth(syndrome=0x1F, msn=0),
            payload=payload,
        )
        restored = RocePacket.unpack(packet.pack(book), book)
        assert restored.payload == payload
        assert restored.bth == packet.bth
        assert restored.size_bytes == packet.size_bytes


class TestCowbirdWireProperties:
    @given(
        rw=st.sampled_from([RwType.READ, RwType.WRITE]),
        req=st.integers(min_value=0, max_value=(1 << 64) - 1),
        resp=st.integers(min_value=0, max_value=(1 << 64) - 1),
        length=st.integers(min_value=0, max_value=(1 << 32) - 1),
        region=st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_metadata_round_trip(self, rw, req, resp, length, region):
        entry = RequestMetadata(rw_type=rw, req_addr=req, resp_addr=resp,
                                length=length, region_id=region)
        assert RequestMetadata.unpack(entry.pack()) == entry

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_green_round_trip(self, a, b):
        green = GreenBlock(request_meta_tail=a, request_data_tail=b)
        assert GreenBlock.unpack(green.pack()) == green

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                    min_size=5, max_size=5))
    def test_red_round_trip(self, fields):
        red = RedBlock(*fields)
        assert RedBlock.unpack(red.pack()) == red

    @given(
        rw=st.sampled_from([RwType.READ, RwType.WRITE]),
        region=st.integers(min_value=0, max_value=0xFFFF),
        seq=st.integers(min_value=1, max_value=(1 << 32) - 1),
    )
    def test_request_id_round_trip(self, rw, region, seq):
        assert decode_request_id(encode_request_id(rw, region, seq)) == (
            rw, region, seq,
        )


class TestRingProperties:
    @given(
        tail=st.integers(min_value=0, max_value=1 << 20),
        length=st.integers(min_value=1, max_value=512),
        capacity=st.sampled_from([512, 1024, 4096]),
    )
    def test_skip_pad_prevents_wrap(self, tail, length, capacity):
        if length > capacity:
            return
        pad = skip_pad(tail, length, capacity)
        start = (tail + pad) % capacity
        assert start + length <= capacity
        assert 0 <= pad < capacity

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=1, max_value=256), min_size=1,
                    max_size=60))
    def test_reserve_mirror_agreement(self, lengths):
        """The engine's cursor replay always matches the client layout."""
        region = MemoryRegion(base_addr=0, length=1 << 16, lkey=1, rkey=2)
        ring = DataRing(region, 0, 1024)
        cursor = 0
        for length in lengths:
            ring.advance_head(ring.tail)  # consume everything
            addr = ring.reserve(length)
            mirror_addr, cursor = ring.mirror_reserve(cursor, length)
            assert mirror_addr == addr
            assert cursor == ring.tail

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=1, max_value=200), min_size=1,
                    max_size=30))
    def test_allocations_never_overlap_live_data(self, lengths):
        """Until the consumer frees anything, every accepted allocation
        must occupy distinct bytes."""
        region = MemoryRegion(base_addr=0, length=1 << 16, lkey=1, rkey=2)
        ring = DataRing(region, 0, 2048)
        live: list[tuple[int, int]] = []
        for length in lengths:
            try:
                addr = ring.reserve(length)
            except RingFullError:
                continue  # backpressure is allowed; overlap is not
            for other_addr, other_len in live:
                assert addr + length <= other_addr or other_addr + other_len <= addr
            live.append((addr, length))


class TestHybridLogProperties:
    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=1, max_value=512), min_size=1,
                    max_size=80))
    def test_allocations_disjoint_and_within_pages(self, sizes):
        log = HybridLog(HybridLogConfig(page_bits=10, memory_pages=1 << 20))
        spans = []
        for size in sizes:
            addr = log.allocate(size)
            # never spans a page
            assert (addr & 1023) + size <= 1024
            for other, other_size in spans:
                assert addr + size <= other or other + other_size <= addr
            spans.append((addr, size))

    @settings(max_examples=30)
    @given(st.integers(min_value=3, max_value=30))
    def test_eviction_preserves_address_ordering(self, pages_to_fill):
        log = HybridLog(HybridLogConfig(page_bits=10, memory_pages=2))
        for _ in range(pages_to_fill * 2):
            log.allocate(512)
        while log.pages_over_budget() > 0:
            eviction = log.begin_evict()
            if eviction is None:
                break
            log.finish_evict(eviction[0])
        assert log.head_addr <= log.tail_addr
        # Everything below head is stable; above (resident) is readable.
        assert log.region_of(log.head_addr) in ("read-only", "mutable")


class TestStatisticsProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=200))
    def test_percentile_ordering(self, samples):
        p50 = percentile(samples, 0.5)
        p99 = percentile(samples, 0.99)
        assert min(samples) <= p50 <= p99 <= max(samples)

    @given(st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False),
                    min_size=1, max_size=100),
           st.floats(min_value=0, max_value=1))
    def test_percentile_membership(self, samples, fraction):
        assert percentile(samples, fraction) in samples


class TestZipfianProperties:
    @settings(max_examples=25)
    @given(
        n=st.integers(min_value=2, max_value=5000),
        theta=st.floats(min_value=0.1, max_value=0.99),
        seed=st.integers(min_value=0, max_value=1 << 30),
    )
    def test_outputs_in_range(self, n, theta, seed):
        gen = ZipfianGenerator(n, theta=theta, seed=seed)
        for _ in range(50):
            assert 0 <= gen.next() < n


class TestMemoryRegionProperties:
    @settings(max_examples=40)
    @given(
        offset=st.integers(min_value=0, max_value=4000),
        data=st.binary(min_size=1, max_size=96),
    )
    def test_write_read_round_trip(self, offset, data):
        region = MemoryRegion(base_addr=0x1000, length=4096, lkey=1, rkey=2)
        if offset + len(data) > 4096:
            return
        region.write(0x1000 + offset, data)
        assert region.read(0x1000 + offset, len(data)) == data

    @settings(max_examples=40)
    @given(
        first=st.binary(min_size=1, max_size=64),
        second=st.binary(min_size=1, max_size=64),
    )
    def test_disjoint_writes_do_not_interfere(self, first, second):
        region = MemoryRegion(base_addr=0, length=1024, lkey=1, rkey=2)
        region.write(0, first)
        region.write(512, second)
        assert region.read(0, len(first)) == first
        assert region.read(512, len(second)) == second
