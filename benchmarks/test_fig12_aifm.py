"""Benchmark: regenerate Figure 12 (8 B uniform reads: Cowbird vs AIFM)."""

from repro.experiments import fig12


def test_fig12_aifm(once):
    results = once(fig12.run, ops_per_thread=300)
    print()
    print(fig12.format_results(results))
    # Paper: Cowbird achieves an order of magnitude (up to 71x) higher
    # throughput across thread counts.
    speedup = fig12.max_speedup(results)
    assert speedup >= 20
    threads = sorted({r.threads for r in results})
    for t in threads:
        cowbird = next(
            r for r in results if r.system == "cowbird" and r.threads == t
        )
        aifm = next(r for r in results if r.system == "aifm" and r.threads == t)
        assert cowbird.throughput_mops > 8 * aifm.throughput_mops
    # AIFM's IOKernel is a global serialization point: aggregate
    # throughput saturates instead of scaling with threads.
    aifm_by_threads = {
        r.threads: r.throughput_mops for r in results if r.system == "aifm"
    }
    assert aifm_by_threads[16] < 4 * aifm_by_threads[1]
