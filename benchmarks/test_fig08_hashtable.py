"""Benchmark: regenerate Figure 8 (hash-table MOPS, 4 panels x 6 systems)."""

from repro.experiments import fig08


def get(cells, record_bytes, system, threads):
    return next(
        c for c in cells
        if c.record_bytes == record_bytes and c.system == system
        and c.threads == threads
    )


def test_fig08_hashtable(once):
    cells = once(
        fig08.run,
        record_sizes=(8, 64, 256, 512),
        thread_counts=(1, 4, 16),
        ops_per_thread=300,
    )
    print()
    print(fig08.format_cells(cells))
    for size in (8, 64, 256, 512):
        for threads in (1, 4, 16):
            sync2 = get(cells, size, "two-sided", threads).throughput_mops
            sync1 = get(cells, size, "one-sided", threads).throughput_mops
            async_ = get(cells, size, "async", threads).throughput_mops
            nobatch = get(cells, size, "cowbird-nb", threads).throughput_mops
            cowbird = get(cells, size, "cowbird", threads).throughput_mops
            local = get(cells, size, "local", threads).throughput_mops
            # Paper ordering: two-sided <= one-sided < async < cowbird <= local.
            assert sync2 <= sync1 * 1.2
            assert sync1 < async_
            assert cowbird > async_
            assert cowbird <= local * 1.05
        # Asynchrony is an order of magnitude more efficient (paper
        # Section 8.1 point 1).  The gap is widest at low thread counts;
        # at 16 threads sync's embarrassing parallelism compresses it.
        assert (
            get(cells, size, "async", 1).throughput_mops
            > 4 * get(cells, size, "one-sided", 1).throughput_mops
        )
        assert (
            get(cells, size, "async", 16).throughput_mops
            > 2 * get(cells, size, "one-sided", 16).throughput_mops
        )
    # Batching win over async RDMA grows with thread count; at 16
    # threads it approaches the paper's "up to 3.5x faster than RDMA".
    win = (
        get(cells, 64, "cowbird", 16).throughput_mops
        / get(cells, 64, "async", 16).throughput_mops
    )
    assert win > 2.0
    # Bandwidth ceiling binds large records at 16 threads: throughput
    # stays below the wire-rate line, and within reach of it.
    for size in (256, 512):
        ceiling = fig08.bandwidth_ceiling_mops(size)
        top = get(cells, size, "cowbird", 16).throughput_mops
        assert top <= ceiling * 1.05
        assert top > 0.5 * ceiling
