"""Benchmark: regenerate Figure 2 (per-read compute-side CPU time)."""

import pytest

from repro.experiments import fig02


def test_fig02_cpu_breakdown(once):
    breakdown = once(fig02.run)
    print()
    print(fig02.format_breakdown(breakdown))
    # Paper: RDMA post+poll ~600-700 ns of compute-side CPU.
    assert 550 <= breakdown.rdma_total_ns <= 720
    # Cowbird is an order of magnitude cheaper (a few local stores).
    assert breakdown.speedup >= 10
    # The simulated verbs layer charges exactly the modelled breakdown.
    assert breakdown.rdma_measured_ns == pytest.approx(
        breakdown.rdma_total_ns, rel=0.05
    )
    # Measured Cowbird cost stays within tens of nanoseconds.
    assert breakdown.cowbird_measured_ns < 100
