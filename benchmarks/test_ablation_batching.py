"""Ablation: the offload engine's response BATCH_SIZE (Section 6).

Sweeps BATCH_SIZE over {1, 8, 32, 100} and measures (a) application
throughput, (b) RDMA messages hitting the compute node, and (c) mean
read latency.  The design claim under test: batching raises throughput
and cuts compute-RNIC load at a bounded latency cost.
"""

from repro.cowbird.deploy import deploy_cowbird
from repro.cowbird.spot_engine import SpotEngineConfig

BATCH_SIZES = (1, 8, 32, 100)
OPS = 600


def run_batch_size(batch_size):
    dep = deploy_cowbird(
        engine="spot", remote_bytes=1 << 20,
        spot_config=SpotEngineConfig(batch_size=batch_size),
    )
    inst = dep.instances[0]
    thread = dep.compute.cpu.thread()
    sim = dep.sim
    latencies = []

    def app():
        poll = inst.poll_create()
        issue_times = {}
        inflight = 0
        issued = 0
        while issued < OPS:
            rid = yield from inst.async_read(thread, 0, (issued % 512) * 64, 64)
            inst.poll_add(poll, rid)
            issue_times[rid] = sim.now
            issued += 1
            inflight += 1
            events = yield from inst.poll_wait(
                thread, poll, max_ret=256,
                timeout=None if inflight >= 256 else 0,
            )
            for event in events:
                latencies.append(sim.now - issue_times.pop(event.request_id))
                inst.fetch_response(event.request_id)
            inflight -= len(events)
        while inflight > 0:
            events = yield from inst.poll_wait(thread, poll, max_ret=256)
            for event in events:
                latencies.append(sim.now - issue_times.pop(event.request_id))
                inst.fetch_response(event.request_id)
            inflight -= len(events)

    start = sim.now
    sim.run_until_complete(sim.spawn(app()), deadline=120e9)
    elapsed = sim.now - start
    return {
        "batch_size": batch_size,
        "mops": OPS / elapsed * 1000.0,
        "compute_packets_in": dep.compute.nic.stats.packets_in,
        "mean_batch": dep.engine.stats.mean_batch_size(),
        "mean_latency_us": sum(latencies) / len(latencies) / 1000.0,
    }


def test_ablation_batch_size(once):
    rows = once(lambda: [run_batch_size(b) for b in BATCH_SIZES])
    print()
    print("Ablation: BATCH_SIZE sweep (single instance, 64 B reads)")
    print(f"{'batch':>6s}{'MOPS':>8s}{'pkts@compute':>14s}{'latency us':>12s}")
    for row in rows:
        print(f"{row['batch_size']:>6d}{row['mops']:>8.2f}"
              f"{row['compute_packets_in']:>14d}{row['mean_latency_us']:>12.1f}")
    by_batch = {row["batch_size"]: row for row in rows}
    # Batching cuts messages into the compute node dramatically...
    assert by_batch[100]["compute_packets_in"] < 0.5 * by_batch[1]["compute_packets_in"]
    # ...and throughput does not regress.
    assert by_batch[100]["mops"] >= 0.9 * by_batch[1]["mops"]
    # The latency cost of batching stays bounded (well under one RTT
    # per batched element).
    assert by_batch[100]["mean_latency_us"] < by_batch[1]["mean_latency_us"] + 40
