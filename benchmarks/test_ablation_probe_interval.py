"""Ablation: probe interval vs completion latency and probe overhead.

Section 5.2: the probe rate trades "extra probe memory accesses with
worst-case completion latency while maintaining high throughput".  We
sweep the interval over {1, 2, 8, 32} us on an intermittent workload and
measure per-request latency and probe packet counts; we also check the
adaptive ramp-up mode against the fixed fastest rate.
"""

from repro.cowbird.deploy import deploy_cowbird
from repro.cowbird.p4_engine import P4EngineConfig

INTERVALS_US = (1, 2, 8, 32)
BURSTS = 10


def run_interval(interval_us, adaptive=False):
    dep = deploy_cowbird(
        engine="p4", remote_bytes=1 << 20,
        p4_config=P4EngineConfig(
            probe_interval_ns=interval_us * 1000.0,
            adaptive_probing=adaptive,
        ),
    )
    inst = dep.instances[0]
    thread = dep.compute.cpu.thread()
    sim = dep.sim
    latencies = []

    def app():
        poll = inst.poll_create()
        # Intermittent traffic: one read, then silence — the worst case
        # for slow probing (every request eats a full probe delay).
        for i in range(BURSTS):
            start = sim.now
            rid = yield from inst.async_read(thread, 0, i * 64, 64)
            inst.poll_add(poll, rid)
            events = yield from inst.poll_wait(thread, poll, max_ret=1)
            while not events:
                events = yield from inst.poll_wait(thread, poll, max_ret=1)
            latencies.append(sim.now - start)
            inst.fetch_response(rid)
            yield from thread.sleep(100_000)  # idle gap

    sim.run_until_complete(sim.spawn(app()), deadline=120e9)
    return {
        "interval_us": interval_us,
        "adaptive": adaptive,
        "mean_latency_us": sum(latencies) / len(latencies) / 1000.0,
        "probes": dep.engine.stats.probes_sent,
    }


def test_ablation_probe_interval(once):
    def sweep():
        rows = [run_interval(us) for us in INTERVALS_US]
        rows.append(run_interval(2, adaptive=True))
        return rows

    rows = once(sweep)
    print()
    print("Ablation: probe interval (intermittent single reads)")
    print(f"{'interval':>9s}{'adaptive':>9s}{'latency us':>12s}{'probes':>8s}")
    for row in rows:
        print(f"{row['interval_us']:>8d}u{str(row['adaptive']):>9s}"
              f"{row['mean_latency_us']:>12.1f}{row['probes']:>8d}")
    fixed = {row["interval_us"]: row for row in rows if not row["adaptive"]}
    # Slower probing costs completion latency...
    assert fixed[32]["mean_latency_us"] > fixed[1]["mean_latency_us"] + 5
    # ...but saves probe bandwidth roughly proportionally.
    assert fixed[32]["probes"] < fixed[1]["probes"] / 4
    # Adaptive probing sits between: near-fast latency on activity,
    # far fewer probes during the idle gaps.
    adaptive = next(row for row in rows if row["adaptive"])
    assert adaptive["probes"] < fixed[2]["probes"] * 0.7
    assert adaptive["mean_latency_us"] < fixed[32]["mean_latency_us"] * 1.5
