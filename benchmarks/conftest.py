"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures at a
scaled-down operation count and prints the same rows/series the paper
reports.  Absolute numbers belong to the authors' hardware; the
assertions check the *shape* — who wins, by roughly what factor, where
crossovers fall (see EXPERIMENTS.md).

Benchmarks execute their experiment exactly once (``pedantic`` with one
round): the experiment itself is a deterministic simulation, so
repeating it adds wall-clock time without adding information.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def _once(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _once
