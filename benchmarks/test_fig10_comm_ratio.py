"""Benchmark: regenerate Figure 10 (communication ratio of FASTER)."""

from repro.experiments import fig10


def get(results, value_bytes, system, threads):
    return next(
        r for r in results
        if r.value_bytes == value_bytes and r.system == system
        and r.threads == threads
    )


def test_fig10_comm_ratio(once):
    results = once(
        fig10.run,
        thread_counts=(1, 4, 16),
        record_count=12_000,
        ops_per_thread=250,
    )
    print()
    print(fig10.format_results(results))
    for value_bytes in (64, 512):
        for threads in (1, 4, 16):
            sync = get(results, value_bytes, "one-sided", threads)
            async_ = get(results, value_bytes, "async", threads)
            cowbird = get(results, value_bytes, "cowbird", threads)
            # Paper: sync RDMA spends most of FASTER's time in the
            # communication library (>80% on their heavier sync path;
            # our single-round-trip sync device lands near 2/3).
            assert sync.communication_ratio > 0.55
            # Async pays per-op verbs but overlaps the waiting.
            assert 0.1 < async_.communication_ratio < sync.communication_ratio
            # Cowbird stays under the paper's 20% line.
            assert cowbird.communication_ratio < 0.2
            assert cowbird.communication_ratio < async_.communication_ratio
