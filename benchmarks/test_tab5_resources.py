"""Benchmark: regenerate Table 5 (Tofino data-plane resource usage)."""


from repro.experiments import tab05


def test_tab5_resources(once):
    result = once(tab05.run)
    print()
    print("Table 5: Cowbird-P4 data-plane resources (32-port L3 Tofino)")
    for key, value in result["estimated"].items():
        print(f"  {key:<20s} {value}")
    # The pipeline model reproduces the paper's row exactly.
    assert result["estimated"] == result["paper"]
    assert result["fits_tofino"]
    # Without the baseline L3 program the footprint shrinks, leaving
    # room for concurrent instances (Section 8.4's point).
    assert result["cowbird_only"]["sram_kb"] < result["estimated"]["sram_kb"]
