"""Benchmark: regenerate Figure 1 (normalized 256 B probe throughput)."""

from repro.experiments import fig01


def test_fig01_normalized_throughput(once):
    rows = once(fig01.run, ops_per_thread=300)
    print()
    print(fig01.format_rows(rows))
    # Shape assertions (paper, Section 1 / Figure 1):
    for row in rows:
        # Synchronous RDMA is a small fraction of local performance.
        assert row.normalized["one-sided"] < 0.2
        assert row.normalized["two-sided"] <= row.normalized["one-sided"] * 1.5
        # Async is an order of magnitude above sync.
        assert row.normalized["async"] > 3 * row.normalized["one-sided"]
        # Cowbird bridges most of the remaining gap.
        assert row.normalized["cowbird"] > row.normalized["async"]
        assert row.normalized["cowbird"] > 0.5
        # Batching disabled sits between async RDMA and full Cowbird.
        assert row.normalized["cowbird-nb"] >= row.normalized["async"] * 0.8
