"""Benchmark: regenerate Figure 13 (read latency by record size)."""

from repro.experiments import fig13


def get(rows, system, size):
    return next(
        r for r in rows if r.system == system and r.record_bytes == size
    )


def test_fig13_latency(once):
    rows = once(fig13.run, record_sizes=(8, 64, 256, 512, 1024, 2048), ops=200)
    print()
    print(fig13.format_rows(rows))
    for size in (8, 64, 256, 512, 1024, 2048):
        sync = get(rows, "one-sided", size)
        async_ = get(rows, "async", size)
        nobatch = get(rows, "cowbird-nb", size)
        batched = get(rows, "cowbird", size)
        # Sync one-sided RDMA is the host-driven latency floor.
        assert sync.median_us <= nobatch.median_us
        # No-batch Cowbird adds a bounded protocol delta (probe +
        # bookkeeping round trips), staying in the same regime.
        assert nobatch.median_us < sync.median_us + 12.0
        # Batching raises latency for both async RDMA and Cowbird, but
        # Cowbird stays clearly below async RDMA (paper Section 8.3).
        assert batched.median_us < async_.median_us
        assert batched.p99_us < async_.p99_us
        assert batched.p99_us >= batched.median_us
    # The paper's absolute bands for batched Cowbird at small records:
    # median < 10 us... our simulated protocol lands under ~20 us and
    # p99 under ~25 us; async RDMA is far above both.
    small = get(rows, "cowbird", 64)
    assert small.median_us < 20.0
    assert small.p99_us < 25.0
