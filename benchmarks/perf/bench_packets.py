"""Packet microbenchmark: the switch data-plane byte cycle.

Measures full pack -> unpack -> recycle -> repack cycles per second on a
256 B read response converted to a write (the Cowbird-P4 steady state),
plus the pool acquire/release cycle that backs switch-generated
requests.
"""

from __future__ import annotations

import json
import time

from repro.rdma.packets import (
    AddressBook,
    Aeth,
    Bth,
    Opcode,
    PacketPool,
    Reth,
    RocePacket,
    SYNDROME_ACK,
)

__all__ = ["bench_recycle_cycle", "bench_pool_cycle", "run"]


def bench_recycle_cycle(iterations: int = 20_000, payload_bytes: int = 256) -> float:
    """Recycle cycles/sec: unpack a response, rewrite it into a write."""
    book = AddressBook()
    wire = RocePacket(
        src="pool", dst="compute",
        bth=Bth(opcode=Opcode.RC_RDMA_READ_RESPONSE_ONLY, dest_qp=5, psn=9),
        aeth=Aeth(syndrome=SYNDROME_ACK, msn=1),
        payload=bytes(payload_bytes),
    ).pack(book)
    reth = Reth(virtual_address=0x1000, remote_key=0x77, dma_length=payload_bytes)
    started = time.perf_counter()
    for psn in range(iterations):
        packet = RocePacket.unpack(wire, book)
        packet.recycle(
            src="switch", dst="pool",
            opcode=Opcode.RC_RDMA_WRITE_ONLY, dest_qp=3, psn=psn & 0xFFFFFF,
            ack_request=True, reth=reth,
        )
        packet.pack(book)
    return iterations / (time.perf_counter() - started)


def bench_pool_cycle(iterations: int = 100_000) -> float:
    """Pool acquire+release cycles/sec (steady state: zero construction)."""
    pool = PacketPool()
    bth = Bth(opcode=Opcode.RC_RDMA_READ_REQUEST, dest_qp=7, psn=42)
    reth = Reth(virtual_address=0x4000, remote_key=0x8, dma_length=256)
    pool.acquire(src="s", dst="p", bth=bth, reth=reth).release()  # warm
    started = time.perf_counter()
    for _ in range(iterations):
        pool.acquire(src="s", dst="p", bth=bth, reth=reth).release()
    return iterations / (time.perf_counter() - started)


def run(repeats: int = 3) -> dict:
    return {
        "packet_recycle_cycles_per_sec": max(
            bench_recycle_cycle() for _ in range(repeats)
        ),
        "packet_pool_cycles_per_sec": max(
            bench_pool_cycle() for _ in range(repeats)
        ),
    }


if __name__ == "__main__":
    print(json.dumps(run(), indent=2))
