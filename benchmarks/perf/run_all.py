"""Run every perf microbenchmark and write ``BENCH_engine.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_all.py            # measure
    PYTHONPATH=src python benchmarks/perf/run_all.py --check    # CI gate

``--check`` compares each metric against ``benchmarks/perf/baseline.json``
and exits non-zero when anything regresses by more than 2x (wall-clock
noise on shared runners is real; 2x is a smoke alarm, not a ruler).  A
missing baseline soft-fails: the run records its numbers and passes, so
the first run on a new machine seeds the baseline instead of failing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_engine
import bench_fig08_point
import bench_packets

#: Regression gate: fail when current < baseline / MAX_REGRESSION.
MAX_REGRESSION = 2.0

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
BASELINE_PATH = os.path.join(
    REPO_ROOT, "benchmarks", "perf", "baseline.json"
)
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_engine.json")


def measure(repeats: int = 3) -> dict:
    metrics: dict = {}
    for module in (bench_engine, bench_packets, bench_fig08_point):
        metrics.update(module.run(repeats=repeats))
    return metrics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail on >2x regression vs the baseline")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", default=OUTPUT_PATH)
    args = parser.parse_args(argv)

    metrics = measure(repeats=args.repeats)
    document = {"metrics": metrics}

    baseline = None
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as handle:
            baseline = json.load(handle)
        document["baseline"] = baseline["metrics"]
        # The one-time pre/post measurement of the event-loop rewrite
        # rides along so BENCH_engine.json records the PR's speedup.
        if "pr_comparison" in baseline:
            document["pr_comparison"] = baseline["pr_comparison"]

    failures = []
    for name, value in sorted(metrics.items()):
        line = f"  {name:<34s} {value:>14,.0f}/s"
        if baseline and name in baseline.get("metrics", {}):
            ref = baseline["metrics"][name]
            ratio = value / ref if ref else float("inf")
            line += f"   ({ratio:.2f}x of baseline)"
            if ratio < 1.0 / MAX_REGRESSION:
                failures.append(f"{name}: {value:,.0f}/s is worse than "
                                f"1/{MAX_REGRESSION:.0f} of baseline {ref:,.0f}/s")
        print(line)

    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwritten to {args.output}")

    if baseline is None:
        print(f"no baseline at {BASELINE_PATH}; soft-pass "
              "(commit this run's numbers to seed it)")
        return 0
    if failures:
        print("\nperf regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
