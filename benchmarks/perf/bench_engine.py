"""Engine microbenchmark: raw event-dispatch throughput.

Two workloads bracket the hot loop:

* ``delays`` — processes that only ``yield <ns>``; every event takes the
  run loop's inline fast path (heap pop, generator resume, heap push).
* ``futures`` — ping/pong over :class:`Future`, adding callback delivery
  and mailbox handoff to each event.

Run as a script to print one JSON object of events/sec; ``run_all.py``
aggregates it into ``BENCH_engine.json``.
"""

from __future__ import annotations

import json
import time

from repro.sim.engine import Simulator

__all__ = ["bench_delays", "bench_futures", "run"]


def bench_delays(n_procs: int = 100, steps: int = 2000) -> float:
    """Events/sec for pure timer events."""
    sim = Simulator()

    def worker(period: float):
        for _ in range(steps):
            yield period

    for i in range(n_procs):
        sim.spawn(worker(10.0 + i))
    started = time.perf_counter()
    sim.run()
    return n_procs * steps / (time.perf_counter() - started)


def bench_futures(n_pairs: int = 50, rounds: int = 1000) -> float:
    """Events/sec for future resolve/callback handoff."""
    sim = Simulator()

    def ping(mailbox: list):
        for _ in range(rounds):
            future = sim.future()
            mailbox.append(future)
            yield 5.0
            yield future

    def pong(mailbox: list):
        for _ in range(rounds):
            while not mailbox:
                yield 1.0
            mailbox.pop().resolve(None)
            yield 10.0

    for _ in range(n_pairs):
        mailbox: list = []
        sim.spawn(ping(mailbox))
        sim.spawn(pong(mailbox))
    started = time.perf_counter()
    sim.run()
    events = sim.events_dispatched
    return events / (time.perf_counter() - started)


def run(repeats: int = 3) -> dict:
    """Best-of-``repeats`` for both workloads (noise floor, not mean)."""
    return {
        "engine_delay_events_per_sec": max(bench_delays() for _ in range(repeats)),
        "engine_future_events_per_sec": max(bench_futures() for _ in range(repeats)),
    }


if __name__ == "__main__":
    print(json.dumps(run(), indent=2))
