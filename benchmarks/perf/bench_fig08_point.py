"""Macrobenchmark: one representative Figure 8 sweep point.

Times ``run_microbench("cowbird", 4, ...)`` end to end — the engine,
NIC, switch, and packet layers together — so regressions that hide
between microbenchmarks still show up.
"""

from __future__ import annotations

import json
import time

from repro.experiments.common import run_microbench

__all__ = ["bench_fig08_point", "run"]


def bench_fig08_point(ops_per_thread: int = 200) -> float:
    """Simulated ops/sec of wall-clock for one cowbird point."""
    started = time.perf_counter()
    result = run_microbench(
        "cowbird", 4, record_bytes=256, ops_per_thread=ops_per_thread,
        seed=8, pipeline_depth=512,
    )
    wall = time.perf_counter() - started
    return result.total_ops / wall


def run(repeats: int = 3) -> dict:
    return {
        "fig08_point_ops_per_sec": max(
            bench_fig08_point() for _ in range(repeats)
        ),
    }


if __name__ == "__main__":
    print(json.dumps(run(), indent=2))
