"""Benchmark: regenerate Table 1 (spot pricing + cost analysis)."""

import pytest

from repro.experiments import tab01


def test_tab1_pricing(once):
    result = once(tab01.run)
    print()
    print(result["rendered"])
    # Section 2.2: "the cost can be reduced by up to 90%".
    assert result["max_discount"] == pytest.approx(0.90, abs=0.01)
    assert len(result["rows"]) == 3
    # Offload is cost-positive on every provider, more so when shared.
    for provider, gain in result["efficiency_gain_single_node"].items():
        assert gain > 0.5
        assert result["efficiency_gain_four_nodes"][provider] > gain
