"""Benchmark: regenerate Figure 11 (FASTER: Cowbird-Spot vs Redy)."""

from repro.experiments import fig11


def get(results, system, threads):
    return next(
        r for r in results if r.system == system and r.threads == threads
    )


def test_fig11_redy(once):
    results = once(
        fig11.run,
        thread_counts=(1, 2, 4, 8, 16),
        record_count=12_000,
        ops_per_thread=250,
    )
    print()
    print(fig11.format_results(results))
    # Redy is competitive at one thread...
    one_ratio = (
        get(results, "cowbird", 1).throughput_mops
        / get(results, "redy", 1).throughput_mops
    )
    assert one_ratio < 2.0
    # ...but its pinned I/O cores cost it as FASTER threads grow
    # (paper: ~1.6x at 8 threads; our SMT model shows a milder ~1.15x —
    # see EXPERIMENTS.md).
    eight_ratio = (
        get(results, "cowbird", 8).throughput_mops
        / get(results, "redy", 8).throughput_mops
    )
    assert eight_ratio > 1.05
    # At 16 FASTER threads Redy has no cores left for I/O threads —
    # the figure's main story: Cowbird's peak exceeds anything Redy
    # can reach with the cores it leaves the application.
    assert get(results, "redy", 16).out_of_cores
    assert not get(results, "cowbird", 16).out_of_cores
    assert get(results, "cowbird", 16).throughput_mops > (
        get(results, "cowbird", 8).throughput_mops
    )
    assert get(results, "cowbird", 16).throughput_mops > 1.3 * max(
        r.throughput_mops for r in results if r.system == "redy"
    )
