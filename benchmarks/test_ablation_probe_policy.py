"""Ablation: multi-instance probe scheduling policy (Section 5.4).

The paper leaves richer TDM policies to future work; we implemented a
weighted policy that concentrates probe slots on active instances.
With one hot instance among many idle co-tenants, weighted probing
should cut the hot instance's request latency versus uniform
round-robin while spending fewer probes on the idle crowd.
"""

from repro.cowbird.deploy import deploy_cowbird
from repro.cowbird.p4_engine import P4EngineConfig

IDLE_INSTANCES = 7
OPS = 60


def run_policy(policy):
    dep = deploy_cowbird(
        engine="p4", num_instances=IDLE_INSTANCES + 1, remote_bytes=1 << 20,
        p4_config=P4EngineConfig(probe_interval_ns=2_000.0,
                                 probe_policy=policy),
    )
    hot = dep.instances[0]
    thread = dep.compute.cpu.thread()
    sim = dep.sim
    latencies = []

    def app():
        poll = hot.poll_create()
        for i in range(OPS):
            start = sim.now
            rid = yield from hot.async_read(thread, 0, (i % 256) * 64, 64)
            hot.poll_add(poll, rid)
            events = yield from hot.poll_wait(thread, poll, max_ret=1)
            while not events:
                events = yield from hot.poll_wait(thread, poll, max_ret=1)
            latencies.append(sim.now - start)
            hot.fetch_response(rid)
            yield from thread.sleep(5_000)

    sim.run_until_complete(sim.spawn(app()), deadline=120e9)
    idle_probes = sum(
        state.probe_channel.send_psn for state in dep.engine._instances[1:]
    )
    return {
        "policy": policy,
        "mean_latency_us": sum(latencies) / len(latencies) / 1000.0,
        "idle_probes": idle_probes,
    }


def test_ablation_probe_policy(once):
    rows = once(lambda: [run_policy(p) for p in ("round-robin", "weighted")])
    print()
    print(f"Ablation: probe policy, 1 hot + {IDLE_INSTANCES} idle instances")
    print(f"{'policy':>12s}{'hot latency us':>16s}{'idle probes':>13s}")
    for row in rows:
        print(f"{row['policy']:>12s}{row['mean_latency_us']:>16.1f}"
              f"{row['idle_probes']:>13d}")
    rr = next(r for r in rows if r["policy"] == "round-robin")
    weighted = next(r for r in rows if r["policy"] == "weighted")
    # Weighted probing shortens the hot instance's discovery latency...
    assert weighted["mean_latency_us"] < rr["mean_latency_us"]
    # ...while probing the idle crowd less.
    assert weighted["idle_probes"] < rr["idle_probes"]
