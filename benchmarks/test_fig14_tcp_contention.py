"""Benchmark: regenerate Figure 14 (contending TCP bandwidth)."""

from repro.experiments import fig14


def get(rows, system, threads):
    return next(
        r for r in rows if r.system == system and r.threads == threads
    )


def test_fig14_tcp_contention(once):
    rows = once(fig14.run, ops_per_thread=200)
    print()
    print(fig14.format_rows(rows))
    baseline = get(rows, "none", 1).tcp_gbps
    assert baseline > 20.0  # TCP alone saturates the 25 Gb/s path
    for threads in (1, 2, 4, 8):
        spot = get(rows, "cowbird", threads).tcp_gbps
        p4 = get(rows, "cowbird-p4", threads).tcp_gbps
        none = get(rows, "none", threads).tcp_gbps
        # Cowbird-Spot's batched protocol has a small footprint.
        assert spot > 0.70 * none
        # Cowbird-P4's unbatched per-record packets cost real bandwidth
        # (paper: up to ~30%; our shared-segment surrogate is harsher
        # at high thread counts — see EXPERIMENTS.md).
        assert p4 < spot
    # The P4 overhead grows with application threads.
    assert get(rows, "cowbird-p4", 8).tcp_gbps < get(rows, "cowbird-p4", 1).tcp_gbps
    # At low thread counts the P4 cost is in the paper's ~15-30% band.
    assert get(rows, "cowbird-p4", 1).tcp_gbps > 0.6 * baseline
