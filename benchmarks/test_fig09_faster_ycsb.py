"""Benchmark: regenerate Figure 9 (FASTER YCSB throughput, 2 panels)."""

from repro.experiments import fig09


def get(results, value_bytes, system, threads):
    return next(
        r for r in results
        if r.value_bytes == value_bytes and r.system == system
        and r.threads == threads
    )


def test_fig09_faster_ycsb(once):
    results = once(
        fig09.run,
        thread_counts=(1, 4, 16),
        record_count=12_000,
        ops_per_thread=250,
    )
    print()
    print(fig09.format_results(results))
    for value_bytes in (64, 512):
        for threads in (1, 4, 16):
            ssd = get(results, value_bytes, "ssd", threads).throughput_mops
            sync = get(results, value_bytes, "one-sided", threads).throughput_mops
            cowbird = get(results, value_bytes, "cowbird", threads).throughput_mops
            p4 = get(results, value_bytes, "cowbird-p4", threads).throughput_mops
            local = get(results, value_bytes, "local", threads).throughput_mops
            # Remote memory beats the SSD by at least ~2.3x (paper).
            assert cowbird > 2.3 * ssd
            # The two engine variants perform similarly.
            assert 0.5 < p4 / cowbird < 2.0
            # Cowbird tracks local memory (paper: within 8%).
            assert cowbird > 0.8 * local
            assert cowbird <= local * 1.05
        # Cowbird's speedup over the SSD reaches the paper's 12-84x
        # band once threads scale (the SSD is IOPS-flat).
        assert (
            get(results, value_bytes, "cowbird", 16).throughput_mops
            / get(results, value_bytes, "ssd", 16).throughput_mops
            > 10
        )
