"""Figure 12: uniformly reading 8 B objects — Cowbird vs AIFM.

Pure remote reads (no local fraction): every operation dereferences an
8-byte remote object.  AIFM pays green-thread scheduling on the
application cores, funnels all I/O through one IOKernel core, and moves
data over a TCP path; Cowbird pays ~40 ns of local stores.  The paper
reports up to 71x higher throughput for Cowbird.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import MicrobenchResult, run_microbench
from repro.sim.cpu import CostModel

__all__ = ["SYSTEMS", "run"]

SYSTEMS = ("aifm", "cowbird")
THREAD_COUNTS = (1, 2, 4, 8, 16)
RECORD_BYTES = 8


def run(
    thread_counts: Sequence[int] = THREAD_COUNTS,
    systems: Sequence[str] = SYSTEMS,
    ops_per_thread: int = 400,
    cost: Optional[CostModel] = None,
    seed: int = 12,
) -> list[MicrobenchResult]:
    """Regenerate Figure 12 (scaled-down).

    The paper's workload is a bare loop of 8-byte object reads — no
    hash-table semantics — so per-op application work is a pointer
    dereference, not an index probe.
    """
    cost = cost or CostModel(hash_probe_compute=20.0)
    results: list[MicrobenchResult] = []
    for system in systems:
        for threads in thread_counts:
            results.append(
                run_microbench(
                    system, threads, record_bytes=RECORD_BYTES,
                    ops_per_thread=ops_per_thread,
                    local_fraction=0.0,  # every read is remote
                    cost=cost, seed=seed,
                    pipeline_depth=512 if system == "cowbird" else 8,
                )
            )
    return results


def max_speedup(results: list[MicrobenchResult]) -> float:
    """The paper's "up to 71x" number: best per-thread-count ratio."""
    best = 0.0
    threads = sorted({r.threads for r in results})
    for t in threads:
        cowbird = next(
            (r for r in results if r.system == "cowbird" and r.threads == t), None
        )
        aifm = next(
            (r for r in results if r.system == "aifm" and r.threads == t), None
        )
        if cowbird and aifm and aifm.throughput_mops > 0:
            best = max(best, cowbird.throughput_mops / aifm.throughput_mops)
    return best


def format_results(results: list[MicrobenchResult]) -> str:
    threads = sorted({r.threads for r in results})
    systems = list(dict.fromkeys(r.system for r in results))
    lines = ["Figure 12: uniform 8 B remote reads (MOPS)"]
    lines.append(f"{'system':>10s}" + "".join(f"{t:>10d}" for t in threads))
    for system in systems:
        row = {r.threads: r.throughput_mops for r in results if r.system == system}
        lines.append(
            f"{system:>10s}" + "".join(f"{row.get(t, 0.0):>10.2f}" for t in threads)
        )
    lines.append(f"max speedup: {max_speedup(results):.0f}x")
    return "\n".join(lines)
