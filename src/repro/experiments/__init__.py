"""Experiment drivers: one module per paper table/figure.

Each ``figNN`` module exposes a ``run(...)`` function that regenerates
the corresponding figure's rows/series at a configurable (scaled-down)
operation count, returning plain dictionaries the benchmark harness
prints.  ``common`` holds the system builders shared by all of them.
"""

from repro.experiments.common import (
    MICROBENCH_SYSTEMS,
    MicrobenchResult,
    build_microbench,
    run_microbench,
)

__all__ = [
    "MICROBENCH_SYSTEMS",
    "MicrobenchResult",
    "build_microbench",
    "run_microbench",
]
