"""Figure 8: hash-table throughput vs threads and record size.

Four panels (8/64/256/512 B records), six systems, threads 1..16.  The
shapes that must hold (Section 8.1):

* asynchronous I/O is an order of magnitude above synchronous,
* Cowbird beats async RDMA and, with batching, approaches local memory,
* for 256 B and 512 B records the network bandwidth ceiling (dashed in
  the paper) caps every remote system at high thread counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import run_microbench
from repro.experiments.sweep import SweepPoint, run_sweep
from repro.sim.cpu import CostModel
from repro.rdma.packets import HEADER_OVERHEAD_BYTES

__all__ = ["Fig08Cell", "SYSTEMS", "bandwidth_ceiling_mops", "run"]

SYSTEMS = ("two-sided", "one-sided", "async", "cowbird-nb", "cowbird", "local")
RECORD_SIZES = (8, 64, 256, 512)
THREAD_COUNTS = (1, 2, 4, 8, 16)


@dataclass
class Fig08Cell:
    """One (record size, system, threads) measurement."""

    record_bytes: int
    system: str
    threads: int
    throughput_mops: float
    communication_ratio: float


def bandwidth_ceiling_mops(record_bytes: int, bandwidth_gbps: float = 100.0) -> float:
    """The dashed line: per-record wire cost at link rate.

    Each remote record moves once over the bottleneck link with RoCE
    header overhead (the request direction is much smaller and rides the
    opposite link).
    """
    wire_bytes = record_bytes + HEADER_OVERHEAD_BYTES + 4  # AETH on responses
    return bandwidth_gbps / 8.0 / wire_bytes * 1000.0


def run(
    record_sizes: Sequence[int] = RECORD_SIZES,
    thread_counts: Sequence[int] = THREAD_COUNTS,
    systems: Sequence[str] = SYSTEMS,
    ops_per_thread: int = 500,
    cost: Optional[CostModel] = None,
    seed: int = 8,
    parallel: int = 0,
    cache_dir: Optional[str] = None,
) -> list[Fig08Cell]:
    """Regenerate the Figure 8 panels (scaled-down op counts).

    ``parallel >= 1`` fans the (record size, system, threads) grid out
    through the deterministic sweep harness; ``0`` keeps the legacy
    inline loop.  Both orders and results are identical.
    """
    grid = [
        (record_bytes, system, threads)
        for record_bytes in record_sizes
        for system in systems
        for threads in thread_counts
    ]
    if parallel >= 1 and cost is None:
        points = [
            SweepPoint("microbench", dict(
                system=system, threads=threads, record_bytes=record_bytes,
                ops_per_thread=ops_per_thread, seed=seed,
                pipeline_depth=512 if system.startswith("cowbird") else 100,
            ))
            for record_bytes, system, threads in grid
        ]
        results = run_sweep(points, parallel=parallel, cache_dir=cache_dir)
    else:
        cost = cost or CostModel()
        results = [
            run_microbench(
                system, threads, record_bytes=record_bytes,
                ops_per_thread=ops_per_thread, cost=cost, seed=seed,
                pipeline_depth=512 if system.startswith("cowbird") else 100,
            )
            for record_bytes, system, threads in grid
        ]
    return [
        Fig08Cell(
            record_bytes=record_bytes,
            system=system,
            threads=threads,
            throughput_mops=result.throughput_mops,
            communication_ratio=result.communication_ratio,
        )
        for (record_bytes, system, threads), result in zip(grid, results)
    ]


def format_cells(cells: list[Fig08Cell]) -> str:
    lines = []
    sizes = sorted({c.record_bytes for c in cells})
    threads = sorted({c.threads for c in cells})
    systems = list(dict.fromkeys(c.system for c in cells))
    for size in sizes:
        lines.append(f"Figure 8 panel: {size}-byte records (MOPS)"
                     f"  [BW ceiling ~{bandwidth_ceiling_mops(size):.0f}]")
        lines.append(f"{'system':>14s}" + "".join(f"{t:>9d}" for t in threads))
        for system in systems:
            row = [c for c in cells if c.record_bytes == size and c.system == system]
            by_threads = {c.threads: c.throughput_mops for c in row}
            cellstr = "".join(f"{by_threads.get(t, 0.0):>9.2f}" for t in threads)
            lines.append(f"{system:>14s}{cellstr}")
        lines.append("")
    return "\n".join(lines)
