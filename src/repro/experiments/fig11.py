"""Figure 11: FASTER throughput with Cowbird-Spot vs Redy.

YCSB uniform, 64 B records, 1 GB-equivalent local log budget.  Redy
needs dedicated compute-node cores for its I/O threads: it runs out of
cores at 16 FASTER threads (the paper draws an "out of cores" band), and
even at 8 it cannot reach optimal performance.  Cowbird frees those
cores and keeps scaling — the paper reports a 1.6x advantage.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.faster_bench import FasterBenchResult, run_faster_bench
from repro.sim.cpu import CostModel

__all__ = ["SYSTEMS", "run"]

SYSTEMS = ("redy", "cowbird")
THREAD_COUNTS = (1, 2, 4, 8, 16)


def run(
    thread_counts: Sequence[int] = THREAD_COUNTS,
    systems: Sequence[str] = SYSTEMS,
    record_count: int = 20_000,
    ops_per_thread: int = 300,
    cost: Optional[CostModel] = None,
    seed: int = 11,
) -> list[FasterBenchResult]:
    """Regenerate Figure 11 (scaled-down)."""
    cost = cost or CostModel()
    results: list[FasterBenchResult] = []
    for system in systems:
        for threads in thread_counts:
            results.append(
                run_faster_bench(
                    system, threads, value_bytes=64,
                    record_count=record_count, ops_per_thread=ops_per_thread,
                    distribution="uniform",
                    # 1 GB local log instead of 5 GB: a tighter budget.
                    memory_fraction=0.08,
                    cost=cost, seed=seed,
                    pipeline_depth=128 if system == "cowbird" else 64,
                )
            )
    return results


def format_results(results: list[FasterBenchResult]) -> str:
    threads = sorted({r.threads for r in results})
    systems = list(dict.fromkeys(r.system for r in results))
    lines = ["Figure 11: FASTER throughput, Cowbird-Spot vs Redy (MOPS)"]
    lines.append(f"{'system':>14s}" + "".join(f"{t:>12d}" for t in threads))
    for system in systems:
        cells = []
        for t in threads:
            match = [r for r in results if r.system == system and r.threads == t]
            if match and match[0].out_of_cores:
                cells.append(f"{'out-of-cores':>12s}")
            elif match:
                cells.append(f"{match[0].throughput_mops:>12.3f}")
            else:
                cells.append(f"{'-':>12s}")
        lines.append(f"{system:>14s}" + "".join(cells))
    return "\n".join(lines)
