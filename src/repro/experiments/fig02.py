"""Figure 2: compute-side CPU time of one read, Cowbird vs RDMA.

The paper instruments the Mellanox OFED driver with ``rdtsc`` and breaks
an asynchronous one-sided read's compute-side cost into post (lock,
doorbell, WQE) and poll (lock, CQE) subtasks — ~630 ns in total — versus
Cowbird's handful of local-memory writes.  We regenerate the breakdown
two ways: from the calibrated cost model (the figure's bars) and by
*measuring* a simulated thread doing each operation, confirming the
implementation actually charges what the model says.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cowbird.deploy import deploy_cowbird
from repro.sim.cpu import CostModel
from repro.testbed import Testbed

__all__ = ["CpuBreakdown", "run"]


@dataclass
class CpuBreakdown:
    """The two bars of Figure 2, with the RDMA bar's segments."""

    rdma_segments: dict[str, float] = field(default_factory=dict)
    cowbird_segments: dict[str, float] = field(default_factory=dict)
    rdma_total_ns: float = 0.0
    cowbird_total_ns: float = 0.0
    #: Measured (not modelled) per-op CPU time from simulated threads.
    rdma_measured_ns: float = 0.0
    cowbird_measured_ns: float = 0.0

    @property
    def speedup(self) -> float:
        if self.cowbird_total_ns <= 0:
            return 0.0
        return self.rdma_total_ns / self.cowbird_total_ns


def _measure_rdma(cost: CostModel, ops: int = 50) -> float:
    """Post+poll CPU time per async RDMA read on a simulated thread.

    Matches the paper's methodology: ``ibv_poll_cq`` is called after the
    read completes, so the poll charge is a single successful check.
    """
    bed = Testbed(cost=cost)
    compute = bed.add_host("compute", cpu_cores=1, smt=1)
    pool = bed.add_host("pool")
    qp_c, _ = bed.connect_qps(compute, pool)
    remote = pool.registry.register(1 << 16)
    local = compute.registry.register(1 << 16)
    thread = compute.cpu.thread()

    def op_loop():
        for i in range(ops):
            wr_id = yield from compute.verbs.read_async(
                thread, qp_c, local.base_addr, remote.base_addr + 64 * i,
                remote.rkey, 64,
            )
            del wr_id
            # Wait off-CPU until the data is back, then poll once.
            waiter = bed.sim.future()
            qp_c.cq.notify_next_push(waiter)
            yield from thread.wait(waiter)
            yield from compute.verbs.poll_cq(thread, qp_c.cq, 1)

    bed.sim.run_until_complete(bed.sim.spawn(op_loop()), deadline=1e9)
    return thread.stats.cpu_ns.get("comm", 0.0) / ops


def _measure_cowbird(cost: CostModel, ops: int = 50) -> float:
    """Issue+poll CPU time per Cowbird read on a simulated thread."""
    dep = deploy_cowbird(engine="spot", cost=cost)
    inst = dep.instances[0]
    thread = dep.compute.cpu.thread()

    def op_loop():
        poll = inst.poll_create()
        for i in range(ops):
            request_id = yield from inst.async_read(thread, 0, i * 64, 64)
            inst.poll_add(poll, request_id)
            events = yield from inst.poll_wait(thread, poll, max_ret=1)
            while not events:
                events = yield from inst.poll_wait(thread, poll, max_ret=1)

    dep.sim.run_until_complete(dep.sim.spawn(op_loop()), deadline=10e9)
    # Subtract the empty-poll wakeups poll_wait charged while blocked:
    # the paper's metric is the cost of a post plus one successful poll.
    comm = thread.stats.cpu_ns.get("comm", 0.0)
    return comm / ops


def run(cost: Optional[CostModel] = None, measure: bool = True) -> CpuBreakdown:
    """Regenerate Figure 2."""
    cost = cost or CostModel()
    breakdown = CpuBreakdown(
        rdma_segments={
            "post.lock": cost.rdma_post_lock,
            "post.wqe": cost.rdma_post_wqe,
            "post.doorbell": cost.rdma_post_doorbell,
            "poll.lock": cost.rdma_poll_lock,
            "poll.cqe": cost.rdma_poll_cqe,
        },
        cowbird_segments={
            "post": cost.cowbird_post,
            "poll": cost.cowbird_poll,
        },
    )
    breakdown.rdma_total_ns = sum(breakdown.rdma_segments.values())
    breakdown.cowbird_total_ns = sum(breakdown.cowbird_segments.values())
    if measure:
        breakdown.rdma_measured_ns = _measure_rdma(cost)
        breakdown.cowbird_measured_ns = _measure_cowbird(cost)
    return breakdown


def format_breakdown(breakdown: CpuBreakdown) -> str:
    lines = ["Figure 2: compute-side CPU time of a single read (ns)"]
    lines.append(f"  RDMA (async one-sided): {breakdown.rdma_total_ns:.0f} ns total")
    for name, value in breakdown.rdma_segments.items():
        lines.append(f"    {name:<14s} {value:7.0f}")
    lines.append(f"  Cowbird:                {breakdown.cowbird_total_ns:.0f} ns total")
    for name, value in breakdown.cowbird_segments.items():
        lines.append(f"    {name:<14s} {value:7.0f}")
    lines.append(f"  speedup: {breakdown.speedup:.1f}x")
    if breakdown.rdma_measured_ns:
        lines.append(
            f"  measured: rdma={breakdown.rdma_measured_ns:.0f} ns, "
            f"cowbird={breakdown.cowbird_measured_ns:.0f} ns"
        )
    return "\n".join(lines)
