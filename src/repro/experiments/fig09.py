"""Figure 9: FASTER throughput on YCSB (Zipfian θ=0.99).

Two panels (64 B and 512 B values), six storage backends, threads
1..16.  The shapes that must hold (Section 8.1):

* remote memory beats the SSD by at least ~2.3x (Cowbird by 12–84x),
* Cowbird tracks local memory closely (paper: within 8 %),
* Cowbird-P4 and Cowbird-Spot are near-identical,
* async RDMA's relative gap narrows at high thread counts (FASTER's
  cross-thread coordination becomes the bottleneck).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.faster_bench import FasterBenchResult, run_faster_bench
from repro.experiments.sweep import SweepPoint, run_sweep
from repro.sim.cpu import CostModel

__all__ = ["SYSTEMS", "run"]

SYSTEMS = ("ssd", "one-sided", "async", "cowbird-p4", "cowbird", "local")
VALUE_SIZES = (64, 512)
THREAD_COUNTS = (1, 2, 4, 8, 16)


def run(
    value_sizes: Sequence[int] = VALUE_SIZES,
    thread_counts: Sequence[int] = THREAD_COUNTS,
    systems: Sequence[str] = SYSTEMS,
    record_count: int = 20_000,
    ops_per_thread: int = 300,
    cost: Optional[CostModel] = None,
    seed: int = 9,
    parallel: int = 0,
    cache_dir: Optional[str] = None,
) -> list[FasterBenchResult]:
    """Regenerate both Figure 9 panels (scaled-down).

    ``parallel >= 1`` routes the grid through the deterministic sweep
    harness; ``0`` keeps the legacy inline loop.
    """
    grid = [
        (value_bytes, system, threads)
        for value_bytes in value_sizes
        for system in systems
        for threads in thread_counts
    ]
    if parallel >= 1 and cost is None:
        points = [
            SweepPoint("faster", dict(
                system=system, threads=threads, value_bytes=value_bytes,
                record_count=record_count, ops_per_thread=ops_per_thread,
                distribution="zipfian", seed=seed,
                pipeline_depth=128 if system.startswith("cowbird") else 64,
            ))
            for value_bytes, system, threads in grid
        ]
        return run_sweep(points, parallel=parallel, cache_dir=cache_dir)
    cost = cost or CostModel()
    return [
        run_faster_bench(
            system, threads, value_bytes=value_bytes,
            record_count=record_count,
            ops_per_thread=ops_per_thread,
            distribution="zipfian", cost=cost, seed=seed,
            pipeline_depth=128 if system.startswith("cowbird") else 64,
        )
        for value_bytes, system, threads in grid
    ]


def format_results(results: list[FasterBenchResult]) -> str:
    lines = []
    sizes = sorted({r.value_bytes for r in results})
    threads = sorted({r.threads for r in results})
    systems = list(dict.fromkeys(r.system for r in results))
    for size in sizes:
        lines.append(f"Figure 9 panel: {size}-byte values, YCSB zipfian (MOPS)")
        lines.append(f"{'system':>14s}" + "".join(f"{t:>9d}" for t in threads))
        for system in systems:
            row = {
                r.threads: r.throughput_mops
                for r in results
                if r.value_bytes == size and r.system == system
            }
            cells = "".join(f"{row.get(t, 0.0):>9.3f}" for t in threads)
            lines.append(f"{system:>14s}{cells}")
        lines.append("")
    return "\n".join(lines)
