"""Shared experiment scaffolding: system builders and runners.

``build_microbench`` assembles a complete simulated deployment of one
system-under-test (testbed, hosts, QPs/engines, per-thread backends);
``run_microbench`` drives the Section 8.1 hash-table probe loop on it
and aggregates per-thread results.

The supported systems mirror the evaluation's legend entries:

================  =====================================================
``local``          purely local memory (upper bound)
``two-sided``      synchronous two-sided RDMA RPC
``one-sided``      synchronous one-sided RDMA
``async``          asynchronous one-sided RDMA (batch 100)
``cowbird-nb``     Cowbird-Spot with batching disabled
``cowbird``        Cowbird-Spot (BATCH_SIZE=100)
``cowbird-p4``     Cowbird-P4 (switch offload engine)
``redy``           Redy (pinned I/O cores)
``aifm``           AIFM (Shenango green threads + IOKernel)
``ssd``            local SATA SSD
================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines import (
    AifmBackend,
    AifmConfig,
    LocalMemoryBackend,
    OneSidedAsyncBackend,
    OneSidedSyncBackend,
    RedyBackend,
    RedyConfig,
    SsdBackend,
    TwoSidedSyncBackend,
)
from repro.baselines.backends import Backend, CowbirdBackend
from repro.cowbird.api import CowbirdClient, CowbirdConfig
from repro.cowbird.p4_engine import CowbirdP4Engine, P4EngineConfig
from repro.cowbird.spot_engine import CowbirdSpotEngine, SpotEngineConfig
from repro.memory.pool import MemoryPool
from repro.sim.cpu import CostModel
from repro.sim.trace import mops
from repro.testbed import Host, Testbed
from repro.workloads.hashtable import HashTable, HashTableConfig, probe_worker

__all__ = [
    "MICROBENCH_SYSTEMS",
    "MicrobenchDeployment",
    "MicrobenchResult",
    "build_microbench",
    "run_microbench",
]

MICROBENCH_SYSTEMS = (
    "local",
    "two-sided",
    "one-sided",
    "async",
    "cowbird-nb",
    "cowbird",
    "cowbird-p4",
    "redy",
    "aifm",
    "ssd",
)

#: Compute-node shape from Section 7: Xeon Silver 4110, 8 cores + HT.
COMPUTE_CORES = 8
COMPUTE_SMT = 2


@dataclass
class MicrobenchDeployment:
    """One assembled system-under-test."""

    system: str
    bed: Testbed
    compute: Host
    backends: list[Backend]
    pool_host: Optional[Host] = None
    engine: Optional[object] = None

    @property
    def sim(self):
        return self.bed.sim


@dataclass
class MicrobenchResult:
    """Aggregated outcome of one (system, threads) microbenchmark run."""

    system: str
    threads: int
    record_bytes: int
    total_ops: int = 0
    elapsed_ns: float = 0.0
    throughput_mops: float = 0.0
    comm_cpu_ns: float = 0.0
    app_cpu_ns: float = 0.0
    blocked_ns: float = 0.0
    per_thread_mops: list[float] = field(default_factory=list)

    @property
    def communication_ratio(self) -> float:
        total = self.comm_cpu_ns + self.app_cpu_ns + self.blocked_ns
        if total <= 0:
            return 0.0
        return (self.comm_cpu_ns + self.blocked_ns) / total


def _setup_pool(bed: Testbed, remote_bytes: int):
    pool_host = bed.add_host("pool")
    pool = MemoryPool("pool")
    pool_host.registry = pool.registry
    pool_host.nic.registry = pool.registry
    handle = pool.allocate_region(remote_bytes, name="bench-remote")
    return pool_host, pool, handle


def build_microbench(
    system: str,
    threads: int,
    remote_bytes: int = 1 << 22,
    cost: Optional[CostModel] = None,
    seed: int = 0,
    pipeline_depth: int = 100,
) -> MicrobenchDeployment:
    """Assemble one system-under-test with ``threads`` worker backends."""
    if system not in MICROBENCH_SYSTEMS:
        raise ValueError(f"unknown system {system!r}; pick from {MICROBENCH_SYSTEMS}")
    cost = cost or CostModel()
    bed = Testbed(seed=seed, cost=cost)
    compute = bed.add_host("compute", cpu_cores=COMPUTE_CORES, smt=COMPUTE_SMT)
    backends: list[Backend] = []
    pool_host = None
    engine = None

    if system == "local":
        backends = [LocalMemoryBackend(cost) for _ in range(threads)]

    elif system == "ssd":
        shared = SsdBackend(compute)
        backends = [shared] * threads

    elif system in ("two-sided", "one-sided", "async"):
        pool_host, _pool, handle = _setup_pool(bed, remote_bytes)
        if system == "two-sided":
            # Two-sided RPC burns pool CPU: one busy-polling server
            # thread per connection (they spin, so each needs a core).
            from repro.sim.cpu import CPU

            pool_host.cpu = CPU(
                bed.sim, physical_cores=max(2, threads), smt=1, cost_model=cost
            )
            for _ in range(threads):
                qp_c, qp_p = bed.connect_qps(compute, pool_host)
                backend = TwoSidedSyncBackend(compute, pool_host, qp_c, qp_p, handle)
                backends.append(backend)
        else:
            for _ in range(threads):
                qp_c, _qp_p = bed.connect_qps(compute, pool_host)
                if system == "one-sided":
                    backends.append(OneSidedSyncBackend(compute, qp_c, handle))
                else:
                    backends.append(
                        OneSidedAsyncBackend(compute, qp_c, handle, batch=pipeline_depth)
                    )

    elif system in ("cowbird", "cowbird-nb", "cowbird-p4"):
        pool_host, pool, handle = _setup_pool(bed, remote_bytes)
        client = CowbirdClient(compute, CowbirdConfig())
        client.register_remote_region(handle)
        instances = [client.create_instance() for _ in range(threads)]
        if system == "cowbird-p4":
            engine = CowbirdP4Engine(bed.sim, bed.switch, P4EngineConfig())
            for instance in instances:
                engine.register_instance(instance, {"pool": pool_host})
        else:
            agent = bed.add_host("spot-agent", cpu_cores=1, smt=2)
            if system == "cowbird-nb":
                # "Batching disabled": every read response is written
                # back individually, and doorbell batching is restricted,
                # so per-request verb overhead returns (Section 6).
                spot_config = SpotEngineConfig(batch_size=1, max_post_batch=8)
            else:
                spot_config = SpotEngineConfig(batch_size=100)
            engine = CowbirdSpotEngine(agent, spot_config)
            for instance in instances:
                engine.register_instance(instance, {"pool": pool_host})
        engine.start()
        backends = [
            CowbirdBackend(instance, pending_limit=pipeline_depth)
            for instance in instances
        ]

    elif system == "redy":
        pool_host, _pool, handle = _setup_pool(bed, remote_bytes)
        io_threads = max(1, -(-threads // 4))
        qp_pairs = [bed.connect_qps(compute, pool_host) for _ in range(io_threads)]
        shared = RedyBackend(
            compute, pool_host, handle, qp_pairs,
            RedyConfig(io_threads=io_threads),
        )
        backends = [shared] * threads

    elif system == "aifm":
        pool_host, _pool, handle = _setup_pool(bed, remote_bytes)
        shared = AifmBackend(compute, pool_host, handle, AifmConfig())
        backends = [shared] * threads

    return MicrobenchDeployment(
        system=system, bed=bed, compute=compute, backends=backends,
        pool_host=pool_host, engine=engine,
    )


def run_microbench(
    system: str,
    threads: int,
    record_bytes: int = 256,
    ops_per_thread: int = 1_000,
    num_records: int = 100_000,
    local_fraction: float = 0.05,
    pipeline_depth: int = 100,
    cost: Optional[CostModel] = None,
    seed: int = 0,
    deadline_ns: float = 60e9,
) -> MicrobenchResult:
    """Run the Section 8.1 hash-table microbenchmark for one system."""
    cost = cost or CostModel()
    table = HashTable(
        HashTableConfig(
            num_records=num_records,
            record_bytes=record_bytes,
            local_fraction=local_fraction,
            ops_per_thread=ops_per_thread,
            pipeline_depth=pipeline_depth,
        )
    )
    remote_bytes = max(table.remote_bytes_needed(), 1 << 16)
    deployment = build_microbench(
        system, threads, remote_bytes=remote_bytes, cost=cost, seed=seed,
        pipeline_depth=pipeline_depth,
    )
    sim = deployment.sim
    processes = []
    for i in range(threads):
        thread = deployment.compute.cpu.thread(f"worker-{i}")
        backend = deployment.backends[i]
        processes.append(
            sim.spawn(
                probe_worker(thread, backend, table, cost, seed=seed * 1000 + i),
                name=f"worker-{i}",
            )
        )
    results = [
        sim.run_until_complete(process, deadline=deadline_ns) for process in processes
    ]
    started = min(r.started_at for r in results)
    finished = max(r.finished_at for r in results)
    aggregate = MicrobenchResult(
        system=system, threads=threads, record_bytes=record_bytes,
        total_ops=sum(r.ops for r in results),
        elapsed_ns=finished - started,
        comm_cpu_ns=sum(r.comm_cpu_ns for r in results),
        app_cpu_ns=sum(r.app_cpu_ns for r in results),
        blocked_ns=sum(r.blocked_ns for r in results),
        per_thread_mops=[r.mops() for r in results],
    )
    aggregate.throughput_mops = mops(aggregate.total_ops, aggregate.elapsed_ns)
    tel = sim.telemetry
    if tel.enabled:
        tel.complete(
            "bench.microbench", started, finished,
            process="bench", track=system,
            threads=threads, record_bytes=record_bytes,
            total_ops=aggregate.total_ops,
        )
        tel.gauge(f"bench.{system}.throughput_mops").set(
            aggregate.throughput_mops
        )
        tel.counter(f"bench.{system}.ops").inc(aggregate.total_ops)
    return aggregate
