"""Shared experiment scaffolding: system builders and runners.

``build_microbench`` assembles a complete simulated deployment of one
system-under-test (testbed, hosts, QPs/engines, per-thread backends);
``run_microbench`` drives the Section 8.1 hash-table probe loop on it
and aggregates per-thread results.

Systems are resolved through the :data:`repro.cluster.SYSTEMS` registry
— each legend entry registers a builder in ``repro.cluster.builders``,
so adding a system never touches this module.  The supported systems
mirror the evaluation's legend entries:

================  =====================================================
``local``          purely local memory (upper bound)
``two-sided``      synchronous two-sided RDMA RPC
``one-sided``      synchronous one-sided RDMA
``async``          asynchronous one-sided RDMA (batch 100)
``cowbird-nb``     Cowbird-Spot with batching disabled
``cowbird``        Cowbird-Spot (BATCH_SIZE=100)
``cowbird-p4``     Cowbird-P4 (switch offload engine)
``redy``           Redy (pinned I/O cores)
``aifm``           AIFM (Shenango green threads + IOKernel)
``ssd``            local SATA SSD
================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.backends import Backend
from repro.cluster import SYSTEMS, BuildContext
from repro.sim.cpu import CostModel
from repro.sim.trace import mops
from repro.testbed import Host, Testbed
from repro.workloads.hashtable import HashTable, HashTableConfig, probe_worker

__all__ = [
    "MICROBENCH_SYSTEMS",
    "MicrobenchDeployment",
    "MicrobenchResult",
    "build_microbench",
    "run_microbench",
]

#: Legend order comes straight from the registry (registration order).
MICROBENCH_SYSTEMS = SYSTEMS.names()

#: Compute-node shape from Section 7: Xeon Silver 4110, 8 cores + HT.
COMPUTE_CORES = 8
COMPUTE_SMT = 2


@dataclass
class MicrobenchDeployment:
    """One assembled system-under-test."""

    system: str
    bed: Testbed
    compute: Host
    backends: list[Backend]
    pool_host: Optional[Host] = None
    engine: Optional[object] = None
    #: MemoryPool or ShardedPool backing the benchmark region, if any.
    pool: Optional[object] = None
    #: Pool node name -> Host (several entries for sharded pools).
    pool_hosts: dict = field(default_factory=dict)

    @property
    def sim(self):
        return self.bed.sim

    def close(self) -> None:
        """Stop the engine so the deployment leaks no recurring events.

        A started engine re-arms probe/timeout ticks forever; a sweep
        that builds thousands of deployments without stopping them
        drags every simulation's event heap.  Idempotent.

        Under the sanitizer (``REPRO_SANITIZE=1``), close additionally
        drains in-flight packets for a bounded window and then raises
        :class:`repro.analysis.SanitizerError` on any packet or timer
        leak, with allocation sites.
        """
        if self.engine is not None:
            self.engine.stop()
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.drain_and_check()


@dataclass
class MicrobenchResult:
    """Aggregated outcome of one (system, threads) microbenchmark run."""

    system: str
    threads: int
    record_bytes: int
    total_ops: int = 0
    elapsed_ns: float = 0.0
    throughput_mops: float = 0.0
    comm_cpu_ns: float = 0.0
    app_cpu_ns: float = 0.0
    blocked_ns: float = 0.0
    per_thread_mops: list[float] = field(default_factory=list)

    @property
    def communication_ratio(self) -> float:
        total = self.comm_cpu_ns + self.app_cpu_ns + self.blocked_ns
        if total <= 0:
            return 0.0
        return (self.comm_cpu_ns + self.blocked_ns) / total


def build_microbench(
    system: str,
    threads: int,
    remote_bytes: int = 1 << 22,
    cost: Optional[CostModel] = None,
    seed: int = 0,
    pipeline_depth: int = 100,
    pool_shards: int = 1,
    engine_config: Optional[dict] = None,
) -> MicrobenchDeployment:
    """Assemble one system-under-test with ``threads`` worker backends."""
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}; pick from {SYSTEMS.names()}")
    cost = cost or CostModel()
    bed = Testbed(seed=seed, cost=cost)
    compute = bed.add_host("compute", cpu_cores=COMPUTE_CORES, smt=COMPUTE_SMT)
    built = SYSTEMS.build(
        system,
        BuildContext(
            bed=bed, compute=compute, threads=threads,
            remote_bytes=remote_bytes, cost=cost,
            pipeline_depth=pipeline_depth, pool_shards=pool_shards,
            engine_config=engine_config or {},
        ),
    )
    return MicrobenchDeployment(
        system=system, bed=bed, compute=compute, backends=built.backends,
        pool_host=built.pool_host, engine=built.engine, pool=built.pool,
        pool_hosts=dict(built.pool_hosts),
    )


def drive_probe_workload(
    deployment: MicrobenchDeployment,
    table: HashTable,
    cost: CostModel,
    seed: int = 0,
    deadline_ns: float = 60e9,
) -> MicrobenchResult:
    """Run the hash-table probe loop on an assembled deployment.

    Shared by ``run_microbench`` and the scenario runner: spawns one
    ``probe_worker`` per backend, waits for all of them, closes the
    deployment, and aggregates per-thread results.
    """
    sim = deployment.sim
    threads = len(deployment.backends)
    processes = []
    for i in range(threads):
        thread = deployment.compute.cpu.thread(f"worker-{i}")
        backend = deployment.backends[i]
        processes.append(
            sim.spawn(
                probe_worker(thread, backend, table, cost, seed=seed * 1000 + i),
                name=f"worker-{i}",
            )
        )
    results = [
        sim.run_until_complete(process, deadline=deadline_ns) for process in processes
    ]
    deployment.close()
    started = min(r.started_at for r in results)
    finished = max(r.finished_at for r in results)
    aggregate = MicrobenchResult(
        system=deployment.system, threads=threads,
        record_bytes=table.config.record_bytes,
        total_ops=sum(r.ops for r in results),
        elapsed_ns=finished - started,
        comm_cpu_ns=sum(r.comm_cpu_ns for r in results),
        app_cpu_ns=sum(r.app_cpu_ns for r in results),
        blocked_ns=sum(r.blocked_ns for r in results),
        per_thread_mops=[r.mops() for r in results],
    )
    aggregate.throughput_mops = mops(aggregate.total_ops, aggregate.elapsed_ns)
    tel = sim.telemetry
    if tel.enabled:
        system = deployment.system
        tel.complete(
            "bench.microbench", started, finished,
            process="bench", track=system,
            threads=threads, record_bytes=table.config.record_bytes,
            total_ops=aggregate.total_ops,
        )
        tel.gauge(f"bench.{system}.throughput_mops").set(
            aggregate.throughput_mops
        )
        tel.counter(f"bench.{system}.ops").inc(aggregate.total_ops)
        if sim.sanitizer is not None:
            # Event-stream checksum (post-drain): merged snapshots must
            # carry identical digests for any --parallel fan-out.
            tel.gauge("sim.digest").set(sim.sanitizer.digest.as_int())
    return aggregate


def run_microbench(
    system: str,
    threads: int,
    record_bytes: int = 256,
    ops_per_thread: int = 1_000,
    num_records: int = 100_000,
    local_fraction: float = 0.05,
    pipeline_depth: int = 100,
    cost: Optional[CostModel] = None,
    seed: int = 0,
    deadline_ns: float = 60e9,
) -> MicrobenchResult:
    """Run the Section 8.1 hash-table microbenchmark for one system."""
    cost = cost or CostModel()
    table = HashTable(
        HashTableConfig(
            num_records=num_records,
            record_bytes=record_bytes,
            local_fraction=local_fraction,
            ops_per_thread=ops_per_thread,
            pipeline_depth=pipeline_depth,
        )
    )
    remote_bytes = max(table.remote_bytes_needed(), 1 << 16)
    deployment = build_microbench(
        system, threads, remote_bytes=remote_bytes, cost=cost, seed=seed,
        pipeline_depth=pipeline_depth,
    )
    return drive_probe_workload(
        deployment, table, cost, seed=seed, deadline_ns=deadline_ns
    )
