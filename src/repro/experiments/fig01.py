"""Figure 1: normalized throughput of a 256-byte hash-index probe.

The paper's motivating figure: throughput of probing 256 B records in
remote memory with each communication primitive, normalized to local
memory, for 1/2/4 application threads.  The headline shape: synchronous
RDMA sits at a few percent of local, async one-sided at ~10–20 %, and
Cowbird closes most of the gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.common import run_microbench
from repro.experiments.sweep import SweepPoint, run_sweep
from repro.sim.cpu import CostModel

__all__ = ["Fig01Row", "SYSTEMS", "run"]

SYSTEMS = ("two-sided", "one-sided", "async", "cowbird-nb", "cowbird")
THREAD_COUNTS = (1, 2, 4)
RECORD_BYTES = 256


@dataclass
class Fig01Row:
    """One bar group: normalized throughput per system at a thread count."""

    threads: int
    local_mops: float
    normalized: dict[str, float] = field(default_factory=dict)
    absolute_mops: dict[str, float] = field(default_factory=dict)


def run(
    ops_per_thread: int = 600,
    cost: Optional[CostModel] = None,
    seed: int = 1,
    parallel: int = 0,
    cache_dir: Optional[str] = None,
) -> list[Fig01Row]:
    """Regenerate Figure 1's series (scaled-down op counts).

    ``parallel >= 1`` routes every (system, threads) point through the
    deterministic sweep harness (``parallel`` worker processes, optional
    on-disk cache); ``0`` keeps the legacy inline loop.  The harness
    path requires the default cost model, whose parameters live inside
    each point.
    """
    if parallel >= 1 and cost is None:
        points = [
            SweepPoint("microbench", _point_kwargs(system, threads,
                                                   ops_per_thread, seed))
            for threads in THREAD_COUNTS
            for system in ("local", *SYSTEMS)
        ]
        results = run_sweep(points, parallel=parallel, cache_dir=cache_dir)
        rows = []
        per_row = 1 + len(SYSTEMS)
        for i, threads in enumerate(THREAD_COUNTS):
            local, *rest = results[i * per_row:(i + 1) * per_row]
            row = Fig01Row(threads=threads, local_mops=local.throughput_mops)
            for system, result in zip(SYSTEMS, rest):
                row.absolute_mops[system] = result.throughput_mops
                row.normalized[system] = (
                    result.throughput_mops / local.throughput_mops
                    if local.throughput_mops > 0 else 0.0
                )
            rows.append(row)
        return rows

    cost = cost or CostModel()
    rows = []
    for threads in THREAD_COUNTS:
        local = run_microbench(
            "local", threads, record_bytes=RECORD_BYTES,
            ops_per_thread=ops_per_thread, cost=cost, seed=seed,
        )
        row = Fig01Row(threads=threads, local_mops=local.throughput_mops)
        for system in SYSTEMS:
            result = run_microbench(
                system, threads, record_bytes=RECORD_BYTES,
                ops_per_thread=ops_per_thread, cost=cost, seed=seed,
                pipeline_depth=512 if system.startswith("cowbird") else 100,
            )
            row.absolute_mops[system] = result.throughput_mops
            row.normalized[system] = (
                result.throughput_mops / local.throughput_mops
                if local.throughput_mops > 0 else 0.0
            )
        rows.append(row)
    return rows


def _point_kwargs(system: str, threads: int, ops_per_thread: int,
                  seed: int) -> dict:
    kwargs = dict(
        system=system, threads=threads, record_bytes=RECORD_BYTES,
        ops_per_thread=ops_per_thread, seed=seed,
    )
    if system != "local":
        kwargs["pipeline_depth"] = 512 if system.startswith("cowbird") else 100
    return kwargs


def format_rows(rows: list[Fig01Row]) -> str:
    """Render the figure as the table the paper's plot encodes."""
    lines = ["Figure 1: hash-index probe of 256 B records, normalized to local memory"]
    header = f"{'threads':>8s}" + "".join(f"{s:>14s}" for s in SYSTEMS)
    lines.append(header)
    for row in rows:
        cells = "".join(f"{row.normalized[s]:>14.3f}" for s in SYSTEMS)
        lines.append(f"{row.threads:>8d}{cells}")
    return "\n".join(lines)
