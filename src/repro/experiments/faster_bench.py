"""FASTER-on-YCSB experiment scaffolding (Figures 9, 10, 11).

Builds a FASTER store whose cold log spills through one of the storage
backends (SSD / one-sided RDMA / Cowbird / local memory / Redy), loads a
scaled-down YCSB database, and drives N worker threads.

Scaling note (DESIGN.md #5): the paper's databases are 18–24 GB with a
5 GB in-memory log budget; we keep the *ratios* (≈25 % of the log in
memory) at a few MB so a discrete-event simulation finishes in seconds.
Throughput comparisons are unaffected because every cost in the model is
per-operation or per-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.baselines.backends import Backend
from repro.experiments.common import MicrobenchDeployment, build_microbench
from repro.faster.hybridlog import HybridLogConfig
from repro.faster.store import FasterConfig, FasterKv
from repro.sim.cpu import CostModel, Thread
from repro.sim.trace import mops
from repro.workloads.ycsb import YcsbConfig, YcsbOp, YcsbWorkload

__all__ = ["FasterBenchResult", "FASTER_SYSTEMS", "run_faster_bench", "ycsb_worker"]

#: Storage backends the FASTER comparison covers (Figure 9's legend).
FASTER_SYSTEMS = (
    "ssd", "one-sided", "async", "cowbird-p4", "cowbird", "local", "redy",
)


@dataclass
class FasterBenchResult:
    system: str
    threads: int
    value_bytes: int
    total_ops: int = 0
    elapsed_ns: float = 0.0
    throughput_mops: float = 0.0
    comm_cpu_ns: float = 0.0
    app_cpu_ns: float = 0.0
    blocked_ns: float = 0.0
    reads_memory: int = 0
    reads_device: int = 0
    #: Redy at 16 threads has no cores left for I/O threads (Figure 11).
    out_of_cores: bool = False

    @property
    def communication_ratio(self) -> float:
        total = self.comm_cpu_ns + self.app_cpu_ns + self.blocked_ns
        if total <= 0:
            return 0.0
        return (self.comm_cpu_ns + self.blocked_ns) / total

    @property
    def device_fraction(self) -> float:
        total = self.reads_memory + self.reads_device
        return self.reads_device / total if total else 0.0


def ycsb_worker(
    thread: Thread,
    store: FasterKv,
    device: Backend,
    workload: YcsbWorkload,
    ops: int,
    depth: int = 64,
) -> Generator[Any, Any, dict]:
    """One FASTER thread: issue ops, pipeline device reads, reap.

    Mirrors the paper's integration: issue with ``async_read``-style
    calls, register in a notification group (here: the token map), and
    periodically complete pending requests.
    """
    issued = 0
    inflight = 0
    finished = 0
    started_at = thread.sim.now

    def reap(block: bool) -> Generator[Any, Any, None]:
        nonlocal inflight, finished
        tokens = yield from device.poll_completions(thread, max_ret=depth, block=block)
        done_keys = yield from store.complete(thread, tokens)
        finished += len(done_keys)
        inflight -= len(tokens)

    for op, key in workload.ops(ops):
        if op is YcsbOp.READ:
            outcome = yield from store.start_read(thread, key, device=device)
            issued += 1
            if outcome.source == "device":
                inflight += 1
        else:
            value = workload.value_for(key)
            flushes = yield from store.upsert(thread, key, value, device=device)
            issued += 1
            inflight += flushes  # this thread's eviction writes
        if inflight >= depth:
            yield from reap(block=True)
        elif inflight:
            yield from reap(block=False)
    while inflight > 0:
        yield from reap(block=True)
    thread.finish()
    return {
        "ops": issued,
        "started_at": started_at,
        "finished_at": thread.sim.now,
        "comm": thread.stats.cpu_ns.get("comm", 0.0),
        "app": thread.stats.cpu_ns.get("app", 0.0),
        "blocked": thread.stats.blocked_ns,
    }


def _log_config_for(
    total_records: int, record_bytes: int, memory_fraction: float
) -> HybridLogConfig:
    """Size the in-memory page budget to the paper's memory ratio."""
    total_bytes = total_records * record_bytes
    config = HybridLogConfig(page_bits=14)  # 16 KB pages at this scale
    pages_total = max(4, total_bytes // config.page_bytes)
    config.memory_pages = max(2, int(pages_total * memory_fraction))
    return config


def run_faster_bench(
    system: str,
    threads: int,
    value_bytes: int = 64,
    record_count: int = 40_000,
    ops_per_thread: int = 400,
    distribution: str = "zipfian",
    memory_fraction: float = 0.25,
    pipeline_depth: int = 64,
    cost: Optional[CostModel] = None,
    seed: int = 9,
    deadline_ns: float = 300e9,
) -> FasterBenchResult:
    """Run FASTER+YCSB on one storage backend at one thread count."""
    cost = cost or CostModel()
    ycsb = YcsbConfig(
        record_count=record_count, value_bytes=value_bytes,
        distribution=distribution, seed=seed,
    )
    faster_config = FasterConfig(
        value_bytes=value_bytes,
        log=_log_config_for(record_count, ycsb.record_bytes, memory_fraction),
    )
    # Redy steals compute cores for I/O threads; with all 16 hardware
    # threads given to FASTER there is nowhere to pin them (Figure 11).
    out_of_cores = system == "redy" and threads >= 16
    if out_of_cores:
        return FasterBenchResult(
            system=system, threads=threads, value_bytes=value_bytes,
            out_of_cores=True,
        )
    remote_bytes = record_count * faster_config.record_bytes * 2 + (1 << 20)
    deployment = build_microbench(
        system, threads, remote_bytes=remote_bytes, cost=cost, seed=seed,
        pipeline_depth=pipeline_depth,
    )
    # One store shared by all threads; each thread has its own device
    # channel (instance/QP), exactly like the paper's IDevice port.
    store = FasterKv(deployment.backends[0], cost, faster_config)
    load_backing(deployment, store)
    loader = YcsbWorkload(ycsb, worker_seed=0)
    store.load({key: loader.value_for(key) for key in range(record_count)})
    sim = deployment.sim
    processes = []
    for i in range(threads):
        thread = deployment.compute.cpu.thread(f"faster-{i}")
        workload = YcsbWorkload(ycsb, worker_seed=i + 1)
        processes.append(
            sim.spawn(
                ycsb_worker(
                    thread, store, deployment.backends[i], workload,
                    ops_per_thread, depth=pipeline_depth,
                ),
                name=f"faster-{i}",
            )
        )
    results = [
        sim.run_until_complete(process, deadline=deadline_ns)
        for process in processes
    ]
    deployment.close()
    started = min(r["started_at"] for r in results)
    finished = max(r["finished_at"] for r in results)
    outcome = FasterBenchResult(
        system=system, threads=threads, value_bytes=value_bytes,
        total_ops=sum(r["ops"] for r in results),
        elapsed_ns=finished - started,
        comm_cpu_ns=sum(r["comm"] for r in results),
        app_cpu_ns=sum(r["app"] for r in results),
        blocked_ns=sum(r["blocked"] for r in results),
        reads_memory=store.stats_reads_memory,
        reads_device=store.stats_reads_device,
    )
    outcome.throughput_mops = mops(outcome.total_ops, outcome.elapsed_ns)
    return outcome


def load_backing(deployment: MicrobenchDeployment, store: FasterKv) -> None:
    """Wire the store's cold-page backing writes into the deployment.

    For RDMA/Cowbird systems cold pages live in the pool region; for the
    SSD they live in its buffer; local memory needs nothing (the log's
    page budget is effectively infinite there).
    """
    system = deployment.system
    if system == "local":
        store.log.config.memory_pages = 1 << 30  # never evict
        return
    backend0 = deployment.backends[0]
    if system == "ssd":
        store._store_cold_page = backend0.backing_write  # shared drive
        return
    # Network systems: cold pages land in the pool region.
    if system.startswith("cowbird"):
        handle = backend0.instance.remote_regions[0]
    else:
        handle = backend0.region
    pool_region = deployment.pool_host.registry.by_rkey(handle.rkey)

    def backing_write(offset: int, data: bytes) -> None:
        pool_region.write(handle.translate(offset, len(data)), data)

    store._store_cold_page = backing_write
