"""Table 1: spot pricing and the cost-efficiency argument (Section 2.2)."""

from __future__ import annotations

from repro.cloud.pricing import (
    PRICE_TABLE,
    cost_efficiency_gain,
    format_table,
    spot_discount,
)

__all__ = ["run"]


def run() -> dict:
    """Regenerate Table 1 plus the derived cost analysis."""
    return {
        "rows": [
            {
                "provider": price.provider,
                "instance_type": price.instance_type,
                "on_demand_hourly": price.on_demand_hourly,
                "spot_hourly": price.spot_hourly,
                "discount": spot_discount(price),
            }
            for price in PRICE_TABLE
        ],
        "max_discount": max(spot_discount(p) for p in PRICE_TABLE),
        "efficiency_gain_single_node": {
            p.provider: cost_efficiency_gain(p) for p in PRICE_TABLE
        },
        "efficiency_gain_four_nodes": {
            p.provider: cost_efficiency_gain(p, compute_nodes_served=4)
            for p in PRICE_TABLE
        },
        "rendered": format_table(),
    }
