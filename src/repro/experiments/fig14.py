"""Figure 14: bandwidth of contending TCP flows under Cowbird traffic.

Ten iperf3-style TCP flows run from the compute node toward a third
server with a 25 Gb/s NIC while Cowbird serves 512 B records for 1..8
application threads.  As the paper's worst case, Cowbird's RDMA packets
ride a *higher* priority class than the user traffic.

Where the interference happens: the compute node's egress segment is
shared between TCP data and Cowbird's host-bound protocol traffic (ACKs
for every spoofed write, probe and metadata responses).  Cowbird-P4
sends no batched responses, so every record costs several small
high-priority packets on that segment and TCP loses up to ~30 % of its
bandwidth; Cowbird-Spot amortizes the same traffic across 100-record
batches and its footprint is negligible.  We surface the contention by
capping the shared egress segment at the TCP path's 25 Gb/s (the
paper's third server has a 25 Gb/s NIC) — see DESIGN.md substitutions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import build_microbench
from repro.sim.cpu import CostModel
from repro.sim.network import PRIORITY_HIGH, PRIORITY_NORMAL
from repro.sim.tcp import TcpAckDemux, TcpFlow, TcpSink
from repro.workloads.hashtable import HashTable, HashTableConfig, probe_worker

__all__ = ["Fig14Row", "SYSTEMS", "run"]

SYSTEMS = ("cowbird-p4", "cowbird", "none")
THREAD_COUNTS = (1, 2, 4, 8)
RECORD_BYTES = 512
TCP_FLOWS = 10
SINK_BANDWIDTH_GBPS = 25.0
#: Per-packet cost at the compute NIC's packet engine.
PACKET_ENGINE_NS = 10.0


@dataclass
class Fig14Row:
    system: str
    threads: int
    tcp_gbps: float
    cowbird_mops: float


def _wire_tcp(deployment, sim) -> tuple[list[TcpFlow], TcpSink]:
    """Attach the third server and start the ten contending flows."""
    bed = deployment.bed
    sink_host = bed.add_host("sink", bandwidth_gbps=SINK_BANDWIDTH_GBPS)
    sink = TcpSink(sim, "sink")
    demux = TcpAckDemux()
    sink_host.add_protocol_handler(
        lambda packet, link: sink.receive(packet, link)
    )
    deployment.compute.add_protocol_handler(
        lambda packet, link: demux.receive(packet, link)
    )
    sink.ack_link = sink_host.uplink
    compute_uplink = deployment.compute.uplink
    flows = []
    for _ in range(TCP_FLOWS):
        # GSO/TSO-sized segments, as an iperf3 sender would produce.
        flow = TcpFlow(
            sim, "compute", "sink", compute_uplink,
            segment_bytes=9000, window=16, priority=PRIORITY_NORMAL,
        )
        demux.register_flow(flow)
        sink.register_flow(flow)
        flows.append(flow)
    return flows, sink


def run(
    thread_counts: Sequence[int] = THREAD_COUNTS,
    systems: Sequence[str] = SYSTEMS,
    ops_per_thread: int = 400,
    cost: Optional[CostModel] = None,
    seed: int = 14,
) -> list[Fig14Row]:
    """Regenerate Figure 14 (scaled-down measurement window)."""
    # Emulate FASTER's per-operation application work (Section 8.4 runs
    # FASTER, not the raw microbenchmark): index + log bookkeeping on
    # top of the probe makes per-op app time ~0.5 us.
    cost = cost or CostModel(hash_probe_compute=450.0)
    rows: list[Fig14Row] = []
    for system in systems:
        for threads in thread_counts:
            build_system = "local" if system == "none" else system
            table = HashTable(
                HashTableConfig(
                    num_records=50_000, record_bytes=RECORD_BYTES,
                    ops_per_thread=ops_per_thread, pipeline_depth=256,
                )
            )
            deployment = build_microbench(
                build_system, threads,
                remote_bytes=max(table.remote_bytes_needed(), 1 << 20),
                cost=cost, seed=seed, pipeline_depth=256,
            )
            sim = deployment.sim
            # Worst case: ALL of Cowbird's RDMA above the user traffic
            # (probes included — at lower priority they would starve
            # under a saturating TCP load and stall the protocol).
            if system == "cowbird-p4":
                deployment.engine.config.data_priority = PRIORITY_HIGH
                deployment.engine.config.probe_priority = PRIORITY_HIGH
                for channel in deployment.engine._channels_by_vqpn.values():
                    channel.priority = PRIORITY_HIGH
            elif system == "cowbird":
                deployment.bed.hosts["spot-agent"].nic.config.priority = PRIORITY_HIGH
                deployment.pool_host.nic.config.priority = PRIORITY_HIGH
                deployment.compute.nic.config.priority = PRIORITY_HIGH
            # The shared egress segment: TCP data and Cowbird's
            # host-bound protocol packets contend here at 25 Gb/s with a
            # per-packet engine cost; the data direction stays 100 Gb/s.
            deployment.compute.uplink.bandwidth_gbps = SINK_BANDWIDTH_GBPS
            deployment.compute.uplink.fixed_packet_overhead_ns = PACKET_ENGINE_NS
            flows, sink = _wire_tcp(deployment, sim)
            for flow in flows:
                flow.start()
            processes = []
            if system != "none":
                for i in range(threads):
                    thread = deployment.compute.cpu.thread(f"app-{i}")
                    processes.append(
                        sim.spawn(
                            probe_worker(
                                thread, deployment.backends[i], table, cost,
                                seed=seed + i,
                            )
                        )
                    )
            results = [
                sim.run_until_complete(process, deadline=20e9)
                for process in processes
            ]
            # Measure TCP over the full overlap window.
            window_end = sim.now if results else sim.run(until=400_000)
            for flow in flows:
                flow.stop()
            deployment.close()
            tcp_gbps = sum(flow.achieved_gbps(window_end) for flow in flows)
            total_ops = sum(r.ops for r in results) if results else 0
            elapsed = (
                max(r.finished_at for r in results)
                - min(r.started_at for r in results)
                if results else 1.0
            )
            rows.append(
                Fig14Row(
                    system=system, threads=threads, tcp_gbps=tcp_gbps,
                    cowbird_mops=total_ops / elapsed * 1000.0 if results else 0.0,
                )
            )
    return rows


def format_rows(rows: list[Fig14Row]) -> str:
    threads = sorted({r.threads for r in rows})
    systems = list(dict.fromkeys(r.system for r in rows))
    lines = ["Figure 14: contending TCP bandwidth (Gb/s), 10 flows, 512 B records"]
    lines.append(f"{'system':>12s}" + "".join(f"{t:>9d}" for t in threads))
    for system in systems:
        row = {r.threads: r.tcp_gbps for r in rows if r.system == system}
        lines.append(
            f"{system:>12s}" + "".join(f"{row.get(t, 0.0):>9.2f}" for t in threads)
        )
    return "\n".join(lines)
