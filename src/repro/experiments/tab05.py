"""Table 5: Cowbird-P4's Tofino data-plane resource usage."""

from __future__ import annotations

from repro.cowbird.p4_resources import (
    cowbird_pipeline_units,
    estimate_pipeline_resources,
)

__all__ = ["run"]

#: The paper's reported row for a 32-port L3-forwarding Tofino.
PAPER_ROW = {
    "phv_bits": 1085,
    "sram_kb": 1424,
    "tcam_kb": 1.28,
    "stages": 12,
    "vliw_instructions": 38,
    "stateful_alus": 11,
}


def run() -> dict:
    """Regenerate Table 5 from the pipeline model."""
    estimated = estimate_pipeline_resources()
    bare = estimate_pipeline_resources(cowbird_pipeline_units(l3_forwarding=False))
    return {
        "estimated": {
            "phv_bits": estimated.phv_bits,
            "sram_kb": estimated.sram_kb,
            "tcam_kb": estimated.tcam_kb,
            "stages": estimated.stages,
            "vliw_instructions": estimated.vliw_instructions,
            "stateful_alus": estimated.stateful_alus,
        },
        "paper": dict(PAPER_ROW),
        "fits_tofino": estimated.fits_tofino(),
        "cowbird_only": {
            "sram_kb": bare.sram_kb,
            "stages": bare.stages,
        },
    }
