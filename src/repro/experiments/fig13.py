"""Figure 13: read latency, Cowbird-Spot vs one-sided RDMA.

Median and p99 latency of reading records of 8..2048 bytes from remote
memory, for four configurations:

* synchronous one-sided RDMA (the latency floor for host-driven I/O),
* asynchronous one-sided RDMA with batch-100 pipelining,
* Cowbird without batching (the protocol's inherent extra RTTs: probe
  discovery + bookkeeping updates, minus the cheaper post/poll),
* Cowbird with batching (queueing behind the batch raises the tail, but
  far less than async RDMA's batch-of-100 wait).

The paper's shape: no-batch Cowbird ~= sync RDMA; batched Cowbird's
median stays < 10 us and p99 < 20 us, well under async RDMA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional, Sequence

from repro.experiments.common import build_microbench
from repro.experiments.sweep import SweepPoint, run_sweep
from repro.sim.cpu import CostModel
from repro.sim.trace import LatencyRecorder

__all__ = ["Fig13Row", "SYSTEMS", "measure_latency_point", "run"]

SYSTEMS = ("one-sided", "async", "cowbird-nb", "cowbird")
RECORD_SIZES = (8, 64, 256, 512, 1024, 2048)


@dataclass
class Fig13Row:
    system: str
    record_bytes: int
    median_us: float
    p99_us: float
    samples: int


def _latency_worker(
    thread, backend, record_bytes: int, ops: int, depth: int, recorder: LatencyRecorder
) -> Generator[Any, Any, None]:
    """Time issue->completion under the system's batching discipline.

    ``depth == 1`` is the synchronous discipline (one at a time).  For
    batched systems this reproduces the Section 8.1 configuration the
    paper measures: post a full batch, then poll for its completions —
    which is exactly why batching raises median and tail latency.
    """
    sim = thread.sim
    issue_times: dict[int, float] = {}
    issued = 0
    offset = 0
    while issued < ops:
        batch = min(depth, ops - issued)
        inflight = 0
        for _ in range(batch):
            start = sim.now
            token = yield from backend.issue_read(thread, offset, record_bytes)
            issue_times[token] = start
            offset = (offset + record_bytes) % (1 << 20)
            issued += 1
            inflight += 1
        while inflight > 0:
            tokens = yield from backend.poll_completions(
                thread, max_ret=depth, block=True
            )
            for done in tokens:
                recorder.record(sim.now - issue_times.pop(done))
            inflight -= len(tokens)


def measure_latency_point(
    system: str,
    record_bytes: int,
    ops: int,
    seed: int,
    cost: Optional[CostModel] = None,
) -> Fig13Row:
    """Measure one (system, record size) latency point.

    Registered as the ``latency`` sweep-point kind, so every argument
    except ``cost`` must stay JSON-serializable.
    """
    cost = cost or CostModel()
    # Batching systems measure latency *with* their batching
    # configuration (Section 8.3 keeps the Section 8.1 config).
    depth = 100 if system in ("async", "cowbird") else 1
    deployment = build_microbench(
        system, 1, remote_bytes=1 << 21, cost=cost, seed=seed,
        pipeline_depth=depth,
    )
    recorder = LatencyRecorder()
    thread = deployment.compute.cpu.thread("latency-probe")
    process = deployment.sim.spawn(
        _latency_worker(
            thread, deployment.backends[0], record_bytes, ops, depth, recorder,
        )
    )
    deployment.sim.run_until_complete(process, deadline=120e9)
    deployment.close()
    return Fig13Row(
        system=system, record_bytes=record_bytes,
        median_us=recorder.median_us(), p99_us=recorder.p99_us(),
        samples=recorder.count,
    )


def run(
    record_sizes: Sequence[int] = RECORD_SIZES,
    systems: Sequence[str] = SYSTEMS,
    ops: int = 300,
    cost: Optional[CostModel] = None,
    seed: int = 13,
    parallel: int = 0,
    cache_dir: Optional[str] = None,
) -> list[Fig13Row]:
    """Regenerate Figure 13: one thread, per-record-size latency.

    ``parallel >= 1`` routes the grid through the deterministic sweep
    harness; ``0`` keeps the legacy inline loop.
    """
    grid = [
        (system, record_bytes)
        for system in systems
        for record_bytes in record_sizes
    ]
    if parallel >= 1 and cost is None:
        points = [
            SweepPoint("latency", dict(
                system=system, record_bytes=record_bytes, ops=ops, seed=seed,
            ))
            for system, record_bytes in grid
        ]
        return run_sweep(points, parallel=parallel, cache_dir=cache_dir)
    cost = cost or CostModel()
    return [
        measure_latency_point(system, record_bytes, ops, seed, cost=cost)
        for system, record_bytes in grid
    ]


def format_rows(rows: list[Fig13Row]) -> str:
    sizes = sorted({r.record_bytes for r in rows})
    systems = list(dict.fromkeys(r.system for r in rows))
    lines = ["Figure 13: read latency by record size — median (p99), microseconds"]
    lines.append(f"{'system':>12s}" + "".join(f"{s:>16d}" for s in sizes))
    for system in systems:
        cells = []
        for size in sizes:
            row = next(
                (r for r in rows if r.system == system and r.record_bytes == size),
                None,
            )
            cells.append(
                f"{row.median_us:>7.1f} ({row.p99_us:>5.1f})" if row else " " * 16
            )
        lines.append(f"{system:>12s}" + "".join(f"{c:>16s}" for c in cells))
    return "\n".join(lines)
