"""Deterministic sweep harness: run experiment points serially or in parallel.

The paper's figures are sweeps over a grid of independent simulations —
(system, threads, record size, ...) points that share nothing at run
time.  This module turns such a grid into a list of :class:`SweepPoint`
specs and executes them either inline or across a ``multiprocessing``
pool, with three invariants:

* **Determinism.**  Each point is fully described by JSON-serializable
  kwargs (including its seed); a point's result depends on nothing else.
  Results are returned in submission order no matter how workers
  interleave, and per-point telemetry snapshots are merged back in that
  same order, so ``--parallel N`` output is byte-identical to
  ``--parallel 1`` (pinned by ``tests/test_sweep.py``).
* **Telemetry isolation.**  Every point runs under its own fresh
  :class:`~repro.telemetry.Telemetry`; the harness folds the per-point
  metric snapshots into the caller's active telemetry afterwards via
  :meth:`MetricsRegistry.merge_snapshot` and records one summary span
  covering the longest point, so ``--json`` metadata and ``--metrics``
  keep working unchanged.
* **Caching.**  With ``cache_dir`` set, each point's result is stored
  on disk keyed by a SHA-256 over (repro version, point kind, sorted
  kwargs).  A warm cache replays the identical results, so cached and
  fresh runs produce the same bytes.

Points name their entry function by *kind* (a registry of dotted paths,
resolved lazily to avoid import cycles with the figure modules) rather
than by function object, which keeps specs picklable and cache keys
stable.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import multiprocessing
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro import __version__, telemetry
from repro.analysis.sanitizer import sanitize_enabled

__all__ = ["SweepPoint", "run_sweep", "sweep_cache_key"]

#: Registered point kinds: kind -> (module, attribute).  Resolved lazily
#: so figure modules can import this one without a cycle.
_POINT_KINDS: dict[str, tuple[str, str]] = {
    "microbench": ("repro.experiments.common", "run_microbench"),
    "faster": ("repro.experiments.faster_bench", "run_faster_bench"),
    "latency": ("repro.experiments.fig13", "measure_latency_point"),
}


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation in a sweep.

    ``kwargs`` must be JSON-serializable (they feed the cache key and
    cross the process boundary); anything heavier — cost models, table
    objects — is built inside the point function from these kwargs.
    """

    kind: str
    kwargs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _POINT_KINDS:
            raise ValueError(
                f"unknown sweep point kind {self.kind!r}; "
                f"pick from {sorted(_POINT_KINDS)}"
            )


def _resolve(kind: str) -> Callable:
    module_name, attr = _POINT_KINDS[kind]
    return getattr(importlib.import_module(module_name), attr)


def _execute_point(spec: tuple[str, dict, bool]) -> tuple[Any, Optional[dict], float]:
    """Run one point under its own telemetry; the pool's map target.

    Returns ``(result, metrics_snapshot, last_timestamp_ns)``; the
    snapshot is ``None`` when collection is off.
    """
    kind, kwargs, collect = spec
    fn = _resolve(kind)
    if collect:
        tel = telemetry.Telemetry()
        with telemetry.activate(tel):
            result = fn(**kwargs)
        return result, tel.snapshot(), tel.tracer.last_timestamp_ns()
    with telemetry.activate(telemetry.NULL_TELEMETRY):
        result = fn(**kwargs)
    return result, None, 0.0


def sweep_cache_key(kind: str, kwargs: dict, collect: bool) -> str:
    """Stable cache key: SHA-256 over version + kind + sorted kwargs.

    Sanitized runs key separately (their snapshots carry ``sim.digest``
    gauges); the flag is only added when on, so pre-existing cache
    entries stay valid for default runs.
    """
    payload = {
        "repro_version": __version__,
        "kind": kind,
        "kwargs": kwargs,
        "collect": collect,
    }
    if sanitize_enabled():
        payload["sanitize"] = True
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def _cache_load(cache_dir: str, key: str):
    path = os.path.join(cache_dir, key + ".pkl")
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except (OSError, pickle.PickleError, EOFError):
        return None


def _cache_store(cache_dir: str, key: str, value) -> None:
    os.makedirs(cache_dir, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(value, handle)
        os.replace(tmp_path, os.path.join(cache_dir, key + ".pkl"))
    except OSError:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass


def run_sweep(
    points: Sequence[SweepPoint],
    parallel: int = 1,
    cache_dir: Optional[str] = None,
) -> list[Any]:
    """Execute ``points`` and return their results in submission order.

    ``parallel`` is the worker-process count; ``1`` runs every point
    inline (same code path, no pool).  With ``cache_dir`` set, cached
    points are replayed from disk and fresh ones stored after running.
    Per-point metric snapshots are merged into the caller's active
    telemetry in submission order, and one ``sweep.points`` span is
    recorded whose end is the longest per-point sim time, so
    ``Tracer.last_timestamp_ns()`` reports the sweep's sim duration.
    """
    parent = telemetry.current()
    collect = parent is not None and parent.enabled
    specs = [(p.kind, p.kwargs, collect) for p in points]

    triples: list[Optional[tuple]] = [None] * len(specs)
    pending: list[int] = []
    if cache_dir is not None:
        keys = [sweep_cache_key(*spec) for spec in specs]
        for i, key in enumerate(keys):
            triples[i] = _cache_load(cache_dir, key)
            if triples[i] is None:
                pending.append(i)
    else:
        keys = []
        pending = list(range(len(specs)))

    if pending:
        if parallel > 1 and len(pending) > 1:
            with multiprocessing.Pool(processes=min(parallel, len(pending))) as pool:
                fresh = pool.map(
                    _execute_point, [specs[i] for i in pending], chunksize=1
                )
        else:
            fresh = [_execute_point(specs[i]) for i in pending]
        for i, triple in zip(pending, fresh):
            triples[i] = triple
            if cache_dir is not None:
                _cache_store(cache_dir, keys[i], triple)

    results = []
    last_ns = 0.0
    for triple in triples:
        result, snapshot, point_last_ns = triple
        results.append(result)
        if collect and snapshot is not None:
            parent.metrics.merge_snapshot(snapshot)
        if point_last_ns > last_ns:
            last_ns = point_last_ns
    if collect:
        parent.complete(
            "sweep.points", 0.0, last_ns, process="sweep", points=len(points)
        )
    return results
