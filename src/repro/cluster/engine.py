"""The ``OffloadEngine`` protocol: what every engine owes the cluster.

The paper's core abstraction (Sections 4-6) is "an offload engine
issues RDMA on behalf of compute nodes".  Concretely that means four
obligations, and nothing more:

* ``register_instance(instance, pool_hosts)`` — Phase I setup: absorb
  one client instance's descriptor and wire channels/QPs to every
  memory-pool node its remote regions live on;
* ``start()`` — begin Phase II probing (and any timeout scanning);
* ``stop()`` — halt recurring work so a finished deployment leaks no
  sim events; idempotent;
* ``stats_snapshot()`` — flat dict of engine counters for reporting.

``CowbirdP4Engine`` (switch pipeline) and ``CowbirdSpotEngine``
(harvested-CPU agent) both satisfy this protocol, so experiments, the
scenario runner, and the sweep harness never touch engine-specific
wiring.  The protocol is ``runtime_checkable`` for conformance tests;
third-party engines need only duck-type it.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["OffloadEngine"]


@runtime_checkable
class OffloadEngine(Protocol):
    """Structural interface implemented by every offload engine."""

    def register_instance(self, instance, pool_hosts: dict) -> None:
        """Phase I: install one client instance.

        ``pool_hosts`` maps pool node name -> :class:`~repro.testbed.Host`
        for every memory pool referenced by the instance's remote
        regions (a sharded region references several).
        """
        ...

    def start(self) -> None:
        """Begin Phase II probing; raises if already started."""
        ...

    def stop(self) -> None:
        """Halt recurring engine work.  Idempotent."""
        ...

    def stats_snapshot(self) -> dict:
        """Flat dict of engine counters (JSON-serializable)."""
        ...
