"""``ScenarioSpec``: declarative description of one deployment + workload.

A scenario file (JSON or TOML) names a system from the
:class:`~repro.cluster.registry.SystemRegistry` and describes the
topology around it — compute-host shape, link parameters, memory pool
(including striping over N shards), engine config overrides — plus the
hash-table workload to drive.  ``repro run scenario <file>`` loads,
validates, and runs it; ``--validate-only`` stops after validation.

Serialization is stable: ``to_dict`` emits every field in declaration
order and ``to_json`` sorts keys, so a round-tripped spec is
byte-identical and diffs are meaningful.

TOML loading uses :mod:`tomllib` where available (Python >= 3.11) and
falls back to a small parser covering the subset scenario files need
(``[section]`` tables including dotted names, string/int/float/bool
values, comments).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.cluster.registry import SYSTEMS

__all__ = [
    "EngineSpec",
    "HostSpec",
    "LinkSpec",
    "PoolSpec",
    "ScenarioError",
    "ScenarioSpec",
    "WorkloadSpec",
    "load_scenario",
]


class ScenarioError(ValueError):
    """A scenario file is malformed or internally inconsistent."""


@dataclass
class HostSpec:
    """Shape of the compute host (Section 7: Xeon Silver 4110 default)."""

    cpu_cores: int = 8
    smt: int = 2


@dataclass
class LinkSpec:
    """Per-testbed link parameters; ``None`` defers to the cost model."""

    bandwidth_gbps: Optional[float] = None
    propagation_delay_ns: Optional[float] = None


@dataclass
class PoolSpec:
    """The memory pool: one host, or a region striped over N shards."""

    shards: int = 1
    capacity_bytes: Optional[int] = None


@dataclass
class EngineSpec:
    """Offload-engine tuning: field overrides for the engine config."""

    config: dict = field(default_factory=dict)


@dataclass
class WorkloadSpec:
    """The Section 8.1 hash-table probe loop parameters."""

    threads: int = 1
    record_bytes: int = 256
    ops_per_thread: int = 1_000
    num_records: int = 100_000
    local_fraction: float = 0.05
    pipeline_depth: int = 100


@dataclass
class ScenarioSpec:
    """One complete, runnable deployment description."""

    name: str
    system: str
    seed: int = 0
    compute: HostSpec = field(default_factory=HostSpec)
    link: LinkSpec = field(default_factory=LinkSpec)
    pool: PoolSpec = field(default_factory=PoolSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ScenarioError` unless the spec is runnable."""
        if not self.name:
            raise ScenarioError("scenario needs a non-empty name")
        if self.system not in SYSTEMS:
            raise ScenarioError(
                f"unknown system {self.system!r}; pick from {SYSTEMS.names()}"
            )
        if self.compute.cpu_cores < 1:
            raise ScenarioError("compute.cpu_cores must be >= 1")
        if self.compute.smt < 1:
            raise ScenarioError("compute.smt must be >= 1")
        if self.pool.shards < 1:
            raise ScenarioError("pool.shards must be >= 1")
        if self.pool.shards > 1 and not SYSTEMS.supports_sharding(self.system):
            raise ScenarioError(
                f"system {self.system!r} does not support sharded pools"
            )
        if self.engine.config and not self.system.startswith("cowbird"):
            raise ScenarioError(
                "engine.config overrides only apply to cowbird systems"
            )
        wl = self.workload
        if wl.threads < 1:
            raise ScenarioError("workload.threads must be >= 1")
        if wl.threads > self.compute.cpu_cores * self.compute.smt:
            raise ScenarioError(
                f"workload.threads={wl.threads} exceeds compute capacity "
                f"({self.compute.cpu_cores} cores x {self.compute.smt} SMT)"
            )
        if wl.record_bytes < 1:
            raise ScenarioError("workload.record_bytes must be >= 1")
        if wl.ops_per_thread < 1:
            raise ScenarioError("workload.ops_per_thread must be >= 1")
        if wl.num_records < 1:
            raise ScenarioError("workload.num_records must be >= 1")
        if not 0.0 <= wl.local_fraction <= 1.0:
            raise ScenarioError("workload.local_fraction must be in [0, 1]")
        if wl.pipeline_depth < 1:
            raise ScenarioError("workload.pipeline_depth must be >= 1")
        if self.link.bandwidth_gbps is not None and self.link.bandwidth_gbps <= 0:
            raise ScenarioError("link.bandwidth_gbps must be > 0")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Build a spec, rejecting unknown keys (typo protection)."""
        if not isinstance(data, dict):
            raise ScenarioError(f"scenario must be a table, got {type(data).__name__}")
        sections = {
            "compute": HostSpec,
            "link": LinkSpec,
            "pool": PoolSpec,
            "engine": EngineSpec,
            "workload": WorkloadSpec,
        }
        kwargs = {}
        for key, value in data.items():
            if key in sections:
                kwargs[key] = _build_section(sections[key], key, value)
            elif key in ("name", "system", "seed"):
                kwargs[key] = value
            else:
                raise ScenarioError(f"unknown scenario key {key!r}")
        for required in ("name", "system"):
            if required not in kwargs:
                raise ScenarioError(f"scenario is missing {required!r}")
        return cls(**kwargs)


def _build_section(section_cls, section_name: str, value: dict):
    if not isinstance(value, dict):
        raise ScenarioError(f"[{section_name}] must be a table")
    known = {f.name for f in dataclasses.fields(section_cls)}
    unknown = set(value) - known
    if unknown:
        raise ScenarioError(
            f"unknown key(s) in [{section_name}]: {sorted(unknown)}"
        )
    return section_cls(**value)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_scenario(path) -> ScenarioSpec:
    """Load and parse a ``.json`` or ``.toml`` scenario file."""
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"{path}: invalid JSON: {exc}") from exc
    elif path.suffix == ".toml":
        data = _load_toml(text, str(path))
    else:
        raise ScenarioError(
            f"{path}: unsupported scenario format {path.suffix!r} "
            "(expected .json or .toml)"
        )
    try:
        return ScenarioSpec.from_dict(data)
    except ScenarioError as exc:
        raise ScenarioError(f"{path}: {exc}") from exc


def _load_toml(text: str, origin: str) -> dict:
    try:
        import tomllib
    except ImportError:  # Python 3.10: use the fallback subset parser
        return _parse_toml_subset(text, origin)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ScenarioError(f"{origin}: invalid TOML: {exc}") from exc


def _parse_toml_subset(text: str, origin: str) -> dict:
    """Parse the TOML subset scenario files use.

    Supports ``[section]`` / ``[dotted.section]`` tables, ``key = value``
    pairs with string/int/float/bool values, blank lines, and ``#``
    comments.  Deliberately tiny — real TOML is handled by tomllib.
    """
    root: dict = {}
    table = root
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            table = root
            for part in line[1:-1].strip().split("."):
                table = table.setdefault(part.strip(), {})
            continue
        if "=" not in line:
            raise ScenarioError(f"{origin}:{lineno}: expected 'key = value'")
        key, _, value = line.partition("=")
        table[key.strip()] = _parse_toml_value(value.strip(), origin, lineno)
    return root


def _parse_toml_value(token: str, origin: str, lineno: int):
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return token[1:-1]
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        return int(token.replace("_", ""))
    except ValueError:
        pass
    try:
        return float(token.replace("_", ""))
    except ValueError:
        pass
    raise ScenarioError(f"{origin}:{lineno}: cannot parse value {token!r}")
