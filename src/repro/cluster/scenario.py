"""Build and run deployments described by :class:`ScenarioSpec`.

This is the execution half of the declarative layer: a validated spec
becomes a :class:`~repro.experiments.common.MicrobenchDeployment`
(testbed with the spec's link parameters, compute host with the spec's
shape, system resolved through the registry — including sharded pools
and engine-config overrides) and then runs the same Section 8.1 probe
workload the figures use, so a scenario that mirrors a figure point
reproduces its numbers exactly.

Kept out of ``repro.cluster.__init__``: this module imports the
experiment harness, which itself builds through the cluster registry.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.registry import SYSTEMS, BuildContext
from repro.cluster.spec import ScenarioSpec
from repro.sim.cpu import CostModel
from repro.testbed import Testbed

__all__ = ["build_scenario", "run_scenario"]


def _make_table(spec: ScenarioSpec):
    from repro.workloads.hashtable import HashTable, HashTableConfig

    wl = spec.workload
    return HashTable(
        HashTableConfig(
            num_records=wl.num_records,
            record_bytes=wl.record_bytes,
            local_fraction=wl.local_fraction,
            ops_per_thread=wl.ops_per_thread,
            pipeline_depth=wl.pipeline_depth,
        )
    )


def build_scenario(
    spec: ScenarioSpec,
    cost: Optional[CostModel] = None,
    remote_bytes: Optional[int] = None,
):
    """Assemble the deployment a spec describes (without running it)."""
    from repro.experiments.common import MicrobenchDeployment

    spec.validate()
    cost = cost or CostModel()
    if remote_bytes is None:
        remote_bytes = max(_make_table(spec).remote_bytes_needed(), 1 << 16)
    bed = Testbed(
        seed=spec.seed,
        cost=cost,
        bandwidth_gbps=spec.link.bandwidth_gbps,
        propagation_delay_ns=spec.link.propagation_delay_ns,
    )
    compute = bed.add_host(
        "compute", cpu_cores=spec.compute.cpu_cores, smt=spec.compute.smt
    )
    built = SYSTEMS.build(
        spec.system,
        BuildContext(
            bed=bed, compute=compute, threads=spec.workload.threads,
            remote_bytes=remote_bytes, cost=cost,
            pipeline_depth=spec.workload.pipeline_depth,
            pool_shards=spec.pool.shards,
            engine_config=dict(spec.engine.config),
        ),
    )
    return MicrobenchDeployment(
        system=spec.system, bed=bed, compute=compute, backends=built.backends,
        pool_host=built.pool_host, engine=built.engine, pool=built.pool,
        pool_hosts=dict(built.pool_hosts),
    )


def run_scenario(
    spec: ScenarioSpec,
    cost: Optional[CostModel] = None,
    deadline_ns: float = 60e9,
):
    """Run a scenario end-to-end; returns a ``MicrobenchResult``."""
    from repro.experiments.common import drive_probe_workload

    cost = cost or CostModel()
    table = _make_table(spec)
    remote_bytes = max(table.remote_bytes_needed(), 1 << 16)
    deployment = build_scenario(spec, cost=cost, remote_bytes=remote_bytes)
    return drive_probe_workload(
        deployment, table, cost, seed=spec.seed, deadline_ns=deadline_ns
    )
