"""Builders for all ten evaluation systems, registered by legend name.

Each function is a faithful transcription of one branch of the old
``build_microbench`` if/elif ladder — the construction *order* (hosts,
QPs, engines, regions) is part of the simulator's deterministic
contract, so builders must not reorder steps.  Registration order here
defines ``MICROBENCH_SYSTEMS``.

The cowbird builders additionally understand ``ctx.pool_shards > 1``:
the benchmark region is then striped over N pool hosts via
:class:`~repro.memory.pool.ShardedPool`, each shard registered as its
own remote region, with the engine wiring one channel per pool node
(both engines already speak per-node channels/QPs).
"""

from __future__ import annotations

from repro.baselines import (
    AifmBackend,
    AifmConfig,
    LocalMemoryBackend,
    OneSidedAsyncBackend,
    OneSidedSyncBackend,
    RedyBackend,
    RedyConfig,
    SsdBackend,
    TwoSidedSyncBackend,
)
from repro.baselines.backends import CowbirdBackend
from repro.cluster.registry import BuildContext, BuiltSystem, register_system
from repro.cowbird.api import CowbirdClient, CowbirdConfig
from repro.cowbird.p4_engine import CowbirdP4Engine, P4EngineConfig
from repro.cowbird.spot_engine import CowbirdSpotEngine, SpotEngineConfig
from repro.memory.pool import ShardedPool

__all__ = []  # systems are reached through the registry, not imports


def _setup_pool(ctx: BuildContext):
    """One pool host serving the benchmark region (the common case)."""
    pool_host, pool = ctx.bed.add_pool("pool")
    handle = pool.allocate_region(ctx.remote_bytes, name="bench-remote")
    built = BuiltSystem(
        backends=[], pool_host=pool_host, pool=pool,
        pool_hosts={pool.node: pool_host},
    )
    return built, handle


@register_system("local")
def build_local(ctx: BuildContext) -> BuiltSystem:
    return BuiltSystem(
        backends=[LocalMemoryBackend(ctx.cost) for _ in range(ctx.threads)]
    )


@register_system("two-sided")
def build_two_sided(ctx: BuildContext) -> BuiltSystem:
    built, handle = _setup_pool(ctx)
    # Two-sided RPC burns pool CPU: one busy-polling server thread per
    # connection (they spin, so each needs a core).
    from repro.sim.cpu import CPU

    built.pool_host.cpu = CPU(
        ctx.sim, physical_cores=max(2, ctx.threads), smt=1, cost_model=ctx.cost
    )
    for _ in range(ctx.threads):
        qp_c, qp_p = ctx.bed.connect_qps(ctx.compute, built.pool_host)
        built.backends.append(
            TwoSidedSyncBackend(ctx.compute, built.pool_host, qp_c, qp_p, handle)
        )
    return built


@register_system("one-sided")
def build_one_sided(ctx: BuildContext) -> BuiltSystem:
    built, handle = _setup_pool(ctx)
    for _ in range(ctx.threads):
        qp_c, _qp_p = ctx.bed.connect_qps(ctx.compute, built.pool_host)
        built.backends.append(OneSidedSyncBackend(ctx.compute, qp_c, handle))
    return built


@register_system("async")
def build_async(ctx: BuildContext) -> BuiltSystem:
    built, handle = _setup_pool(ctx)
    for _ in range(ctx.threads):
        qp_c, _qp_p = ctx.bed.connect_qps(ctx.compute, built.pool_host)
        built.backends.append(
            OneSidedAsyncBackend(
                ctx.compute, qp_c, handle, batch=ctx.pipeline_depth
            )
        )
    return built


def _build_cowbird(ctx: BuildContext, engine_factory) -> BuiltSystem:
    """Shared Phase I wiring for all three Cowbird variants.

    ``engine_factory(ctx)`` runs *after* instances are created (the
    spot agent host must join the testbed at that exact point to keep
    construction order, and thus sim behavior, identical to the
    pre-registry ladder).
    """
    if ctx.pool_shards > 1:
        pools = []
        pool_hosts = {}
        for i in range(ctx.pool_shards):
            host, shard_pool = ctx.bed.add_pool(f"pool{i}")
            pools.append(shard_pool)
            pool_hosts[shard_pool.node] = host
        pool = ShardedPool(pools)
        sharded = pool.allocate_region(ctx.remote_bytes, name="bench-remote")
        handles = sharded.shards
        primary_host = pool_hosts[pools[0].node]
    else:
        built, handle = _setup_pool(ctx)
        pool = built.pool
        pool_hosts = built.pool_hosts
        primary_host = built.pool_host
        sharded = None
        handles = (handle,)
    client = CowbirdClient(ctx.compute, CowbirdConfig())
    for handle in handles:
        client.register_remote_region(handle)
    instances = [client.create_instance() for _ in range(ctx.threads)]
    engine = engine_factory(ctx)
    for instance in instances:
        engine.register_instance(instance, pool_hosts)
    engine.start()
    backends = [
        CowbirdBackend(
            instance, pending_limit=ctx.pipeline_depth, sharded=sharded
        )
        for instance in instances
    ]
    return BuiltSystem(
        backends=backends, pool_host=primary_host, pool=pool,
        engine=engine, pool_hosts=pool_hosts,
    )


def _spot_engine_factory(base_config: dict):
    def factory(ctx: BuildContext) -> CowbirdSpotEngine:
        agent = ctx.bed.add_host("spot-agent", cpu_cores=1, smt=2)
        config = SpotEngineConfig(**{**base_config, **ctx.engine_config})
        return CowbirdSpotEngine(agent, config)

    return factory


@register_system("cowbird-nb", sharded=True)
def build_cowbird_nb(ctx: BuildContext) -> BuiltSystem:
    # "Batching disabled": every read response is written back
    # individually, and doorbell batching is restricted, so per-request
    # verb overhead returns (Section 6).
    return _build_cowbird(
        ctx, _spot_engine_factory({"batch_size": 1, "max_post_batch": 8})
    )


@register_system("cowbird", sharded=True)
def build_cowbird(ctx: BuildContext) -> BuiltSystem:
    return _build_cowbird(ctx, _spot_engine_factory({"batch_size": 100}))


@register_system("cowbird-p4", sharded=True)
def build_cowbird_p4(ctx: BuildContext) -> BuiltSystem:
    def factory(ctx: BuildContext) -> CowbirdP4Engine:
        config = P4EngineConfig(**ctx.engine_config)
        return CowbirdP4Engine(ctx.sim, ctx.bed.switch, config)

    return _build_cowbird(ctx, factory)


@register_system("redy")
def build_redy(ctx: BuildContext) -> BuiltSystem:
    built, handle = _setup_pool(ctx)
    io_threads = max(1, -(-ctx.threads // 4))
    qp_pairs = [
        ctx.bed.connect_qps(ctx.compute, built.pool_host)
        for _ in range(io_threads)
    ]
    shared = RedyBackend(
        ctx.compute, built.pool_host, handle, qp_pairs,
        RedyConfig(io_threads=io_threads),
    )
    built.backends = [shared] * ctx.threads
    return built


@register_system("aifm")
def build_aifm(ctx: BuildContext) -> BuiltSystem:
    built, handle = _setup_pool(ctx)
    shared = AifmBackend(ctx.compute, built.pool_host, handle, AifmConfig())
    built.backends = [shared] * ctx.threads
    return built


@register_system("ssd")
def build_ssd(ctx: BuildContext) -> BuiltSystem:
    shared = SsdBackend(ctx.compute)
    return BuiltSystem(backends=[shared] * ctx.threads)
