"""The cluster layer: declarative deployments for every experiment.

Three pieces (ISSUE 4 / DESIGN.md "Cluster layer"):

* :class:`~repro.cluster.spec.ScenarioSpec` — dataclasses loadable from
  JSON/TOML describing hosts, links, memory pools (including
  :class:`~repro.memory.pool.ShardedPool` striping), engines, and the
  workload; run them with ``repro run scenario <file>``;
* :class:`~repro.cluster.registry.SystemRegistry` — pluggable builders
  keyed by legend name; importing this package registers all ten
  evaluation systems (``repro.cluster.builders``);
* :class:`~repro.cluster.engine.OffloadEngine` — the protocol both
  Cowbird engines implement so nothing outside the engine modules
  touches engine-specific wiring.

The scenario *runner* lives in :mod:`repro.cluster.scenario` (imported
lazily by the CLI — it depends on the experiment harness, which in turn
builds through this package's registry).
"""

from repro.cluster.engine import OffloadEngine
from repro.cluster.registry import (
    SYSTEMS,
    BuildContext,
    BuiltSystem,
    SystemRegistry,
    register_system,
)
from repro.cluster import builders as _builders  # populate SYSTEMS
from repro.cluster.spec import (
    EngineSpec,
    HostSpec,
    LinkSpec,
    PoolSpec,
    ScenarioError,
    ScenarioSpec,
    WorkloadSpec,
    load_scenario,
)

del _builders

__all__ = [
    "BuildContext",
    "BuiltSystem",
    "EngineSpec",
    "HostSpec",
    "LinkSpec",
    "OffloadEngine",
    "PoolSpec",
    "ScenarioError",
    "ScenarioSpec",
    "SYSTEMS",
    "SystemRegistry",
    "WorkloadSpec",
    "load_scenario",
    "register_system",
]
