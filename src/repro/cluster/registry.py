"""``SystemRegistry``: pluggable builders for every system-under-test.

Each baseline and Cowbird variant registers a builder function keyed by
its legend name (``local``, ``two-sided``, ..., ``cowbird-p4``); the
experiment harness resolves systems through the registry instead of an
``if system == ...`` ladder.  Adding a third-party backend is one
decorator::

    from repro.cluster import register_system, BuildContext, BuiltSystem

    @register_system("my-system")
    def build_my_system(ctx: BuildContext) -> BuiltSystem:
        backend = MyBackend(ctx.compute, ...)
        return BuiltSystem(backends=[backend] * ctx.threads)

Builders receive a :class:`BuildContext` (testbed, compute host, thread
count, sizing) and return a :class:`BuiltSystem` (per-thread backends
plus whatever pool hosts/engine they assembled).  Registration order is
preserved — ``SYSTEMS.names()`` is the canonical legend order used by
``MICROBENCH_SYSTEMS``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.cpu import CostModel
from repro.testbed import Host, Testbed

__all__ = [
    "BuildContext",
    "BuiltSystem",
    "SystemRegistry",
    "SYSTEMS",
    "register_system",
]


@dataclass
class BuildContext:
    """Everything a system builder may consume.

    The harness constructs the testbed and compute host *before*
    dispatching to the builder so every system sees an identical
    simulator prologue (determinism depends on construction order).
    """

    bed: Testbed
    compute: Host
    threads: int
    remote_bytes: int
    cost: CostModel
    pipeline_depth: int = 100
    #: Stripe the benchmark region over this many pool hosts (cowbird
    #: systems only; everything else requires the default of 1).
    pool_shards: int = 1
    #: Field overrides applied to the engine's config dataclass
    #: (e.g. ``{"batch_size": 32}`` for the spot engine).
    engine_config: dict = field(default_factory=dict)

    @property
    def sim(self):
        return self.bed.sim


@dataclass
class BuiltSystem:
    """What a builder hands back to the harness."""

    backends: list
    pool_host: Optional[Host] = None
    pool: Optional[object] = None  # MemoryPool or ShardedPool
    engine: Optional[object] = None  # satisfies OffloadEngine when set
    #: Pool node name -> Host, for engines and pool-side assertions.
    pool_hosts: dict = field(default_factory=dict)


class SystemRegistry:
    """Ordered name -> builder mapping with sharding capability flags."""

    def __init__(self) -> None:
        self._builders: dict[str, Callable[[BuildContext], BuiltSystem]] = {}
        self._sharded: set[str] = set()

    def register(
        self, name: str, sharded: bool = False
    ) -> Callable[[Callable], Callable]:
        """Decorator registering ``fn`` as the builder for ``name``."""

        def decorator(fn: Callable[[BuildContext], BuiltSystem]) -> Callable:
            if name in self._builders:
                raise ValueError(f"system {name!r} already registered")
            self._builders[name] = fn
            if sharded:
                self._sharded.add(name)
            return fn

        return decorator

    def __contains__(self, name: str) -> bool:
        return name in self._builders

    def names(self) -> tuple[str, ...]:
        """All registered systems, in registration (legend) order."""
        return tuple(self._builders)

    def supports_sharding(self, name: str) -> bool:
        return name in self._sharded

    def build(self, name: str, ctx: BuildContext) -> BuiltSystem:
        """Resolve and run the builder for ``name``."""
        builder = self._builders.get(name)
        if builder is None:
            raise ValueError(
                f"unknown system {name!r}; pick from {self.names()}"
            )
        if ctx.pool_shards > 1 and name not in self._sharded:
            raise ValueError(
                f"system {name!r} does not support sharded pools "
                f"(pool_shards={ctx.pool_shards})"
            )
        return builder(ctx)


#: The process-wide registry; importing :mod:`repro.cluster` populates
#: it with all ten evaluation systems.
SYSTEMS = SystemRegistry()

#: Module-level decorator bound to the default registry.
register_system = SYSTEMS.register
