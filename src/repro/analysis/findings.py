"""Finding records emitted by the ``simcheck`` static pass.

A :class:`Finding` pins one rule violation to a ``path:line:col``
location and carries the rule code, a human message, and a fix hint.
Findings serialize to plain dicts so ``repro lint --json`` output is
stable and machine-diffable.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable

__all__ = ["Finding", "findings_to_json", "format_findings"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict:
        return asdict(self)


def findings_to_json(findings: Iterable[Finding]) -> str:
    """Stable JSON document for ``repro lint --json``."""
    payload = [finding.to_dict() for finding in findings]
    return json.dumps(payload, indent=2, sort_keys=True)


def format_findings(findings: Iterable[Finding]) -> str:
    """Human-readable report, one block per finding."""
    findings = list(findings)
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"simcheck: {len(findings)} {noun}")
    return "\n".join(lines)
