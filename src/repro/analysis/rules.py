"""Pluggable AST rules for the ``simcheck`` static pass.

Each rule inspects one parsed module and yields :class:`Finding`
records.  Rules are deliberately flow-insensitive heuristics: they are
tuned to the idioms this codebase actually uses (see DESIGN.md
§"Correctness tooling"), and every one can be silenced in place with a
``# simcheck: ignore[SIMxxx]`` comment on the offending line.

Rule inventory:

=======  ==============================================================
SIM001   wall-clock reads (``time.time``/``time.monotonic``/argless
         ``datetime.now``) inside sim-path modules
SIM002   unseeded randomness (``random.random()``, ``random.Random()``
         with no seed, any module-level ``random.*`` call)
SIM003   iteration over ``set``/``dict.keys()`` whose body schedules
         events (``schedule``/``call_at``/``call_at_cancellable``)
SIM004   a cancellable-timer token stored on ``self`` that no method of
         the class ever ``.cancel()``s, or discarded outright
SIM005   pool ``acquire``/``get``/``alloc`` in a class with no matching
         ``release``/``recycle`` anywhere in that class
SIM006   bare ``except:`` or ``except Exception:`` that swallows the
         error (no re-raise, bound name unused)
=======  ==============================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.analysis.findings import Finding

__all__ = ["FileContext", "RULES", "Rule", "register_rule"]


@dataclass
class FileContext:
    """One module as seen by the rules."""

    path: str
    source: str
    tree: ast.Module
    #: False when the module is allowlisted for wall-clock use
    #: (``cli.py``, ``benchmarks/``) — SIM001 skips it.
    sim_path: bool = True


class Rule:
    """Base class: subclasses set ``code``/``summary``/``hint``."""

    code: str = ""
    summary: str = ""
    hint: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: Optional[str] = None,
        hint: Optional[str] = None,
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message if message is not None else self.summary,
            hint=hint if hint is not None else self.hint,
        )


#: code -> rule instance, populated by :func:`register_rule`.
RULES: Dict[str, Rule] = {}


def register_rule(cls):
    """Class decorator: instantiate and index the rule by its code."""
    rule = cls()
    if not rule.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return cls


def _call_name(node: ast.Call) -> Optional[str]:
    """Trailing name of the called function: ``a.b.c()`` -> ``c``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _attr_chain(node: ast.AST) -> List[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; empty for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


@register_rule
class WallClockRule(Rule):
    """SIM001: wall-clock reads leak host time into simulated time."""

    code = "SIM001"
    summary = "wall-clock read in sim-path code"
    hint = (
        "use the simulator clock (sim.now) or move the timing out of the "
        "sim path; allowlisted modules: cli.py, benchmarks/"
    )

    _TIME_ATTRS = {
        "time", "monotonic", "perf_counter",
        "time_ns", "monotonic_ns", "perf_counter_ns",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.sim_path:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) == 2 and chain[0] == "time" and chain[1] in self._TIME_ATTRS:
                yield self.finding(
                    ctx, node, message=f"wall-clock call time.{chain[1]}() in sim-path code"
                )
            elif (
                chain
                and chain[-1] == "now"
                and "datetime" in chain[:-1]
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    ctx, node, message="wall-clock call datetime.now() in sim-path code"
                )


@register_rule
class UnseededRandomRule(Rule):
    """SIM002: the shared module-level RNG breaks run-to-run determinism."""

    code = "SIM002"
    summary = "unseeded randomness"
    hint = "construct random.Random(seed) with an explicit per-run seed"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) == 2 and chain[0] == "random":
                if chain[1] == "Random":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx, node,
                            message="random.Random() constructed without a seed",
                        )
                elif chain[1] == "SystemRandom":
                    continue
                else:
                    yield self.finding(
                        ctx, node,
                        message=(
                            f"module-level random.{chain[1]}() uses the shared "
                            "unseeded RNG"
                        ),
                    )
            elif (
                chain == ["Random"]
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    ctx, node, message="Random() constructed without a seed"
                )


#: Event-scheduling entry points on the engine (SIM003 sinks).
_SCHEDULE_NAMES = {
    "schedule", "call_at", "call_after",
    "call_at_cancellable", "call_after_cancellable",
}


def _is_unordered_iter(node: ast.AST) -> bool:
    """True for iterables with non-deterministic ordering guarantees."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if isinstance(node.func, ast.Name) and name in {"set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute) and name in {
            "keys", "values", "items", "union", "intersection", "difference",
        }:
            # dict.keys() iteration order is insertion order in CPython,
            # but set algebra and dict views fed by sets are not; flag
            # keys/values/items conservatively per the rule spec.
            return True
    return False


@register_rule
class UnorderedScheduleRule(Rule):
    """SIM003: scheduling from an unordered loop leaks iteration order
    into the event heap's tie-break sequence numbers."""

    code = "SIM003"
    summary = "event scheduled from iteration over an unordered collection"
    hint = "iterate a sorted() or otherwise deterministically ordered sequence"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if not _is_unordered_iter(node.iter):
                continue
            for inner in node.body:
                for call in ast.walk(inner):
                    if (
                        isinstance(call, ast.Call)
                        and _call_name(call) in _SCHEDULE_NAMES
                    ):
                        yield self.finding(
                            ctx, node,
                            message=(
                                "loop over an unordered collection schedules "
                                f"events via {_call_name(call)}()"
                            ),
                        )
                        break
                else:
                    continue
                break


_TOKEN_FACTORIES = {"call_at_cancellable", "call_after_cancellable"}


def _token_factory_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and _call_name(node) in _TOKEN_FACTORIES


@register_rule
class UncancelledTokenRule(Rule):
    """SIM004: a cancellable token nobody can cancel is a plain leak —
    the event stays armed (and re-arms itself, for recurring ticks)
    after the owner is logically shut down."""

    code = "SIM004"
    summary = "cancellable timer token never cancelled"
    hint = (
        "store the token and call .cancel() in the owner's stop()/close(), "
        "or use plain call_at() if cancellation is genuinely never needed"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)
            elif isinstance(node, ast.Expr) and _token_factory_call(node.value):
                yield self.finding(
                    ctx, node,
                    message=(
                        "cancellable timer token discarded at creation "
                        "(can never be cancelled)"
                    ),
                )

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Finding]:
        assigned: Dict[str, ast.AST] = {}
        cancelled: set = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and _token_factory_call(node.value):
                for target in node.targets:
                    fld = self._self_field(target)
                    if fld is not None and fld not in assigned:
                        assigned[fld] = node
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "cancel":
                    fld = self._self_field(node.func.value)
                    if fld is not None:
                        cancelled.add(fld)
        for fld, node in sorted(assigned.items()):
            if fld not in cancelled:
                yield self.finding(
                    ctx, node,
                    message=(
                        f"timer token self.{fld} is never .cancel()ed in "
                        f"class {cls.name}"
                    ),
                )

    @staticmethod
    def _self_field(node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None


_ACQUIRE_NAMES = {"acquire", "get", "alloc"}
_RELEASE_NAMES = {"release", "recycle", "free", "put"}


def _pool_receiver(node: ast.Call) -> bool:
    """True when the call receiver looks like a packet pool."""
    if not isinstance(node.func, ast.Attribute):
        return False
    chain = _attr_chain(node.func.value)
    if not chain:
        return False
    last = chain[-1].lower()
    return last == "pool" or last.endswith("pool") or last.endswith("_pool")


@register_rule
class PoolLifetimeRule(Rule):
    """SIM005: acquiring from a pool in a class that never releases
    anything means every acquired packet is structurally leaked."""

    code = "SIM005"
    summary = "pool acquire without a matching release in the same class"
    hint = (
        "pair every pool.acquire()/get()/alloc() with a release()/recycle() "
        "on some path of the owning class (the NIC is the terminal consumer)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Finding]:
        acquires: List[ast.Call] = []
        releases = False
        for node in ast.walk(cls):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in _ACQUIRE_NAMES and _pool_receiver(node):
                acquires.append(node)
            elif name in _RELEASE_NAMES and isinstance(node.func, ast.Attribute):
                releases = True
        if releases:
            return
        for call in acquires:
            yield self.finding(
                ctx, call,
                message=(
                    f"pool {_call_name(call)}() in class {cls.name} with no "
                    "release()/recycle() anywhere in the class"
                ),
            )


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def _handler_uses_name(handler: ast.ExceptHandler) -> bool:
    if handler.name is None:
        return False
    for node in ast.walk(handler):
        if isinstance(node, ast.Name) and node.id == handler.name:
            return True
    return False


def _broad_exception_names(node: Optional[ast.AST]) -> List[str]:
    """Names in the except clause that catch everything."""
    if node is None:
        return []
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    broad = []
    for expr in exprs:
        chain = _attr_chain(expr)
        if chain and chain[-1] in {"Exception", "BaseException"}:
            broad.append(chain[-1])
    return broad


@register_rule
class SwallowedErrorRule(Rule):
    """SIM006: a handler that catches everything and neither re-raises
    nor inspects the exception silently swallows SimulationError —
    deadlocks and deadline overruns vanish into passing runs."""

    code = "SIM006"
    summary = "broad except swallows simulation errors"
    hint = (
        "catch the specific exception, re-raise, or at minimum bind and "
        "log the error so SimulationError cannot vanish silently"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if handler.type is None:
                    if not _handler_reraises(handler):
                        yield self.finding(
                            ctx, handler,
                            message="bare except: swallows SimulationError",
                        )
                    continue
                broad = _broad_exception_names(handler.type)
                if not broad:
                    continue
                if _handler_reraises(handler) or _handler_uses_name(handler):
                    continue
                yield self.finding(
                    ctx, handler,
                    message=(
                        f"except {broad[0]} neither re-raises nor uses the "
                        "exception (swallows SimulationError)"
                    ),
                )
