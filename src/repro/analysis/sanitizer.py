"""``SimSanitizer`` — opt-in runtime invariant checking for the engine.

Enabled with ``REPRO_SANITIZE=1`` in the environment or
``Simulator(sanitize=True)``.  When off, the simulator carries a single
``sanitizer is None`` check per run call and nothing else; when on, the
sanitizer substitutes its own (semantically identical, uninlined) event
loops and tracks:

* **packet lifetime** — every ``PacketPool.acquire`` is recorded with
  its allocation site; double releases raise immediately with both
  sites; packets still outstanding at :meth:`check_end_of_run` are
  reported as leaks with where they were acquired,
* **timer tokens** — every ``call_at_cancellable`` token is registered
  with its arming site; tokens neither dispatched nor ``.cancel()``ed
  by end-of-run are reported (a started engine that is never stopped
  shows up here),
* **clock monotonicity** — the event loop asserts dispatch timestamps
  never run backwards,
* **event-stream digest** — every dispatched event folds into a blake2b
  checksum (:meth:`Simulator.digest`) that tests assert equal across
  seeds and ``--parallel`` fan-out.

The capture sites use ``traceback.extract_stack`` — expensive, which is
why the sanitizer is opt-in and the default path stays allocation-free.
"""

from __future__ import annotations

import heapq
import os
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.digest import EventDigest
from repro.sim.engine import EventToken, Process, SimulationError

__all__ = ["SanitizerError", "SimSanitizer", "sanitize_enabled"]

_FALSEY = {"", "0", "false", "no", "off"}


def sanitize_enabled(environ: Optional[dict] = None) -> bool:
    """True when ``REPRO_SANITIZE`` is set to a truthy value."""
    env = environ if environ is not None else os.environ
    return env.get("REPRO_SANITIZE", "").strip().lower() not in _FALSEY


class SanitizerError(SimulationError):
    """An invariant violation detected by :class:`SimSanitizer`."""


def _capture_site(skip: int = 3, depth: int = 4) -> str:
    """Compact ``file:line in func`` chain for the caller's caller."""
    frames = traceback.extract_stack(limit=skip + depth)[:-skip]
    parts = [
        f"{os.path.basename(f.filename)}:{f.lineno} in {f.name}" for f in frames
    ]
    return " -> ".join(parts) if parts else "<unknown>"


class SimSanitizer:
    """Runtime invariant checker bound to one :class:`Simulator`."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.digest = EventDigest()
        #: id(token) -> (token, arming site) for tokens still queued.
        self._armed: Dict[int, Tuple[EventToken, str]] = {}
        #: id(packet) -> (packet, acquire site) for unreleased packets.
        self._outstanding: Dict[int, Tuple[Any, str]] = {}
        #: id(packet) -> release site for packets sitting in a free list.
        self._freed: Dict[int, str] = {}
        self.monotonic_violations: List[Tuple[float, float]] = []
        self.foreign_releases = 0

    # ------------------------------------------------------------------
    # Hooks called by the engine and PacketPool
    # ------------------------------------------------------------------
    def on_token(self, token: EventToken) -> None:
        self._armed[id(token)] = (token, _capture_site())

    def on_acquire(self, pool, packet) -> None:
        self._freed.pop(id(packet), None)
        self._outstanding[id(packet)] = (packet, _capture_site())

    def on_release(self, pool, packet, owned: bool) -> None:
        key = id(packet)
        if owned:
            self._outstanding.pop(key, None)
            self._freed[key] = _capture_site()
            return
        first = self._freed.get(key)
        if first is not None:
            raise SanitizerError(
                "packet double-release detected\n"
                f"  first released at: {first}\n"
                f"  released again at: {_capture_site()}"
            )
        # A packet that never belonged to any pool: RocePacket.release()
        # guards this already, but a direct pool.release(pkt) can reach
        # here.  Count it rather than raise — it is benign by design.
        self.foreign_releases += 1

    # ------------------------------------------------------------------
    # Instrumented event loops (semantics mirror Simulator.run*)
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        sim = self.sim
        queue = sim._queue
        pop = heapq.heappop
        digest = self.digest
        armed = self._armed
        dispatched = 0
        try:
            while queue:
                when = queue[0][0]
                if until is not None and when > until:
                    sim.now = until
                    return until
                _w, seq, callback = pop(queue)
                if when < sim.now:
                    self.monotonic_violations.append((sim.now, when))
                sim.now = when
                dispatched += 1
                digest.update(when, seq, callback.__class__.__name__)
                if callback.__class__ is EventToken:
                    armed.pop(id(callback), None)
                callback()
            if until is not None and sim.now < until:
                sim.now = until
            return sim.now
        finally:
            sim.events_dispatched += dispatched
            sim._tel_events.inc(dispatched)

    def run_until_complete(
        self, process: Process, deadline: Optional[float] = None
    ) -> Any:
        sim = self.sim
        queue = sim._queue
        pop = heapq.heappop
        digest = self.digest
        armed = self._armed
        completion = process._completion
        dispatched = 0
        try:
            while not completion._done:
                if not queue:
                    raise SimulationError(
                        f"deadlock: no events pending but process "
                        f"{process.name!r} alive"
                    )
                when = queue[0][0]
                if deadline is not None and when > deadline:
                    raise SimulationError(
                        f"process {process.name!r} missed deadline {deadline}"
                    )
                _w, seq, callback = pop(queue)
                if when < sim.now:
                    self.monotonic_violations.append((sim.now, when))
                sim.now = when
                dispatched += 1
                digest.update(when, seq, callback.__class__.__name__)
                if callback.__class__ is EventToken:
                    armed.pop(id(callback), None)
                callback()
            return completion.value
        finally:
            sim.events_dispatched += dispatched
            sim._tel_events.inc(dispatched)

    # ------------------------------------------------------------------
    # End-of-run checks
    # ------------------------------------------------------------------
    def armed_tokens(self) -> List[Tuple[EventToken, str]]:
        """Tokens still queued and not cancelled."""
        return [
            (token, site)
            for token, site in self._armed.values()
            if not token.cancelled
        ]

    def outstanding_packets(self) -> List[Tuple[Any, str]]:
        """Acquired packets never released back to their pool."""
        return list(self._outstanding.values())

    def check_end_of_run(self, raise_on_leak: bool = True) -> List[str]:
        """Report (and by default raise on) leaks still live right now."""
        problems: List[str] = []
        for _token, site in self.armed_tokens():
            problems.append(f"timer token still armed, scheduled at: {site}")
        for _packet, site in self.outstanding_packets():
            problems.append(f"pooled packet never released, acquired at: {site}")
        for expected, got in self.monotonic_violations:
            problems.append(
                f"clock ran backwards: dispatched t={got} after t={expected}"
            )
        if problems and raise_on_leak:
            noun = "violation" if len(problems) == 1 else "violations"
            raise SanitizerError(
                f"{len(problems)} sanitizer {noun} at end of run:\n  "
                + "\n  ".join(problems)
            )
        return problems

    def drain_and_check(
        self, drain_ns: float = 2e6, raise_on_leak: bool = True
    ) -> List[str]:
        """Run the sim briefly so in-flight packets land, then check.

        A deployment closed mid-flight legitimately has packets on the
        wire; a short bounded drain lets links/NICs deliver and release
        them before the leak check fires.
        """
        sim = self.sim
        sim.run(until=sim.now + drain_ns)
        return self.check_end_of_run(raise_on_leak=raise_on_leak)
