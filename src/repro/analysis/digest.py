"""Event-stream checksum for cross-run divergence detection.

The sanitizer folds every dispatched event ``(when, seq, kind)`` into a
blake2b hash.  Two runs of the same scenario — different ``--parallel``
fan-out, same seeds — must produce the same digest; any divergence means
the event stream itself differed, which is exactly the class of bug the
byte-identical-JSON guarantee is meant to exclude.

``hexdigest``/``as_int`` snapshot the running hash without finalizing
it, so the digest can be read mid-run (e.g. published as a telemetry
gauge) and updated afterwards.
"""

from __future__ import annotations

import hashlib
import struct

__all__ = ["EventDigest"]

_PACK = struct.Struct("<dQ").pack


class EventDigest:
    """Order-sensitive checksum over the dispatched event stream."""

    __slots__ = ("_hash", "events")

    def __init__(self) -> None:
        self._hash = hashlib.blake2b(digest_size=16)
        self.events = 0

    def update(self, when: float, seq: int, kind: str) -> None:
        self.events += 1
        self._hash.update(_PACK(when, seq))
        self._hash.update(kind.encode("utf-8", "replace"))

    def hexdigest(self) -> str:
        return self._hash.hexdigest()

    def as_int(self) -> int:
        """First 48 bits of the digest as an int (float-exact < 2**53)."""
        return int.from_bytes(self._hash.digest()[:6], "big")
