"""``simcheck`` — the sim-safety linter driver.

Walks Python sources (pruning ``__pycache__``/hidden/cache dirs), runs
every registered rule from :mod:`repro.analysis.rules`, honours inline
``# simcheck: ignore[SIMxxx]`` suppressions, and renders findings as
human text or JSON.  Exposed through the CLI as ``repro lint`` and
directly runnable as ``python -m repro.analysis.simcheck``.

Exit codes: 0 clean, 1 findings, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import ast
import os
import re
import sys
from pathlib import PurePath
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from repro.analysis.findings import Finding, findings_to_json, format_findings
from repro.analysis.rules import RULES, FileContext

__all__ = [
    "DEFAULT_ALLOWLIST",
    "is_allowlisted",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "main",
]

#: Path components exempt from SIM001 (wall-clock is legitimate there:
#: the CLI reports real elapsed time, benchmarks measure the host).
DEFAULT_ALLOWLIST = ("cli.py", "benchmarks")

#: Directories never descended into.
_PRUNE_DIRS = {"__pycache__", ".git", ".repro_cache", ".pytest_cache", ".ruff_cache"}

_IGNORE_RE = re.compile(r"#\s*simcheck:\s*ignore(?:\[([A-Za-z0-9_,\s]*)\])?")


def is_allowlisted(path: str, allowlist: Sequence[str] = DEFAULT_ALLOWLIST) -> bool:
    """True when any path component matches an allowlist entry."""
    parts = PurePath(path).parts
    return any(part in allowlist for part in parts)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Yield ``.py`` files under ``paths``, pruning cache directories."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d not in _PRUNE_DIRS and not d.startswith(".")
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def _suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    match = _IGNORE_RE.search(lines[finding.line - 1])
    if match is None:
        return False
    codes = match.group(1)
    if codes is None:
        return True  # blanket "# simcheck: ignore"
    wanted = {code.strip().upper() for code in codes.split(",") if code.strip()}
    return finding.code in wanted


def _normalize_codes(codes: Optional[Iterable[str]]) -> Optional[Set[str]]:
    if codes is None:
        return None
    out: Set[str] = set()
    for chunk in codes:
        out.update(c.strip().upper() for c in chunk.split(",") if c.strip())
    return out or None


def lint_source(
    path: str,
    source: str,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    allowlist: Sequence[str] = DEFAULT_ALLOWLIST,
) -> List[Finding]:
    """Run all (selected) rules over one module's source text."""
    selected = _normalize_codes(select)
    ignored = _normalize_codes(ignore) or set()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="SIM000",
                message=f"syntax error: {exc.msg}",
                hint="fix the parse error; simcheck cannot analyse this file",
            )
        ]
    ctx = FileContext(
        path=path,
        source=source,
        tree=tree,
        sim_path=not is_allowlisted(path, allowlist),
    )
    findings: List[Finding] = []
    for code in sorted(RULES):
        if selected is not None and code not in selected:
            continue
        if code in ignored:
            continue
        findings.extend(RULES[code].check(ctx))
    lines = source.splitlines()
    findings = [f for f in findings if not _suppressed(f, lines)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_paths(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    allowlist: Sequence[str] = DEFAULT_ALLOWLIST,
) -> List[Finding]:
    """Lint every Python file reachable from ``paths``."""
    findings: List[Finding] = []
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(
            lint_source(filename, source, select=select, ignore=ignore,
                        allowlist=allowlist)
        )
    return findings


def run(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    as_json: bool = False,
    stream=None,
) -> int:
    """Lint ``paths`` and print a report; returns the process exit code."""
    stream = stream if stream is not None else sys.stdout
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"simcheck: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = lint_paths(paths, select=select, ignore=ignore)
    if as_json:
        print(findings_to_json(findings), file=stream)
    else:
        print(format_findings(findings), file=stream)
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simcheck",
        description="AST linter for simulator determinism/lifetime invariants",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"], metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select", action="append", metavar="CODES",
        help="comma-separated rule codes to run exclusively (e.g. SIM001,SIM002)",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as a JSON array"
    )
    args = parser.parse_args(argv)
    return run(
        args.paths or ["src/repro"],
        select=args.select,
        ignore=args.ignore,
        as_json=args.json,
    )


if __name__ == "__main__":
    sys.exit(main())
