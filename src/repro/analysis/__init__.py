"""Correctness tooling: static sim-safety linting + runtime sanitizing.

Two complementary passes over the same invariants (DESIGN.md
§"Correctness tooling"):

* :mod:`repro.analysis.simcheck` — ``repro lint``, an AST linter whose
  SIM001–SIM006 rules catch determinism and resource-lifetime hazards
  (wall-clock in sim code, unseeded RNGs, unordered scheduling,
  uncancelled timer tokens, unreleased pool packets, swallowed errors)
  before they run.
* :mod:`repro.analysis.sanitizer` — ``REPRO_SANITIZE=1`` /
  ``Simulator(sanitize=True)``, a runtime hook layer that proves at run
  time what the AST cannot: double releases, end-of-run leaks with
  allocation sites, clock monotonicity, and an event-stream digest for
  cross-run divergence detection.
"""

from repro.analysis.digest import EventDigest
from repro.analysis.findings import Finding, findings_to_json, format_findings
from repro.analysis.rules import RULES, FileContext, Rule, register_rule
from repro.analysis.sanitizer import SanitizerError, SimSanitizer, sanitize_enabled
from repro.analysis.simcheck import (
    DEFAULT_ALLOWLIST,
    is_allowlisted,
    iter_python_files,
    lint_paths,
    lint_source,
)

__all__ = [
    "DEFAULT_ALLOWLIST",
    "EventDigest",
    "FileContext",
    "Finding",
    "RULES",
    "Rule",
    "SanitizerError",
    "SimSanitizer",
    "findings_to_json",
    "format_findings",
    "is_allowlisted",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register_rule",
    "sanitize_enabled",
]
