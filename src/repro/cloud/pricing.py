"""Table 1: spot vs on-demand VM pricing, and Cowbird's cost argument.

Section 2.2's economic motivation: spot instances cost up to ~90 % less
than on-demand VMs with the same shape, and GCP sells bare spot vCPUs at
$0.009638/vCPU-hour — so offloading disaggregation work to harvested
CPUs is profitable whenever it frees even a fraction of a compute-node
core, especially when one offload core can serve multiple compute nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PRICE_TABLE",
    "VmPrice",
    "cost_efficiency_gain",
    "offload_cost_per_compute_node",
    "spot_discount",
]

#: GCP pure spot CPU price quoted in Section 2.2 ($/vCPU-hour).
GCP_SPOT_VCPU_HOURLY = 0.009638


@dataclass(frozen=True)
class VmPrice:
    """One Table 1 row: a 4 vCPU / 16 GB general-purpose VM."""

    provider: str
    instance_type: str
    on_demand_hourly: float
    spot_hourly: float
    vcpus: int = 4
    memory_gb: int = 16

    def __post_init__(self) -> None:
        if self.on_demand_hourly <= 0 or self.spot_hourly <= 0:
            raise ValueError("prices must be positive")
        if self.spot_hourly > self.on_demand_hourly:
            raise ValueError("spot price above on-demand price")


#: Table 1, data from July 24, 2023.
PRICE_TABLE: tuple[VmPrice, ...] = (
    VmPrice("GCP", "c3-standard-4", on_demand_hourly=0.257, spot_hourly=0.059),
    VmPrice("AWS", "m5.xlarge", on_demand_hourly=0.192, spot_hourly=0.049),
    VmPrice("Azure", "D4s-v3", on_demand_hourly=0.236, spot_hourly=0.023),
)


def spot_discount(price: VmPrice) -> float:
    """Fractional saving of spot over on-demand (up to ~0.90 in Table 1)."""
    return 1.0 - price.spot_hourly / price.on_demand_hourly


def offload_cost_per_compute_node(
    price: VmPrice,
    offload_cores: float = 1.0,
    compute_nodes_served: int = 1,
) -> float:
    """Hourly cost of Cowbird-Spot offload, amortized per compute node.

    One agent core (Section 8.4) can serve all of a compute node's
    threads; serving several compute nodes from one agent divides the
    cost further.
    """
    if compute_nodes_served < 1:
        raise ValueError("must serve at least one compute node")
    per_core_hourly = price.spot_hourly / price.vcpus
    return per_core_hourly * offload_cores / compute_nodes_served


def cost_efficiency_gain(
    price: VmPrice,
    compute_cores: int = 8,
    cpu_fraction_freed: float = 0.8,
    offload_cores: float = 1.0,
    compute_nodes_served: int = 1,
) -> float:
    """Net fractional cost win of offloading disaggregation.

    ``cpu_fraction_freed`` is the share of compute-node CPU that
    software-level disaggregation would otherwise burn (Figure 10 shows
    >80 % for synchronous RDMA under FASTER).  The gain compares the
    value of those freed on-demand cores against the spot cores bought
    to run the offload engine.
    """
    if not 0.0 <= cpu_fraction_freed <= 1.0:
        raise ValueError(f"cpu_fraction_freed out of range: {cpu_fraction_freed}")
    on_demand_per_core = price.on_demand_hourly / price.vcpus
    freed_value = on_demand_per_core * compute_cores * cpu_fraction_freed
    offload_cost = offload_cost_per_compute_node(
        price, offload_cores, compute_nodes_served
    )
    compute_cost = on_demand_per_core * compute_cores
    return (freed_value - offload_cost) / compute_cost


def format_table() -> str:
    """Render Table 1."""
    lines = ["Table 1: on-demand vs spot prices (4 vCPU / 16 GB, 2023-07-24)"]
    lines.append(f"{'provider':<8s}{'type':<18s}{'on-demand':>12s}{'spot':>9s}{'discount':>10s}")
    for price in PRICE_TABLE:
        lines.append(
            f"{price.provider:<8s}{price.instance_type:<18s}"
            f"${price.on_demand_hourly:>10.3f}/h${price.spot_hourly:>6.3f}/h"
            f"{spot_discount(price):>9.0%}"
        )
    return "\n".join(lines)
