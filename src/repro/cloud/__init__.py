"""Cloud pricing data and cost-efficiency analysis (Table 1, Section 2.2)."""

from repro.cloud.pricing import (
    PRICE_TABLE,
    VmPrice,
    cost_efficiency_gain,
    offload_cost_per_compute_node,
    spot_discount,
)

__all__ = [
    "PRICE_TABLE",
    "VmPrice",
    "cost_efficiency_gain",
    "offload_cost_per_compute_node",
    "spot_discount",
]
