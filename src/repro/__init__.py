"""Cowbird reproduction: offloading the disaggregation of memory.

This package reproduces *Cowbird: Freeing CPUs to Compute by Offloading
the Disaggregation of Memory* (SIGCOMM 2023) on a deterministic,
packet-level discrete-event simulator.  See DESIGN.md for the system
inventory and the substitution rationale (the paper's artifact is a
Tofino switch + RDMA testbed; we model that substrate and reproduce the
*shape* of every table and figure).

Public API tour
---------------
* :mod:`repro.sim` — the discrete-event simulator (clock, CPU, network).
* :mod:`repro.rdma` — RoCEv2 packets, queue pairs, verbs, RNIC model.
* :mod:`repro.memory` — registered memory regions and the memory pool.
* :mod:`repro.cowbird` — the paper's contribution: client library and the
  two offload engines (P4 switch data plane and Spot-VM agent).
* :mod:`repro.baselines` — the comparators: sync/async RDMA, Redy, AIFM,
  and the SSD storage backend.
* :mod:`repro.faster` — a FASTER-like KV store with the IDevice interface
  Cowbird integrates through.
* :mod:`repro.workloads` — YCSB and the hash-table microbenchmark.
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

__version__ = "1.1.0"

from repro.sim import CPU, CostModel, Simulator

__all__ = ["CPU", "CostModel", "Simulator", "__version__"]
