"""Span tracing on the simulated clock.

A span is a named interval ``[begin_ns, end_ns]`` on a *track* (a sim
thread, QP, or link) inside a *process* (a simulated node), plus free-
form attributes.  All timestamps come from the simulator clock the
tracer is bound to — never wall-clock — so traces are deterministic and
capturing one cannot perturb a calibrated run.

Three recording styles cover every instrumentation site:

* ``with tracer.span("rdma.read", process="compute", track="qp100"):``
  for code that brackets an interval,
* ``tracer.complete(name, begin_ns, end_ns, ...)`` for retroactive
  recording when the begin timestamp was stashed on an in-flight object
  (outstanding work requests, engine ops),
* ``tracer.instant(name, ...)`` for point events (NAKs, Go-Back-N).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["NULL_TRACER", "NullTracer", "Span", "SpanEvent", "Tracer"]


@dataclass(frozen=True)
class SpanEvent:
    """One recorded trace event (duration if ``end_ns`` differs)."""

    name: str
    begin_ns: float
    end_ns: float
    process: str
    track: str
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.begin_ns

    @property
    def is_instant(self) -> bool:
        return self.end_ns == self.begin_ns

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "begin_ns": self.begin_ns,
            "end_ns": self.end_ns,
            "process": self.process,
            "track": self.track,
            "attrs": dict(self.attrs),
        }


class Span:
    """An open interval; ``end()`` (or context-manager exit) records it."""

    __slots__ = ("_tracer", "name", "begin_ns", "process", "track", "attrs", "_closed")

    def __init__(
        self, tracer: "Tracer", name: str, process: str, track: str, attrs: dict
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.begin_ns = tracer.now()
        self.process = process
        self.track = track
        self.attrs = attrs
        self._closed = False

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span."""
        self.attrs.update(attrs)

    def end(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._tracer.complete(
            self.name, self.begin_ns, self._tracer.now(),
            process=self.process, track=self.track, **self.attrs,
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end()


class Tracer:
    """Bounded, deterministic event recorder bound to a sim clock."""

    def __init__(self, max_events: int = 500_000) -> None:
        self.max_events = max_events
        self.events: list[SpanEvent] = []
        self.dropped_over_capacity = 0
        self._clock: Callable[[], float] = lambda: 0.0

    # ------------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a simulator's ``now`` (rebind per run)."""
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------
    def span(
        self, name: str, process: str = "sim", track: str = "main", **attrs
    ) -> Span:
        return Span(self, name, process, track, attrs)

    def complete(
        self,
        name: str,
        begin_ns: float,
        end_ns: float,
        process: str = "sim",
        track: str = "main",
        **attrs,
    ) -> None:
        """Record a finished interval with explicit sim timestamps."""
        if len(self.events) >= self.max_events:
            self.dropped_over_capacity += 1
            return
        self.events.append(
            SpanEvent(
                name=name, begin_ns=begin_ns, end_ns=end_ns,
                process=process, track=track, attrs=attrs,
            )
        )

    def instant(
        self, name: str, process: str = "sim", track: str = "main", **attrs
    ) -> None:
        now = self.now()
        self.complete(name, now, now, process=process, track=track, **attrs)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()
        self.dropped_over_capacity = 0

    def span_names(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.name] = counts.get(event.name, 0) + 1
        return counts

    def last_timestamp_ns(self) -> float:
        return max((e.end_ns for e in self.events), default=0.0)


class _NullSpan(Span):
    __slots__ = ()

    def __init__(self) -> None:  # no tracer, never records
        pass

    def set(self, **attrs) -> None:
        pass

    def end(self) -> None:
        pass

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Tracer that records nothing (the zero-cost disabled path)."""

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def span(
        self, name: str, process: str = "sim", track: str = "main", **attrs
    ) -> Span:
        return _NULL_SPAN

    def complete(self, name, begin_ns, end_ns, process="sim", track="main", **attrs):
        pass

    def instant(self, name, process="sim", track="main", **attrs):
        pass


NULL_TRACER = NullTracer()
