"""Hierarchical metrics: counters, gauges, and log-bucket histograms.

Components register instruments under stable dotted names —
``nic.compute.tx_bytes``, ``qp.103.retransmits``, ``p4.probe_rounds``,
``spot.batch_flushes`` — into one :class:`MetricsRegistry` per
:class:`~repro.telemetry.Telemetry` instance.  ``snapshot()`` flattens
everything into a plain dict for JSON dumps and assertions.

Every instrument has a *null* twin whose mutators are no-ops; the null
registry hands those out so that instrumented hot paths cost one
attribute load and one no-op call when telemetry is disabled.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
    "NullRegistry",
    "log_bucket_bounds",
]


def log_bucket_bounds(
    lo: float = 64.0, hi: float = 64e6, factor: float = 4.0
) -> tuple[float, ...]:
    """Fixed geometric bucket upper bounds covering ``[lo, hi]``.

    The defaults span 64 ns .. 64 ms at 4x per bucket — wide enough for
    everything from a cache miss to a Go-Back-N timeout episode.

    >>> log_bucket_bounds(1, 8, 2)
    (1.0, 2.0, 4.0, 8.0)
    """
    if lo <= 0 or factor <= 1:
        raise ValueError("need lo > 0 and factor > 1")
    bounds = []
    edge = float(lo)
    while edge < hi * (1 + 1e-12):
        bounds.append(edge)
        edge *= factor
    return tuple(bounds)


class Counter:
    """A monotonically increasing count (events, bytes, packets)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, outstanding window size)."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class Histogram:
    """A distribution over fixed log-spaced buckets.

    ``bounds`` are inclusive upper edges; one implicit overflow bucket
    catches everything above the last edge.  Exact ``sum``/``count``/
    ``max`` ride along so means stay precise even though the
    distribution is bucketed.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum", "max")

    def __init__(self, name: str, bounds: Optional[Iterable[float]] = None) -> None:
        self.name = name
        if bounds is None:
            bounds = log_bucket_bounds()
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError(f"histogram {name}: need at least one bucket bound")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"histogram {name}: bounds must strictly increase")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative observation {value}")
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value (binary search)
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.bucket_counts[lo] += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", bounds=(1.0,))

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


def _validate_name(name: str) -> None:
    if not name or name.startswith(".") or name.endswith(".") or ".." in name:
        raise ValueError(f"invalid metric name {name!r}")


class MetricsRegistry:
    """Get-or-create instrument store keyed by hierarchical dotted name."""

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None
    ) -> Histogram:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        _validate_name(name)
        instrument = Histogram(name, bounds)
        self._instruments[name] = instrument
        return instrument

    def _get_or_create(self, name: str, cls):
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        _validate_name(name)
        instrument = cls(name)
        self._instruments[name] = instrument
        return instrument

    # ------------------------------------------------------------------
    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add, histograms combine bucket-by-bucket, and gauges
        replay (max first, then last value) so that merging per-worker
        snapshots *in submission order* reproduces exactly the state a
        single shared registry would have reached.  This is what makes
        parallel sweep runs byte-identical to serial ones.
        """
        for name, value in snapshot.items():
            if isinstance(value, dict) and "bucket_counts" in value:
                hist = self.histogram(name, value["bounds"])
                if list(hist.bounds) != [float(b) for b in value["bounds"]]:
                    raise ValueError(
                        f"histogram {name!r}: mismatched bounds in merge"
                    )
                for i, count in enumerate(value["bucket_counts"]):
                    hist.bucket_counts[i] += count
                hist.count += value["count"]
                hist.sum += value["sum"]
                if value["max"] > hist.max:
                    hist.max = value["max"]
            elif isinstance(value, dict):
                gauge = self.gauge(name)
                gauge.set(value["max"])
                gauge.set(value["value"])
            else:
                self.counter(name).inc(value)

    def names(self, prefix: str = "") -> list[str]:
        return sorted(n for n in self._instruments if n.startswith(prefix))

    def snapshot(self, prefix: str = "") -> dict:
        """Flat ``{name: value}`` dict; histograms expand to sub-dicts."""
        out: dict = {}
        for name in self.names(prefix):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = instrument.to_dict()
            elif isinstance(instrument, Gauge):
                out[name] = {"value": instrument.value, "max": instrument.max_value}
            else:
                out[name] = instrument.value  # type: ignore[union-attr]
        return out

    def __len__(self) -> int:
        return len(self._instruments)


class NullRegistry(MetricsRegistry):
    """Registry that hands out shared no-op instruments and stores nothing."""

    def counter(self, name: str) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return NULL_GAUGE

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None
    ) -> Histogram:
        return NULL_HISTOGRAM


NULL_REGISTRY = NullRegistry()
