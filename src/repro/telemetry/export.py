"""Exporters: Chrome ``trace_event`` JSON, JSONL streams, metric dumps.

The Chrome format (loadable in ``chrome://tracing`` and Perfetto) maps
our model onto its process/thread axes: one "process" per simulated
node (compute, pool, switch, ...) and one "thread" per track (sim
thread, QP, link).  Timestamps convert from simulated nanoseconds to
the format's microseconds.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Optional, Union

from repro.telemetry.spans import SpanEvent

__all__ = [
    "chrome_trace_document",
    "write_chrome_trace",
    "write_jsonl",
]


class _TrackIndex:
    """Stable pid/tid allocation for (process, track) pairs."""

    def __init__(self) -> None:
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[str, str], int] = {}

    def pid(self, process: str) -> int:
        if process not in self._pids:
            self._pids[process] = len(self._pids) + 1
        return self._pids[process]

    def tid(self, process: str, track: str) -> int:
        key = (process, track)
        if key not in self._tids:
            self._tids[key] = len(self._tids) + 1
        return self._tids[key]

    def metadata_events(self) -> list[dict]:
        events = []
        for process, pid in sorted(self._pids.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        for (process, track), tid in sorted(
            self._tids.items(), key=lambda kv: kv[1]
        ):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": self._pids[process],
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return events


def _event_to_chrome(event: SpanEvent, index: _TrackIndex) -> dict:
    pid = index.pid(event.process)
    tid = index.tid(event.process, event.track)
    base = {
        "name": event.name,
        "pid": pid,
        "tid": tid,
        "ts": event.begin_ns / 1000.0,  # trace_event wants microseconds
        "args": dict(event.attrs),
    }
    if event.is_instant:
        base["ph"] = "i"
        base["s"] = "t"  # thread-scoped instant
    else:
        base["ph"] = "X"
        base["dur"] = event.duration_ns / 1000.0
    return base


def chrome_trace_document(
    events: Iterable[SpanEvent], metrics: Optional[dict] = None
) -> dict:
    """Build the ``{"traceEvents": [...]}`` document for a span list."""
    index = _TrackIndex()
    trace_events = [_event_to_chrome(event, index) for event in events]
    document = {
        "traceEvents": index.metadata_events() + trace_events,
        "displayTimeUnit": "ns",
    }
    if metrics is not None:
        document["otherData"] = {"metrics": metrics}
    return document


def write_chrome_trace(
    destination: Union[str, IO[str]],
    events: Iterable[SpanEvent],
    metrics: Optional[dict] = None,
) -> None:
    """Serialize ``events`` (plus an optional metrics dump) to ``destination``."""
    document = chrome_trace_document(events, metrics)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(document, handle)
    else:
        json.dump(document, destination)


def write_jsonl(
    destination: Union[str, IO[str]], events: Iterable[SpanEvent]
) -> None:
    """One JSON object per line; streams well and diffs deterministically."""
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            write_jsonl(handle, events)
        return
    for event in events:
        destination.write(json.dumps(event.to_dict()))
        destination.write("\n")
