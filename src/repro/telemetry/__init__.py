"""Unified telemetry: metrics registry + span tracing + exporters.

The paper's entire argument is about where cycles and bytes go, so the
reproduction carries one cross-cutting observability layer instead of
ad-hoc per-experiment accounting.  A :class:`Telemetry` object bundles

* a hierarchical :class:`~repro.telemetry.metrics.MetricsRegistry`
  (``nic.compute.tx_bytes``, ``qp.103.retransmits``, ...),
* a :class:`~repro.telemetry.spans.Tracer` recording spans against the
  *simulated* clock (RDMA verbs, link serialization, engine phases), and
* exporters — Chrome ``trace_event`` JSON for Perfetto, JSONL, and flat
  metric snapshots.

Design invariants:

* **Zero-cost when disabled.**  The default is :data:`NULL_TELEMETRY`,
  whose instruments and spans are shared no-op singletons; hot paths pay
  one attribute load and an empty call.
* **Deterministic.**  All timestamps are sim-time.  Instrumentation only
  observes — enabling telemetry must never change an experiment's
  numeric output (pinned by ``tests/test_telemetry.py``).

Usage::

    from repro import telemetry

    tel = telemetry.Telemetry()
    with telemetry.activate(tel):          # every Testbed built inside
        rows = fig01.run(ops_per_thread=50)  # ... records into `tel`
    tel.write_chrome_trace("trace.json")     # open in Perfetto
    tel.metrics.snapshot("nic.")             # flat dict of NIC counters
"""

from __future__ import annotations

import contextlib
from typing import IO, Optional, Union

from repro.telemetry.export import (
    chrome_trace_document,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    NullRegistry,
    log_bucket_bounds,
)
from repro.telemetry.spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTelemetry",
    "NullTracer",
    "Span",
    "SpanEvent",
    "Telemetry",
    "Tracer",
    "activate",
    "chrome_trace_document",
    "current",
    "install",
    "log_bucket_bounds",
    "uninstall",
    "write_chrome_trace",
    "write_jsonl",
]


class Telemetry:
    """One registry + one tracer + export conveniences."""

    enabled: bool = True

    def __init__(self, max_events: int = 500_000) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(max_events=max_events)

    # -- instrument pass-throughs ---------------------------------------
    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str, bounds=None) -> Histogram:
        return self.metrics.histogram(name, bounds)

    # -- tracing pass-throughs ------------------------------------------
    def bind_clock(self, clock) -> None:
        self.tracer.bind_clock(clock)

    def span(self, name: str, process: str = "sim", track: str = "main", **attrs):
        return self.tracer.span(name, process=process, track=track, **attrs)

    def instant(self, name: str, process: str = "sim", track: str = "main", **attrs):
        self.tracer.instant(name, process=process, track=track, **attrs)

    def complete(self, name, begin_ns, end_ns, process="sim", track="main", **attrs):
        self.tracer.complete(
            name, begin_ns, end_ns, process=process, track=track, **attrs
        )

    # -- export ----------------------------------------------------------
    def snapshot(self, prefix: str = "") -> dict:
        return self.metrics.snapshot(prefix)

    def write_chrome_trace(self, destination: Union[str, IO[str]]) -> None:
        write_chrome_trace(destination, self.tracer.events, self.snapshot())

    def write_jsonl(self, destination: Union[str, IO[str]]) -> None:
        write_jsonl(destination, self.tracer.events)

    def reset(self) -> None:
        """Drop recorded events and instruments (fresh run, same object)."""
        self.metrics = MetricsRegistry()
        self.tracer.clear()


class NullTelemetry(Telemetry):
    """The disabled default: shared no-op registry and tracer."""

    enabled = False

    def __init__(self) -> None:
        self.metrics = NULL_REGISTRY
        self.tracer = NULL_TRACER

    def reset(self) -> None:
        pass


NULL_TELEMETRY = NullTelemetry()

#: The process-wide active telemetry picked up by new Testbeds/Simulators.
_active: Optional[Telemetry] = None


def install(telemetry: Telemetry) -> Telemetry:
    """Make ``telemetry`` the default for subsequently built simulators."""
    global _active
    _active = telemetry
    return telemetry


def uninstall() -> None:
    global _active
    _active = None


def current() -> Optional[Telemetry]:
    """The installed telemetry, or ``None`` (→ null telemetry) if unset."""
    return _active


@contextlib.contextmanager
def activate(telemetry: Optional[Telemetry] = None):
    """Scoped :func:`install`; restores the previous default on exit."""
    global _active
    previous = _active
    _active = telemetry if telemetry is not None else Telemetry()
    try:
        yield _active
    finally:
        _active = previous
