"""Registered memory regions with byte-accurate backing stores.

A :class:`MemoryRegion` models what ``ibv_reg_mr`` returns: a contiguous
virtual address range backed by real bytes, addressable by remote peers
that hold the region's ``rkey``.  The :class:`RegionRegistry` is the
per-host table an RNIC consults to translate an incoming (address, rkey)
pair into a buffer — including the permission and bounds checks a real
HCA performs in hardware.
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterator

__all__ = [
    "AccessError",
    "BoundsError",
    "MemoryRegion",
    "Permission",
    "RegionRegistry",
]


class BoundsError(Exception):
    """An access fell outside a region's registered range."""


class AccessError(Exception):
    """An access violated a region's permissions or used a bad key."""


class Permission(enum.Flag):
    """RDMA access permissions (subset of ibv_access_flags)."""

    LOCAL_READ = enum.auto()
    LOCAL_WRITE = enum.auto()
    REMOTE_READ = enum.auto()
    REMOTE_WRITE = enum.auto()

    @classmethod
    def all(cls) -> "Permission":
        return (
            cls.LOCAL_READ | cls.LOCAL_WRITE | cls.REMOTE_READ | cls.REMOTE_WRITE
        )


class MemoryRegion:
    """A registered, byte-backed virtual address range.

    Addresses are absolute virtual addresses (the paper's API expresses
    remote addresses as offsets from ``memory_pool_addr``; the translation
    happens in the client library).
    """

    def __init__(
        self,
        base_addr: int,
        length: int,
        lkey: int,
        rkey: int,
        permissions: Permission = Permission.all(),
        name: str = "",
    ) -> None:
        if length <= 0:
            raise ValueError(f"region length must be positive: {length}")
        if base_addr < 0:
            raise ValueError(f"negative base address: {base_addr}")
        self.base_addr = base_addr
        self.length = length
        self.lkey = lkey
        self.rkey = rkey
        self.permissions = permissions
        self.name = name
        self._data = bytearray(length)
        #: Callbacks fired after any successful write: f(addr, length).
        #: Used to model memory polling without simulating every poll —
        #: e.g. the Cowbird client watching its bookkeeping block.
        self.write_watchers: list = []

    # ------------------------------------------------------------------
    @property
    def end_addr(self) -> int:
        """One past the last valid address."""
        return self.base_addr + self.length

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.base_addr <= addr and addr + length <= self.end_addr

    def _check_bounds(self, addr: int, length: int) -> int:
        if length < 0:
            raise BoundsError(f"negative access length: {length}")
        if not self.contains(addr, length):
            raise BoundsError(
                f"access [{addr:#x}, {addr + length:#x}) outside region "
                f"{self.name!r} [{self.base_addr:#x}, {self.end_addr:#x})"
            )
        return addr - self.base_addr

    # ------------------------------------------------------------------
    def read(self, addr: int, length: int) -> bytes:
        """Local read (no permission distinction from remote for tests)."""
        if Permission.LOCAL_READ not in self.permissions:
            raise AccessError(f"region {self.name!r} not locally readable")
        offset = self._check_bounds(addr, length)
        return bytes(self._data[offset : offset + length])

    def write(self, addr: int, data: bytes) -> None:
        if Permission.LOCAL_WRITE not in self.permissions:
            raise AccessError(f"region {self.name!r} not locally writable")
        offset = self._check_bounds(addr, len(data))
        self._data[offset : offset + len(data)] = data
        self._notify_write(addr, len(data))

    def remote_read(self, addr: int, length: int, rkey: int) -> bytes:
        """A responder-side RDMA READ: key + permission + bounds checks."""
        if rkey != self.rkey:
            raise AccessError(
                f"bad rkey {rkey:#x} for region {self.name!r} (want {self.rkey:#x})"
            )
        if Permission.REMOTE_READ not in self.permissions:
            raise AccessError(f"region {self.name!r} not remotely readable")
        offset = self._check_bounds(addr, length)
        return bytes(self._data[offset : offset + length])

    def remote_write(self, addr: int, data: bytes, rkey: int) -> None:
        """A responder-side RDMA WRITE: key + permission + bounds checks."""
        if rkey != self.rkey:
            raise AccessError(
                f"bad rkey {rkey:#x} for region {self.name!r} (want {self.rkey:#x})"
            )
        if Permission.REMOTE_WRITE not in self.permissions:
            raise AccessError(f"region {self.name!r} not remotely writable")
        offset = self._check_bounds(addr, len(data))
        self._data[offset : offset + len(data)] = data
        self._notify_write(addr, len(data))

    def _notify_write(self, addr: int, length: int) -> None:
        if self.write_watchers:
            for watcher in list(self.write_watchers):
                watcher(addr, length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryRegion({self.name!r}, base={self.base_addr:#x}, "
            f"len={self.length}, rkey={self.rkey:#x})"
        )


class RegionRegistry:
    """Per-host registration table, as consulted by the host's RNIC.

    Allocates non-overlapping virtual address ranges (bump allocator) and
    unique lkeys/rkeys.  Lookup by address resolves the covering region;
    lookup by rkey is what an RNIC does for incoming one-sided operations.
    """

    def __init__(self, base_addr: int = 0x10_0000, key_seed: int = 1) -> None:
        self._next_addr = base_addr
        self._key_counter = itertools.count(key_seed)
        self._regions: list[MemoryRegion] = []
        self._by_rkey: dict[int, MemoryRegion] = {}

    def register(
        self,
        length: int,
        permissions: Permission = Permission.all(),
        name: str = "",
        alignment: int = 64,
    ) -> MemoryRegion:
        """Allocate and register a fresh region of ``length`` bytes."""
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise ValueError(f"alignment must be a power of two: {alignment}")
        base = (self._next_addr + alignment - 1) & ~(alignment - 1)
        key = next(self._key_counter)
        region = MemoryRegion(
            base_addr=base,
            length=length,
            lkey=key,
            rkey=key | 0x8000_0000,
            permissions=permissions,
            name=name or f"mr-{key}",
        )
        self._next_addr = region.end_addr
        self._regions.append(region)
        self._by_rkey[region.rkey] = region
        return region

    def deregister(self, region: MemoryRegion) -> None:
        self._regions.remove(region)
        del self._by_rkey[region.rkey]

    def by_rkey(self, rkey: int) -> MemoryRegion:
        region = self._by_rkey.get(rkey)
        if region is None:
            raise AccessError(f"unknown rkey {rkey:#x}")
        return region

    def by_addr(self, addr: int, length: int = 1) -> MemoryRegion:
        for region in self._regions:
            if region.contains(addr, length):
                return region
        raise BoundsError(f"address {addr:#x} (+{length}) not in any region")

    def __iter__(self) -> Iterator[MemoryRegion]:
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)
