"""The memory pool: the passive host of disaggregated memory.

The pool side of a Cowbird deployment needs no CPU involvement for data
transfers — one-sided RDMA READ/WRITE operations are serviced entirely
by its RNIC against registered regions.  The pool's only active role is
at setup time: allocating regions and handing out
:class:`RemoteRegionHandle` descriptors (base address, rkey, size) that
compute nodes register with their client library (Phase I of the
Cowbird-P4 protocol, Section 5.2).

Memory may be *reserved* (a dedicated pool server) or *harvested* (spare
fragments of a VM, as in Redy); the handle abstraction covers both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.region import MemoryRegion, Permission, RegionRegistry

__all__ = ["MemoryPool", "RemoteRegionHandle"]


@dataclass(frozen=True)
class RemoteRegionHandle:
    """Everything a client needs to address a remote region.

    This is the information exchanged during connection setup: the
    region's base virtual address on the pool, its remote key, and its
    size.  ``region_id`` is the small integer the Cowbird request
    metadata block carries (Table 3: a 16-bit field).
    """

    region_id: int
    node: str
    base_addr: int
    length: int
    rkey: int

    def translate(self, offset: int, length: int = 1) -> int:
        """Translate a client-side offset to a pool virtual address."""
        if offset < 0 or offset + length > self.length:
            raise ValueError(
                f"offset {offset} (+{length}) outside region of {self.length} bytes"
            )
        return self.base_addr + offset


class MemoryPool:
    """A host that exposes registered memory regions to compute nodes."""

    MAX_REGION_ID = 0xFFFF  # region_id is a 16-bit field (Table 3)

    def __init__(self, node: str, capacity_bytes: Optional[int] = None) -> None:
        self.node = node
        self.capacity_bytes = capacity_bytes
        self.registry = RegionRegistry(base_addr=0x4000_0000)
        self._next_region_id = 0
        self._allocated = 0
        self._handles: dict[int, RemoteRegionHandle] = {}

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    def allocate_region(self, length: int, name: str = "") -> RemoteRegionHandle:
        """Allocate, register, and describe a new remote region."""
        if self.capacity_bytes is not None and self._allocated + length > self.capacity_bytes:
            raise MemoryError(
                f"pool {self.node!r} capacity exceeded: "
                f"{self._allocated} + {length} > {self.capacity_bytes}"
            )
        if self._next_region_id > self.MAX_REGION_ID:
            raise MemoryError("region_id space (16 bits) exhausted")
        region = self.registry.register(
            length,
            permissions=Permission.all(),
            name=name or f"{self.node}-region-{self._next_region_id}",
        )
        handle = RemoteRegionHandle(
            region_id=self._next_region_id,
            node=self.node,
            base_addr=region.base_addr,
            length=region.length,
            rkey=region.rkey,
        )
        self._next_region_id += 1
        self._allocated += length
        self._handles[handle.region_id] = handle
        return handle

    def release_region(self, handle: RemoteRegionHandle) -> None:
        """Return a region's bytes to the pool."""
        if handle.region_id not in self._handles:
            raise KeyError(f"unknown region id {handle.region_id}")
        region = self.registry.by_rkey(handle.rkey)
        self.registry.deregister(region)
        del self._handles[handle.region_id]
        self._allocated -= handle.length

    def handle(self, region_id: int) -> RemoteRegionHandle:
        return self._handles[region_id]

    def region_for(self, handle: RemoteRegionHandle) -> MemoryRegion:
        """Resolve a handle back to its backing region (pool side)."""
        return self.registry.by_rkey(handle.rkey)
