"""The memory pool: the passive host of disaggregated memory.

The pool side of a Cowbird deployment needs no CPU involvement for data
transfers — one-sided RDMA READ/WRITE operations are serviced entirely
by its RNIC against registered regions.  The pool's only active role is
at setup time: allocating regions and handing out
:class:`RemoteRegionHandle` descriptors (base address, rkey, size) that
compute nodes register with their client library (Phase I of the
Cowbird-P4 protocol, Section 5.2).

Memory may be *reserved* (a dedicated pool server) or *harvested* (spare
fragments of a VM, as in Redy); the handle abstraction covers both.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.memory.region import MemoryRegion, Permission, RegionRegistry

__all__ = [
    "MemoryPool",
    "RemoteRegionHandle",
    "ShardedPool",
    "ShardedRegionHandle",
]


@dataclass(frozen=True)
class RemoteRegionHandle:
    """Everything a client needs to address a remote region.

    This is the information exchanged during connection setup: the
    region's base virtual address on the pool, its remote key, and its
    size.  ``region_id`` is the small integer the Cowbird request
    metadata block carries (Table 3: a 16-bit field).
    """

    region_id: int
    node: str
    base_addr: int
    length: int
    rkey: int

    def translate(self, offset: int, length: int = 1) -> int:
        """Translate a client-side offset to a pool virtual address."""
        if offset < 0 or offset + length > self.length:
            raise ValueError(
                f"offset {offset} (+{length}) outside region of {self.length} bytes"
            )
        return self.base_addr + offset


class MemoryPool:
    """A host that exposes registered memory regions to compute nodes."""

    MAX_REGION_ID = 0xFFFF  # region_id is a 16-bit field (Table 3)

    def __init__(self, node: str, capacity_bytes: Optional[int] = None) -> None:
        self.node = node
        self.capacity_bytes = capacity_bytes
        self.registry = RegionRegistry(base_addr=0x4000_0000)
        self._next_region_id = 0
        self._allocated = 0
        self._handles: dict[int, RemoteRegionHandle] = {}

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    def allocate_region(self, length: int, name: str = "") -> RemoteRegionHandle:
        """Allocate, register, and describe a new remote region."""
        if self.capacity_bytes is not None and self._allocated + length > self.capacity_bytes:
            raise MemoryError(
                f"pool {self.node!r} capacity exceeded: "
                f"{self._allocated} + {length} > {self.capacity_bytes}"
            )
        if self._next_region_id > self.MAX_REGION_ID:
            raise MemoryError("region_id space (16 bits) exhausted")
        region = self.registry.register(
            length,
            permissions=Permission.all(),
            name=name or f"{self.node}-region-{self._next_region_id}",
        )
        handle = RemoteRegionHandle(
            region_id=self._next_region_id,
            node=self.node,
            base_addr=region.base_addr,
            length=region.length,
            rkey=region.rkey,
        )
        self._next_region_id += 1
        self._allocated += length
        self._handles[handle.region_id] = handle
        return handle

    def release_region(self, handle: RemoteRegionHandle) -> None:
        """Return a region's bytes to the pool."""
        if handle.region_id not in self._handles:
            raise KeyError(f"unknown region id {handle.region_id}")
        region = self.registry.by_rkey(handle.rkey)
        self.registry.deregister(region)
        del self._handles[handle.region_id]
        self._allocated -= handle.length

    def handle(self, region_id: int) -> RemoteRegionHandle:
        return self._handles[region_id]

    def region_for(self, handle: RemoteRegionHandle) -> MemoryRegion:
        """Resolve a handle back to its backing region (pool side)."""
        return self.registry.by_rkey(handle.rkey)


@dataclass(frozen=True)
class ShardedRegionHandle:
    """One logical region striped over N pool hosts.

    The stripe unit is the whole per-shard chunk (block striping):
    bytes ``[i * shard_bytes, (i+1) * shard_bytes)`` of the logical
    region live on shard ``i``.  Requests may not cross a shard
    boundary — callers that align their record layout to the shard
    size (every workload here does) never hit that limit.
    """

    shards: tuple[RemoteRegionHandle, ...]
    shard_bytes: int
    length: int

    @property
    def region_ids(self) -> tuple[int, ...]:
        return tuple(handle.region_id for handle in self.shards)

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(handle.node for handle in self.shards)

    def shard_index(self, offset: int) -> int:
        if not 0 <= offset < len(self.shards) * self.shard_bytes:
            raise ValueError(
                f"offset {offset} outside sharded region of "
                f"{len(self.shards)} x {self.shard_bytes} bytes"
            )
        return offset // self.shard_bytes

    def locate(self, offset: int, length: int = 1) -> tuple[RemoteRegionHandle, int]:
        """Map a logical offset to ``(shard handle, shard-local offset)``."""
        index = self.shard_index(offset)
        local = offset - index * self.shard_bytes
        if local + length > self.shard_bytes:
            raise ValueError(
                f"request [{offset}, +{length}) crosses the shard boundary "
                f"at {(index + 1) * self.shard_bytes}"
            )
        return self.shards[index], local


class ShardedPool:
    """A logical memory pool striped across N :class:`MemoryPool` shards.

    Each shard is an ordinary pool on its own host; the sharded pool
    only owns the striping math and a region-id space that spans all
    shards, so every shard of a logical region is addressable as its
    own ``region_id`` by clients and offload engines (which already
    speak per-region rkeys and per-node channels).
    """

    #: Per-shard chunks are rounded up to this many bytes so record
    #: layouts of any power-of-two record size stay shard-aligned.
    STRIPE_ALIGN = 4096

    def __init__(self, pools: Sequence[MemoryPool]) -> None:
        if not pools:
            raise ValueError("a sharded pool needs at least one shard")
        self.pools = list(pools)
        self._next_region_id = 0

    @property
    def num_shards(self) -> int:
        return len(self.pools)

    @property
    def nodes(self) -> list[str]:
        return [pool.node for pool in self.pools]

    @property
    def allocated_bytes(self) -> int:
        return sum(pool.allocated_bytes for pool in self.pools)

    def allocate_region(self, length: int, name: str = "") -> ShardedRegionHandle:
        """Stripe one logical region of ``length`` bytes over the shards."""
        if length < 1:
            raise ValueError("length must be >= 1")
        chunk = -(-length // self.num_shards)  # ceil
        align = self.STRIPE_ALIGN
        shard_bytes = (chunk + align - 1) // align * align
        handles = []
        for i, pool in enumerate(self.pools):
            handle = pool.allocate_region(
                shard_bytes, name=f"{name or 'sharded'}-shard{i}"
            )
            # Re-key into the sharded pool's own region-id space so the
            # ids stay unique across shards (each shard pool numbers
            # its regions independently from zero).
            handles.append(
                dataclasses.replace(handle, region_id=self._next_region_id)
            )
            self._next_region_id += 1
        return ShardedRegionHandle(
            shards=tuple(handles),
            shard_bytes=shard_bytes,
            length=self.num_shards * shard_bytes,
        )

    def pool_for(self, handle: RemoteRegionHandle) -> MemoryPool:
        """Resolve a shard handle back to the pool that owns it."""
        for pool in self.pools:
            if pool.node == handle.node:
                return pool
        raise KeyError(f"no shard pool named {handle.node!r}")

    def region_for(self, handle: RemoteRegionHandle) -> MemoryRegion:
        """Resolve a shard handle back to its backing region."""
        return self.pool_for(handle).registry.by_rkey(handle.rkey)
