"""Memory substrate: registered regions, host memory, and the memory pool.

RDMA operates on *registered* memory regions addressed by (virtual
address, key).  This package provides byte-accurate backing stores for
both sides of a Cowbird deployment: the compute node's local buffers
(request/response queues live here) and the memory pool's registered
remote regions.
"""

from repro.memory.region import (
    AccessError,
    BoundsError,
    MemoryRegion,
    Permission,
    RegionRegistry,
)
from repro.memory.pool import MemoryPool, RemoteRegionHandle

__all__ = [
    "AccessError",
    "BoundsError",
    "MemoryPool",
    "MemoryRegion",
    "Permission",
    "RegionRegistry",
    "RemoteRegionHandle",
]
