"""Measurement utilities: bandwidth meters, latency recorders, percentiles.

Every figure in the paper is either a rate (MOPS, Gb/s), a ratio, or a
latency distribution (median/p99).  This module holds the small set of
instruments the experiment harness uses to produce those numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sim.units import S

__all__ = ["BandwidthMeter", "LatencyRecorder", "percentile"]


def percentile(samples: Iterable[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` at ``fraction`` in [0, 1].

    >>> percentile([1, 2, 3, 4], 0.5)
    2
    """
    data = sorted(samples)
    if not data:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of range: {fraction}")
    rank = max(1, math.ceil(fraction * len(data)))
    return data[rank - 1]


@dataclass
class BandwidthMeter:
    """Counts delivered bytes over a window; reports Gb/s.

    Used as a link endpoint decorator or fed manually from receive hooks.
    """

    bytes_delivered: int = 0
    packets_delivered: int = 0
    window_start_ns: float = 0.0

    def record(self, size_bytes: int) -> None:
        self.bytes_delivered += size_bytes
        self.packets_delivered += 1

    def reset(self, now_ns: float) -> None:
        self.bytes_delivered = 0
        self.packets_delivered = 0
        self.window_start_ns = now_ns

    def gbps(self, now_ns: float) -> float:
        elapsed = now_ns - self.window_start_ns
        if elapsed <= 0:
            return 0.0
        return (self.bytes_delivered * 8.0) / elapsed  # bits / ns == Gb/s


@dataclass
class LatencyRecorder:
    """Collects per-operation latencies and reports summary statistics."""

    samples_ns: list[float] = field(default_factory=list)

    def record(self, latency_ns: float) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        self.samples_ns.append(latency_ns)

    def __len__(self) -> int:
        return len(self.samples_ns)

    @property
    def count(self) -> int:
        return len(self.samples_ns)

    def mean_ns(self) -> float:
        if not self.samples_ns:
            raise ValueError("no samples recorded")
        return sum(self.samples_ns) / len(self.samples_ns)

    def median_us(self) -> float:
        return percentile(self.samples_ns, 0.5) / 1_000.0

    def p99_us(self) -> float:
        return percentile(self.samples_ns, 0.99) / 1_000.0

    def max_us(self) -> float:
        return max(self.samples_ns) / 1_000.0


def mops(ops: int, elapsed_ns: float) -> float:
    """Millions of operations per second given an op count and duration."""
    if elapsed_ns <= 0:
        return 0.0
    return ops / elapsed_ns * S / 1e6
