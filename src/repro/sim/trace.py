"""Measurement utilities: bandwidth meters, latency recorders, percentiles.

Every figure in the paper is either a rate (MOPS, Gb/s), a ratio, or a
latency distribution (median/p99).  This module holds the small set of
instruments the experiment harness uses to produce those numbers.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sim.units import S

__all__ = ["BandwidthMeter", "LatencyRecorder", "mops", "percentile"]


def percentile(samples: Iterable[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` at ``fraction`` in [0, 1].

    Always returns a ``float``, regardless of the sample element type.

    >>> percentile([1, 2, 3, 4], 0.5)
    2.0
    """
    data = sorted(samples)
    if not data:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of range: {fraction}")
    rank = max(1, math.ceil(fraction * len(data)))
    return float(data[rank - 1])


@dataclass
class BandwidthMeter:
    """Counts delivered bytes over a window; reports Gb/s.

    Used as a link endpoint decorator or fed manually from receive hooks.
    """

    bytes_delivered: int = 0
    packets_delivered: int = 0
    window_start_ns: float = 0.0

    def record(self, size_bytes: int) -> None:
        self.bytes_delivered += size_bytes
        self.packets_delivered += 1

    def reset(self, now_ns: float) -> None:
        self.bytes_delivered = 0
        self.packets_delivered = 0
        self.window_start_ns = now_ns

    def gbps(self, now_ns: float) -> float:
        elapsed = now_ns - self.window_start_ns
        if elapsed <= 0:
            return 0.0
        return (self.bytes_delivered * 8.0) / elapsed  # bits / ns == Gb/s


@dataclass
class LatencyRecorder:
    """Collects per-operation latencies and reports summary statistics.

    By default every sample is kept.  Setting ``max_samples`` switches to
    bounded-memory mode: count, sum, and max stay exact while the sample
    list becomes a uniform reservoir (Vitter's Algorithm R, seeded for
    determinism) from which the percentile estimates are drawn.
    """

    samples_ns: list[float] = field(default_factory=list)
    #: Keep at most this many samples (``None`` = unbounded).
    max_samples: Optional[int] = None
    #: Reservoir RNG seed; same seed + same inputs = same percentiles.
    seed: int = 0
    _count: int = field(default=0, repr=False)
    _sum_ns: float = field(default=0.0, repr=False)
    _max_ns: float = field(default=0.0, repr=False)
    _rng: Optional[random.Random] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.max_samples is not None and self.max_samples < 1:
            raise ValueError(f"max_samples must be >= 1: {self.max_samples}")

    def record(self, latency_ns: float) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        self._count += 1
        self._sum_ns += latency_ns
        if latency_ns > self._max_ns:
            self._max_ns = latency_ns
        if self.max_samples is None or len(self.samples_ns) < self.max_samples:
            self.samples_ns.append(latency_ns)
            return
        if self._rng is None:
            self._rng = random.Random(self.seed)
        slot = self._rng.randrange(self._count)
        if slot < self.max_samples:
            self.samples_ns[slot] = latency_ns

    def __len__(self) -> int:
        return len(self.samples_ns)

    @property
    def count(self) -> int:
        # Exact even in reservoir mode; falls back to the list length for
        # recorders built around a pre-populated ``samples_ns``.
        return max(self._count, len(self.samples_ns))

    def mean_ns(self) -> float:
        if self._count:
            return self._sum_ns / self._count
        if not self.samples_ns:
            raise ValueError("no samples recorded")
        return sum(self.samples_ns) / len(self.samples_ns)

    def median_us(self) -> float:
        return percentile(self.samples_ns, 0.5) / 1_000.0

    def p50_ns(self) -> float:
        return percentile(self.samples_ns, 0.5)

    def p99_us(self) -> float:
        return percentile(self.samples_ns, 0.99) / 1_000.0

    def p999_ns(self) -> float:
        return percentile(self.samples_ns, 0.999)

    def max_us(self) -> float:
        if not self.samples_ns and not self._count:
            raise ValueError("no samples recorded")
        observed = max(self.samples_ns) if self.samples_ns else 0.0
        return max(self._max_ns, observed) / 1_000.0


def mops(ops: int, elapsed_ns: float) -> float:
    """Millions of operations per second given an op count and duration."""
    if elapsed_ns <= 0:
        return 0.0
    return ops / elapsed_ns * S / 1e6
