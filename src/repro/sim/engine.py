"""Deterministic discrete-event simulation engine.

The engine is a small, SimPy-flavoured core purpose-built for this
reproduction.  A :class:`Simulator` owns a priority queue of timestamped
events; :class:`Process` objects are Python generators that ``yield``
either

* a ``float``/``int`` — sleep for that many simulated nanoseconds,
* a :class:`Future` — suspend until the future resolves (the resolved
  value is sent back into the generator),
* another :class:`Process` — suspend until that process terminates,
* ``None`` — yield the floor briefly (resume at the same timestamp, after
  already-queued events).

Determinism: events firing at the same timestamp are ordered by a
monotonically increasing sequence number, so two runs with the same seed
interleave identically.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "AllOf",
    "AnyOf",
    "Future",
    "Process",
    "SimulationError",
    "Simulator",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine."""


class Future:
    """A one-shot value container that processes can wait on.

    A future starts *pending*; exactly one call to :meth:`resolve` or
    :meth:`fail` moves it to *done*.  Callbacks added with
    :meth:`add_callback` fire at resolution time (immediately if already
    done).  Processes waiting on a failed future get the exception thrown
    into their generator.
    """

    __slots__ = ("sim", "_done", "_value", "_exception", "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._done = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError("future value read before resolution")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def resolve(self, value: Any = None) -> None:
        """Mark the future done with ``value`` and fire callbacks."""
        if self._done:
            raise SimulationError("future resolved twice")
        self._done = True
        self._value = value
        self._fire()

    def fail(self, exception: BaseException) -> None:
        """Mark the future failed with ``exception`` and fire callbacks."""
        if self._done:
            raise SimulationError("future resolved twice")
        self._done = True
        self._exception = exception
        self._fire()

    def add_callback(self, callback: Callable[["Future"], None]) -> None:
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class AllOf(Future):
    """Future that resolves when every child future has resolved.

    Resolves with the list of child values, in the order the children
    were given.  Fails as soon as any child fails.
    """

    def __init__(self, sim: "Simulator", children: Iterable[Future]) -> None:
        super().__init__(sim)
        self._children = list(children)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.resolve([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Future) -> None:
        if self.done:
            return
        if child.exception is not None:
            self.fail(child.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.resolve([c.value for c in self._children])


class AnyOf(Future):
    """Future that resolves when the first child future resolves.

    Resolves with a ``(index, value)`` tuple identifying the winner.
    """

    def __init__(self, sim: "Simulator", children: Iterable[Future]) -> None:
        super().__init__(sim)
        self._children = list(children)
        if not self._children:
            raise SimulationError("AnyOf requires at least one child")
        for index, child in enumerate(self._children):
            child.add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Future], None]:
        def on_child(child: Future) -> None:
            if self.done:
                return
            if child.exception is not None:
                self.fail(child.exception)
            else:
                self.resolve((index, child.value))

        return on_child


class Process:
    """A simulated activity driven by a generator.

    Created through :meth:`Simulator.spawn`.  A process is itself
    awaitable: yielding a process from another generator suspends the
    caller until the process finishes, with the process's return value
    (via ``return`` inside the generator) delivered to the caller.
    """

    __slots__ = ("sim", "name", "_generator", "_completion", "_started")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._completion = Future(sim)
        self._started = False

    @property
    def completion(self) -> Future:
        """Future resolved with the generator's return value."""
        return self._completion

    @property
    def alive(self) -> bool:
        return not self._completion.done

    def _step(self, send_value: Any = None, throw: Optional[BaseException] = None) -> None:
        """Advance the generator until its next suspension point."""
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send_value)
        except StopIteration as stop:
            self._completion.resolve(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via future
            self._completion.fail(exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if target is None:
            self.sim.call_at(self.sim.now, lambda: self._step(None))
        elif isinstance(target, (int, float)):
            if target < 0:
                self._step(throw=SimulationError(f"negative delay: {target}"))
                return
            self.sim.call_at(self.sim.now + target, lambda: self._step(None))
        elif isinstance(target, Process):
            target.completion.add_callback(self._on_future)
        elif isinstance(target, Future):
            target.add_callback(self._on_future)
        else:
            self._step(
                throw=SimulationError(
                    f"process {self.name!r} yielded unsupported value {target!r}"
                )
            )

    def _on_future(self, future: Future) -> None:
        if future.exception is not None:
            # Deliver the failure into the generator on its own event so
            # resolution-time callbacks never reenter user code directly.
            self.sim.call_at(self.sim.now, lambda: self._step(throw=future.exception))
        else:
            self.sim.call_at(self.sim.now, lambda: self._step(future.value))


class Simulator:
    """The event loop: a clock plus a deterministic priority queue."""

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._processes: list[Process] = []
        self.telemetry: Telemetry = NULL_TELEMETRY
        self._tel_events = NULL_TELEMETRY.counter("sim.events_dispatched")
        self._tel_spawns = NULL_TELEMETRY.counter("sim.processes_spawned")
        self.attach_telemetry(telemetry or NULL_TELEMETRY)

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Bind ``telemetry`` to this simulator's clock and event loop.

        Must run before components (links, NICs, engines) are built —
        they cache their instruments from ``sim.telemetry`` at
        construction time so the per-event cost stays one no-op call
        when telemetry is disabled.
        """
        self.telemetry = telemetry
        telemetry.bind_clock(lambda: self.now)
        self._tel_events = telemetry.counter("sim.events_dispatched")
        self._tel_spawns = telemetry.counter("sim.processes_spawned")

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self.now})")
        self._sequence += 1
        heapq.heappush(self._queue, (when, self._sequence, callback))

    def call_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` nanoseconds."""
        self.call_at(self.now + delay, callback)

    def future(self) -> Future:
        """Create a pending :class:`Future` bound to this simulator."""
        return Future(self)

    def timeout(self, delay: float, value: Any = None) -> Future:
        """A future that resolves with ``value`` after ``delay`` ns."""
        future = Future(self)
        self.call_after(delay, lambda: future.resolve(value))
        return future

    def all_of(self, futures: Iterable[Future]) -> AllOf:
        return AllOf(self, futures)

    def any_of(self, futures: Iterable[Future]) -> AnyOf:
        return AnyOf(self, futures)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def spawn(self, generator: Generator[Any, Any, Any], name: str = "") -> Process:
        """Start a new process from ``generator`` on the next event."""
        process = Process(self, generator, name=name)
        self._processes.append(process)
        self.call_at(self.now, lambda: process._step(None))
        self._tel_spawns.inc()
        if self.telemetry.enabled:
            spawned_at = self.now

            def _record_lifetime(future: Future) -> None:
                self.telemetry.complete(
                    "sim.process", spawned_at, self.now,
                    process="sim", track=process.name,
                    ok=future.exception is None,
                )

            process.completion.add_callback(_record_lifetime)
        return process

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Drain events, optionally stopping the clock at ``until``.

        Returns the simulation time when the run stopped.  With
        ``until=None`` the run continues until no events remain (which
        never happens while periodic processes are alive — pass a bound).
        """
        while self._queue:
            when, _seq, callback = self._queue[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = when
            self._tel_events.inc()
            callback()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_until_complete(self, process: Process, deadline: Optional[float] = None) -> Any:
        """Run until ``process`` terminates; return its result.

        Raises :class:`SimulationError` if the event queue empties or the
        ``deadline`` passes before the process completes.
        """
        while not process.completion.done:
            if not self._queue:
                raise SimulationError(
                    f"deadlock: no events pending but process {process.name!r} alive"
                )
            when, _seq, callback = heapq.heappop(self._queue)
            if deadline is not None and when > deadline:
                raise SimulationError(
                    f"process {process.name!r} missed deadline {deadline}"
                )
            self.now = when
            self._tel_events.inc()
            callback()
        return process.completion.value

    @property
    def pending_events(self) -> int:
        return len(self._queue)
