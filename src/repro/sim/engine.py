"""Deterministic discrete-event simulation engine.

The engine is a small, SimPy-flavoured core purpose-built for this
reproduction.  A :class:`Simulator` owns a priority queue of timestamped
events; :class:`Process` objects are Python generators that ``yield``
either

* a ``float``/``int`` — sleep for that many simulated nanoseconds,
* a :class:`Future` — suspend until the future resolves (the resolved
  value is sent back into the generator),
* another :class:`Process` — suspend until that process terminates,
* ``None`` — yield the floor briefly (resume at the same timestamp, after
  already-queued events).

Determinism: events firing at the same timestamp are ordered by a
monotonically increasing sequence number, so two runs with the same seed
interleave identically.

Hot-path design notes:

* Heap entries stay plain ``(when, seq, callback)`` tuples so ordering
  runs on C-level tuple comparison; a record type with a Python
  ``__lt__`` would be slower, not faster.
* :class:`Process` and :class:`Future` are themselves callable and are
  pushed directly onto the heap — no per-step lambda or bound-method
  allocation.  The pending send/throw value rides in mailbox slots on
  the process.
* The run loops dispatch process steps inline (one heap pop, zero
  intermediate Python frames for the common resume-after-delay case)
  and batch the event counter into a single telemetry call per run.
* Cancellation goes through :class:`EventToken` (lazy deletion: a
  cancelled token stays in the heap and dispatches as a no-op), so the
  common non-cancellable path pays nothing for the feature.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "AllOf",
    "AnyOf",
    "EventToken",
    "Future",
    "Process",
    "SimulationError",
    "Simulator",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine."""


class EventToken:
    """Handle for a scheduled callback that can be cancelled.

    Cancellation is lazy: the heap entry stays queued and fires as a
    no-op, which keeps cancellation O(1) and leaves the hot scheduling
    path free of bookkeeping.
    """

    __slots__ = ("_callback", "cancelled")

    def __init__(self, callback: Callable[[], None]) -> None:
        self._callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __call__(self) -> None:
        if not self.cancelled:
            self._callback()


class Future:
    """A one-shot value container that processes can wait on.

    A future starts *pending*; exactly one call to :meth:`resolve` or
    :meth:`fail` moves it to *done*.  Callbacks added with
    :meth:`add_callback` fire at resolution time (immediately if already
    done).  Processes waiting on a failed future get the exception thrown
    into their generator.
    """

    __slots__ = ("sim", "_done", "_value", "_exception", "_callbacks", "_pending_value")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._done = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError("future value read before resolution")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def resolve(self, value: Any = None) -> None:
        """Mark the future done with ``value`` and fire callbacks."""
        if self._done:
            raise SimulationError("future resolved twice")
        self._done = True
        self._value = value
        self._fire()

    def fail(self, exception: BaseException) -> None:
        """Mark the future failed with ``exception`` and fire callbacks."""
        if self._done:
            raise SimulationError("future resolved twice")
        self._done = True
        self._exception = exception
        self._fire()

    def add_callback(self, callback: Callable[["Future"], None]) -> None:
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self) -> None:
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for callback in callbacks:
                callback(self)

    def __call__(self) -> None:
        # Timer-event entry point used by Simulator.timeout(): the future
        # is pushed onto the heap directly and resolves with the value
        # stashed in _pending_value when its timestamp comes up.
        self.resolve(self._pending_value)


class AllOf(Future):
    """Future that resolves when every child future has resolved.

    Resolves with the list of child values, in the order the children
    were given.  Fails as soon as any child fails.
    """

    def __init__(self, sim: "Simulator", children: Iterable[Future]) -> None:
        super().__init__(sim)
        self._children = list(children)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.resolve([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Future) -> None:
        if self.done:
            return
        if child.exception is not None:
            self.fail(child.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.resolve([c.value for c in self._children])


class AnyOf(Future):
    """Future that resolves when the first child future resolves.

    Resolves with a ``(index, value)`` tuple identifying the winner.
    """

    def __init__(self, sim: "Simulator", children: Iterable[Future]) -> None:
        super().__init__(sim)
        self._children = list(children)
        if not self._children:
            raise SimulationError("AnyOf requires at least one child")
        for index, child in enumerate(self._children):
            child.add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Future], None]:
        def on_child(child: Future) -> None:
            if self.done:
                return
            if child.exception is not None:
                self.fail(child.exception)
            else:
                self.resolve((index, child.value))

        return on_child


class Process:
    """A simulated activity driven by a generator.

    Created through :meth:`Simulator.spawn`.  A process is itself
    awaitable: yielding a process from another generator suspends the
    caller until the process finishes, with the process's return value
    (via ``return`` inside the generator) delivered to the caller.

    A process is also *callable*: calling it advances the generator one
    step, consuming the pending send value or exception from its mailbox
    slots.  The scheduler pushes the process object itself onto the
    event heap, so resuming after a delay allocates nothing beyond the
    heap tuple.
    """

    __slots__ = (
        "sim",
        "name",
        "_generator",
        "_completion",
        "_send",
        "_send_value",
        "_throw_exc",
    )

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._completion = Future(sim)
        self._send = generator.send
        self._send_value: Any = None
        self._throw_exc: Optional[BaseException] = None

    @property
    def completion(self) -> Future:
        """Future resolved with the generator's return value."""
        return self._completion

    @property
    def alive(self) -> bool:
        return not self._completion.done

    def __call__(self) -> None:
        """Advance the generator until its next suspension point."""
        throw = self._throw_exc
        try:
            if throw is None:
                send_value = self._send_value
                self._send_value = None
                target = self._send(send_value)
            else:
                self._throw_exc = None
                target = self._generator.throw(throw)
        except StopIteration as stop:
            self._completion.resolve(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via future
            self._completion.fail(exc)
            return
        tcls = target.__class__
        if tcls is float or tcls is int:
            if target >= 0:
                sim = self.sim
                heapq.heappush(
                    sim._queue, (sim.now + target, next(sim._sequence), self)
                )
                return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        sim = self.sim
        if target is None:
            heapq.heappush(sim._queue, (sim.now, next(sim._sequence), self))
        elif isinstance(target, (int, float)):
            if target < 0:
                self._throw_exc = SimulationError(f"negative delay: {target}")
                self()
                return
            heapq.heappush(
                sim._queue, (sim.now + target, next(sim._sequence), self)
            )
        elif isinstance(target, Process):
            target._completion.add_callback(self._on_future)
        elif isinstance(target, Future):
            target.add_callback(self._on_future)
        else:
            self._throw_exc = SimulationError(
                f"process {self.name!r} yielded unsupported value {target!r}"
            )
            self()

    def _on_future(self, future: Future) -> None:
        # Deliver the result into the generator on its own event so
        # resolution-time callbacks never reenter user code directly.
        exc = future._exception
        if exc is not None:
            self._throw_exc = exc
        else:
            self._send_value = future._value
        sim = self.sim
        heapq.heappush(sim._queue, (sim.now, next(sim._sequence), self))


class Simulator:
    """The event loop: a clock plus a deterministic priority queue."""

    __slots__ = (
        "now",
        "_queue",
        "_sequence",
        "_live",
        "telemetry",
        "_tel_events",
        "_tel_spawns",
        "events_dispatched",
        "sanitizer",
    )

    def __init__(
        self,
        telemetry: Optional[Telemetry] = None,
        sanitize: Optional[bool] = None,
    ) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = count(1)
        self._live: dict[Process, None] = {}
        self.events_dispatched = 0
        self.telemetry: Telemetry = NULL_TELEMETRY
        self._tel_events = NULL_TELEMETRY.counter("sim.events_dispatched")
        self._tel_spawns = NULL_TELEMETRY.counter("sim.processes_spawned")
        self.attach_telemetry(telemetry or NULL_TELEMETRY)
        # Imported lazily: repro.analysis depends on this module.
        if sanitize is None:
            from repro.analysis.sanitizer import sanitize_enabled

            sanitize = sanitize_enabled()
        if sanitize:
            from repro.analysis.sanitizer import SimSanitizer

            self.sanitizer = SimSanitizer(self)
        else:
            self.sanitizer = None

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Bind ``telemetry`` to this simulator's clock and event loop.

        Must run before components (links, NICs, engines) are built —
        they cache their instruments from ``sim.telemetry`` at
        construction time so the per-event cost stays one no-op call
        when telemetry is disabled.
        """
        self.telemetry = telemetry
        telemetry.bind_clock(lambda: self.now)
        self._tel_events = telemetry.counter("sim.events_dispatched")
        self._tel_spawns = telemetry.counter("sim.processes_spawned")

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self.now})")
        heapq.heappush(self._queue, (when, next(self._sequence), callback))

    def call_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` nanoseconds."""
        self.call_at(self.now + delay, callback)

    def call_at_cancellable(
        self, when: float, callback: Callable[[], None]
    ) -> EventToken:
        """Like :meth:`call_at`, but returns a cancellable token."""
        token = EventToken(callback)
        self.call_at(when, token)
        if self.sanitizer is not None:
            self.sanitizer.on_token(token)
        return token

    def call_after_cancellable(
        self, delay: float, callback: Callable[[], None]
    ) -> EventToken:
        """Like :meth:`call_after`, but returns a cancellable token."""
        return self.call_at_cancellable(self.now + delay, callback)

    def future(self) -> Future:
        """Create a pending :class:`Future` bound to this simulator."""
        return Future(self)

    def timeout(self, delay: float, value: Any = None) -> Future:
        """A future that resolves with ``value`` after ``delay`` ns."""
        future = Future(self)
        future._pending_value = value
        self.call_at(self.now + delay, future)
        return future

    def all_of(self, futures: Iterable[Future]) -> AllOf:
        return AllOf(self, futures)

    def any_of(self, futures: Iterable[Future]) -> AnyOf:
        return AnyOf(self, futures)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def spawn(self, generator: Generator[Any, Any, Any], name: str = "") -> Process:
        """Start a new process from ``generator`` on the next event."""
        process = Process(self, generator, name=name)
        self._live[process] = None
        self.call_at(self.now, process)
        self._tel_spawns.inc()
        if self.telemetry.enabled:
            spawned_at = self.now

            def _on_complete(future: Future) -> None:
                self._live.pop(process, None)
                self.telemetry.complete(
                    "sim.process", spawned_at, self.now,
                    process="sim", track=process.name,
                    ok=future.exception is None,
                )

        else:

            def _on_complete(future: Future) -> None:
                self._live.pop(process, None)

        process._completion.add_callback(_on_complete)
        return process

    @property
    def live_processes(self) -> list[Process]:
        """Processes spawned but not yet completed, in spawn order."""
        return list(self._live)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Drain events, optionally stopping the clock at ``until``.

        Returns the simulation time when the run stopped.  With
        ``until=None`` the run continues until no events remain (which
        never happens while periodic processes are alive — pass a bound).
        """
        if self.sanitizer is not None:
            return self.sanitizer.run(until)
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        sequence = self._sequence
        dispatched = 0
        try:
            while queue:
                when = queue[0][0]
                if until is not None and when > until:
                    self.now = until
                    return until
                _w, _seq, callback = pop(queue)
                self.now = when
                dispatched += 1
                # Inline dispatch of the common case — a process resuming
                # after a numeric delay — saves a Python frame per event.
                # Both branches are semantically Process.__call__.
                if callback.__class__ is Process:
                    throw = callback._throw_exc
                    try:
                        if throw is None:
                            send_value = callback._send_value
                            callback._send_value = None
                            target = callback._send(send_value)
                        else:
                            callback._throw_exc = None
                            target = callback._generator.throw(throw)
                    except StopIteration as stop:
                        callback._completion.resolve(stop.value)
                        continue
                    except BaseException as exc:  # noqa: BLE001
                        callback._completion.fail(exc)
                        continue
                    tcls = target.__class__
                    if tcls is float or tcls is int:
                        if target >= 0:
                            push(queue, (when + target, next(sequence), callback))
                            continue
                    callback._wait_on(target)
                else:
                    callback()
            if until is not None and self.now < until:
                self.now = until
            return self.now
        finally:
            self.events_dispatched += dispatched
            self._tel_events.inc(dispatched)

    def run_until_complete(self, process: Process, deadline: Optional[float] = None) -> Any:
        """Run until ``process`` terminates; return its result.

        Raises :class:`SimulationError` if the event queue empties or the
        ``deadline`` passes before the process completes.  The deadline
        check peeks at the head event before popping, so an over-deadline
        event stays queued rather than being silently discarded.
        """
        if self.sanitizer is not None:
            return self.sanitizer.run_until_complete(process, deadline)
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        sequence = self._sequence
        completion = process._completion
        dispatched = 0
        try:
            while not completion._done:
                if not queue:
                    raise SimulationError(
                        f"deadlock: no events pending but process {process.name!r} alive"
                    )
                when = queue[0][0]
                if deadline is not None and when > deadline:
                    raise SimulationError(
                        f"process {process.name!r} missed deadline {deadline}"
                    )
                _w, _seq, callback = pop(queue)
                self.now = when
                dispatched += 1
                if callback.__class__ is Process:
                    throw = callback._throw_exc
                    try:
                        if throw is None:
                            send_value = callback._send_value
                            callback._send_value = None
                            target = callback._send(send_value)
                        else:
                            callback._throw_exc = None
                            target = callback._generator.throw(throw)
                    except StopIteration as stop:
                        callback._completion.resolve(stop.value)
                        continue
                    except BaseException as exc:  # noqa: BLE001
                        callback._completion.fail(exc)
                        continue
                    tcls = target.__class__
                    if tcls is float or tcls is int:
                        if target >= 0:
                            push(queue, (when + target, next(sequence), callback))
                            continue
                    callback._wait_on(target)
                else:
                    callback()
            return completion.value
        finally:
            self.events_dispatched += dispatched
            self._tel_events.inc(dispatched)

    def digest(self) -> str:
        """Event-stream checksum accumulated by the sanitizer.

        Two runs that dispatched the same events in the same order have
        the same digest; tests assert it equal across seeds and
        ``--parallel`` fan-out.  Requires the sanitizer.
        """
        if self.sanitizer is None:
            raise SimulationError(
                "engine digest requires the sanitizer "
                "(REPRO_SANITIZE=1 or Simulator(sanitize=True))"
            )
        return self.sanitizer.digest.hexdigest()

    @property
    def pending_events(self) -> int:
        return len(self._queue)
