"""Unit helpers for the simulator.

The simulator's clock is a float measured in **nanoseconds**.  Bandwidths
are expressed in **bits per nanosecond** so that transmission times fall
out of a single division.  These constants keep call sites readable::

    link = Link(bandwidth=100 * GBPS, propagation_delay=500 * NS)
    yield sim.delay(2 * US)
"""

from __future__ import annotations

#: One simulated nanosecond (the base time unit).
NS: float = 1.0
#: One simulated microsecond.
US: float = 1_000.0
#: One simulated millisecond.
MS: float = 1_000_000.0
#: One simulated second.
S: float = 1_000_000_000.0

#: One gigabit per second, expressed in bits per nanosecond.
GBPS: float = 1.0

#: Sizes in bytes.
KB: int = 1024
MB: int = 1024 * 1024
GB: int = 1024 * 1024 * 1024


def bits_to_bytes(bits: float) -> float:
    """Convert a bit count to bytes."""
    return bits / 8.0


def transmission_time_ns(size_bytes: float, bandwidth_gbps: float) -> float:
    """Serialization delay of ``size_bytes`` on a ``bandwidth_gbps`` link.

    >>> transmission_time_ns(1250, 100)  # 1250 B at 100 Gb/s
    100.0
    """
    if bandwidth_gbps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_gbps}")
    return (size_bytes * 8.0) / bandwidth_gbps
