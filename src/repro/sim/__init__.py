"""Discrete-event simulation substrate.

This package provides the deterministic simulator on which the whole
reproduction runs: an event loop with simulated nanosecond time
(:mod:`repro.sim.engine`), a CPU/thread model with cycle-accounting
(:mod:`repro.sim.cpu`), and a packet network with links, switches, and
strict-priority queueing (:mod:`repro.sim.network`).

The paper's claims are about *who pays CPU time* and *where bandwidth
ceilings sit*; both are cost-accounting questions, so a calibrated
discrete-event simulation preserves the shape of every result even though
the absolute numbers belong to the authors' testbed.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Future,
    Process,
    SimulationError,
    Simulator,
)
from repro.sim.cpu import CPU, CostModel, Thread, ThreadStats
from repro.sim.network import (
    DuplexLink,
    Endpoint,
    FaultInjector,
    Link,
    Switch,
)
from repro.sim.units import (
    GBPS,
    KB,
    MB,
    GB,
    MS,
    NS,
    S,
    US,
    bits_to_bytes,
    transmission_time_ns,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "CPU",
    "CostModel",
    "DuplexLink",
    "Endpoint",
    "FaultInjector",
    "Future",
    "GBPS",
    "GB",
    "KB",
    "Link",
    "MB",
    "MS",
    "NS",
    "Process",
    "S",
    "SimulationError",
    "Simulator",
    "Switch",
    "Thread",
    "ThreadStats",
    "US",
    "bits_to_bytes",
    "transmission_time_ns",
]
