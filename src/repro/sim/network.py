"""Packet network substrate: links, priority queues, switches, faults.

The network model captures exactly what the paper's arguments depend on:

* **Serialization + propagation delay.**  A 100 Gb/s link moves 12.5 bytes
  per nanosecond; bandwidth ceilings in Figure 8c/8d come from here.
* **Strict-priority egress queueing.**  Cowbird-P4 injects probe packets at
  the *lowest* priority so they only consume idle cycles (Section 5.2,
  following OrbWeaver); Figure 14 measures how much a contending TCP flow
  loses when Cowbird's RDMA packets are configured *above* it.
* **A programmable forwarding pipeline.**  The :class:`Switch` exposes the
  same three opportunities a Tofino pipeline has — inspect an arriving
  packet, transform it in flight, and generate fresh packets — which is
  the hook :mod:`repro.cowbird.p4_engine` plugs into.
* **Loss.**  :class:`FaultInjector` drops packets deterministically from a
  seeded RNG so the Go-Back-N recovery paths (Section 5.3) can be tested.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Protocol, runtime_checkable

from repro.sim.engine import Simulator
from repro.sim.units import transmission_time_ns

__all__ = [
    "DuplexLink",
    "Endpoint",
    "FaultInjector",
    "Link",
    "LinkStats",
    "Packet",
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
    "Switch",
]

#: Numerically lower = served first at every egress arbiter.
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2


@runtime_checkable
class Packet(Protocol):
    """Minimal interface the network needs from a packet.

    The RoCEv2 packets in :mod:`repro.rdma.packets` satisfy this; so do the
    TCP segments in :mod:`repro.sim.tcp`.
    """

    src: str
    dst: str
    size_bytes: int
    priority: int


@runtime_checkable
class Endpoint(Protocol):
    """Anything that can terminate a link (a NIC, a switch port, a sink)."""

    def receive(self, packet: Packet, link: "Link") -> None:
        """Handle a packet delivered by ``link``."""


class FaultInjector:
    """Deterministic, seeded packet-loss and corruption injection.

    ``drop_rate`` applies uniformly; ``drop_exactly`` drops specific
    1-based packet ordinals (useful for tests that need to kill *the*
    read response of request 3).
    """

    def __init__(
        self,
        seed: int = 0,
        drop_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        drop_exactly: Optional[Iterable[int]] = None,
    ) -> None:
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError(f"drop_rate out of range: {drop_rate}")
        if not 0.0 <= corrupt_rate <= 1.0:
            raise ValueError(f"corrupt_rate out of range: {corrupt_rate}")
        self._rng = random.Random(seed)
        self.drop_rate = drop_rate
        self.corrupt_rate = corrupt_rate
        self._drop_exactly = set(drop_exactly or ())
        self._seen = 0
        self.dropped = 0
        self.corrupted = 0

    def should_drop(self, packet: Packet) -> bool:
        self._seen += 1
        if self._seen in self._drop_exactly:
            self.dropped += 1
            return True
        if self.drop_rate > 0.0 and self._rng.random() < self.drop_rate:
            self.dropped += 1
            return True
        return False

    def should_corrupt(self, packet: Packet) -> bool:
        if self.corrupt_rate > 0.0 and self._rng.random() < self.corrupt_rate:
            self.corrupted += 1
            return True
        return False


@dataclass
class LinkStats:
    """Per-link byte/packet counters, split by priority class."""

    packets_sent: int = 0
    bytes_sent: int = 0
    packets_dropped: int = 0
    bytes_by_priority: dict[int, int] = field(default_factory=dict)
    busy_ns: float = 0.0

    def record(self, packet: Packet) -> None:
        self.packets_sent += 1
        self.bytes_sent += packet.size_bytes
        per_prio = self.bytes_by_priority
        per_prio[packet.priority] = per_prio.get(packet.priority, 0) + packet.size_bytes

    def utilization(self, elapsed_ns: float) -> float:
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / elapsed_ns)


class Link:
    """A unidirectional link with strict-priority egress queueing.

    Packets enqueued while the link is serializing wait in per-priority
    FIFO queues; at each transmit completion the arbiter picks the head
    of the highest-priority (numerically lowest) non-empty queue.  This
    is the same strict-priority model Tofino's traffic manager applies,
    and it is what makes low-priority Cowbird probes consume only idle
    link cycles.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        endpoint: Endpoint,
        bandwidth_gbps: float = 100.0,
        propagation_delay_ns: float = 500.0,
        fault_injector: Optional[FaultInjector] = None,
        num_priorities: int = 3,
        fixed_packet_overhead_ns: float = 0.0,
    ) -> None:
        if bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_gbps}")
        if num_priorities < 1:
            raise ValueError("need at least one priority class")
        if fixed_packet_overhead_ns < 0:
            raise ValueError("packet overhead cannot be negative")
        self.sim = sim
        self.name = name
        self.endpoint = endpoint
        self.bandwidth_gbps = bandwidth_gbps
        self.propagation_delay_ns = propagation_delay_ns
        self.fault_injector = fault_injector
        self.num_priorities = num_priorities
        #: Per-packet processing cost at the attached NIC's packet
        #: engine; models packet-rate (pps) limits on top of bandwidth.
        self.fixed_packet_overhead_ns = fixed_packet_overhead_ns
        self.stats = LinkStats()
        self._queues: list[deque[Packet]] = [deque() for _ in range(num_priorities)]
        self._busy = False
        # One packet serializes at a time and propagation delay is a
        # per-link constant, so both completion points are FIFO: a deque
        # plus one cached callback replaces a closure per packet.
        self._serializing: deque[Packet] = deque()
        self._propagating: deque[Packet] = deque()
        self._on_serialized_callback = self._on_serialized_next
        self._deliver_callback = self._deliver_next
        tel = sim.telemetry
        self._tel = tel
        self._tel_tx_packets = tel.counter(f"link.{name}.tx_packets")
        self._tel_tx_bytes = tel.counter(f"link.{name}.tx_bytes")
        self._tel_drops = tel.counter(f"link.{name}.drops")
        self._tel_queue_depth = tel.gauge(f"link.{name}.queue_depth")
        self._tel_busy_ns = tel.gauge(f"link.{name}.busy_ns")

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Enqueue ``packet`` for transmission."""
        priority = min(max(packet.priority, 0), self.num_priorities - 1)
        self._queues[priority].append(packet)
        self._tel_queue_depth.set(self.queued_packets())
        if not self._busy:
            self._transmit_next()

    def queued_packets(self) -> int:
        return sum(len(q) for q in self._queues)

    # ------------------------------------------------------------------
    def _pop_next(self) -> Optional[Packet]:
        for queue in self._queues:
            if queue:
                return queue.popleft()
        return None

    def _transmit_next(self) -> None:
        packet = self._pop_next()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        serialization = (
            transmission_time_ns(packet.size_bytes, self.bandwidth_gbps)
            + self.fixed_packet_overhead_ns
        )
        self.stats.busy_ns += serialization
        if self._tel.enabled:
            self._tel_busy_ns.set(self.stats.busy_ns)
            self._tel_queue_depth.set(self.queued_packets())
            self._tel.complete(
                "link.tx", self.sim.now, self.sim.now + serialization,
                process="net", track=self.name,
                size_bytes=packet.size_bytes, priority=packet.priority,
                dst=packet.dst,
            )
        self._serializing.append(packet)
        self.sim.call_after(serialization, self._on_serialized_callback)

    def _on_serialized_next(self) -> None:
        packet = self._serializing.popleft()
        if self.fault_injector is not None and self.fault_injector.should_drop(packet):
            self.stats.packets_dropped += 1
            self._tel_drops.inc()
            # The wire consumed the packet: return pooled shells to their
            # free-list (TCP segments have no release and fall through).
            release = getattr(packet, "release", None)
            if release is not None:
                release()
        else:
            self.stats.record(packet)
            self._tel_tx_packets.inc()
            self._tel_tx_bytes.inc(packet.size_bytes)
            self._propagating.append(packet)
            self.sim.call_after(self.propagation_delay_ns, self._deliver_callback)
        self._transmit_next()

    def _deliver_next(self) -> None:
        self.endpoint.receive(self._propagating.popleft(), self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name!r}, {self.bandwidth_gbps} Gb/s)"


class DuplexLink:
    """A pair of opposed unidirectional links between two endpoints."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        endpoint_a: Endpoint,
        endpoint_b: Endpoint,
        bandwidth_gbps: float = 100.0,
        propagation_delay_ns: float = 500.0,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        self.a_to_b = Link(
            sim,
            f"{name}:a->b",
            endpoint_b,
            bandwidth_gbps=bandwidth_gbps,
            propagation_delay_ns=propagation_delay_ns,
            fault_injector=fault_injector,
        )
        self.b_to_a = Link(
            sim,
            f"{name}:b->a",
            endpoint_a,
            bandwidth_gbps=bandwidth_gbps,
            propagation_delay_ns=propagation_delay_ns,
            fault_injector=fault_injector,
        )


#: A pipeline hook: receives (packet, ingress link) and returns the list of
#: packets to forward.  Returning ``[]`` consumes the packet; returning new
#: packets models data-plane generation/recycling.
PipelineFn = Callable[[Packet, Optional[Link]], list[Packet]]


class Switch:
    """An output-queued switch with destination-based forwarding.

    Nodes attach with :meth:`attach`, registering the egress link that
    reaches them.  An optional ``pipeline`` callable sees every packet
    before forwarding and may consume, rewrite, or multiply it — that is
    the abstraction the Cowbird-P4 offload engine programs against.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "switch",
        forward_delay_ns: float = 300.0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.forward_delay_ns = forward_delay_ns
        self._ports: dict[str, Link] = {}
        self.pipeline: Optional[PipelineFn] = None
        self.packets_forwarded = 0
        self.packets_consumed = 0
        self.packets_generated = 0
        self.packets_unroutable = 0
        # Forward delay is constant, so pending (egress, packet) pairs
        # drain FIFO through one cached callback.
        self._forward_pending: deque[tuple[Link, Packet]] = deque()
        self._forward_callback = self._forward_next
        tel = sim.telemetry
        self._tel_forwarded = tel.counter(f"switch.{name}.forwarded")
        self._tel_consumed = tel.counter(f"switch.{name}.consumed")
        self._tel_generated = tel.counter(f"switch.{name}.generated")
        self._tel_unroutable = tel.counter(f"switch.{name}.unroutable")

    # ------------------------------------------------------------------
    def attach(self, node_id: str, egress_link: Link) -> None:
        """Register ``egress_link`` as the path to ``node_id``."""
        if node_id in self._ports:
            raise ValueError(f"node {node_id!r} already attached")
        self._ports[node_id] = egress_link

    def port_to(self, node_id: str) -> Link:
        return self._ports[node_id]

    @property
    def attached_nodes(self) -> list[str]:
        return sorted(self._ports)

    # ------------------------------------------------------------------
    def receive(self, packet: Packet, link: Optional[Link] = None) -> None:
        """Ingress: run the pipeline, then forward survivors."""
        if self.pipeline is not None:
            outputs = self.pipeline(packet, link)
            if not outputs:
                self.packets_consumed += 1
                self._tel_consumed.inc()
                return
            if len(outputs) != 1 or outputs[0] is not packet:
                self.packets_generated += len(outputs)
                self._tel_generated.inc(len(outputs))
            for out in outputs:
                self._forward(out)
        else:
            self._forward(packet)

    def inject(self, packet: Packet) -> None:
        """Data-plane packet generation: send without an ingress port."""
        self.packets_generated += 1
        self._tel_generated.inc()
        self._forward(packet)

    def _forward(self, packet: Packet) -> None:
        egress = self._ports.get(packet.dst)
        if egress is None:
            self.packets_unroutable += 1
            self._tel_unroutable.inc()
            # Terminal consumption: an unroutable pooled packet goes back
            # to its free-list instead of leaking.
            release = getattr(packet, "release", None)
            if release is not None:
                release()
            return
        self.packets_forwarded += 1
        self._tel_forwarded.inc()
        self._forward_pending.append((egress, packet))
        self.sim.call_after(self.forward_delay_ns, self._forward_callback)

    def _forward_next(self) -> None:
        egress, packet = self._forward_pending.popleft()
        egress.send(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Switch({self.name!r}, ports={sorted(self._ports)})"
