"""CPU, thread, and cycle-cost models.

The paper's central claim is economic: every remote-memory access through a
software disaggregation framework costs the *compute node's* CPU hundreds of
nanoseconds (Figure 2 breaks a single asynchronous one-sided RDMA read into
post-lock, doorbell, WQE, poll-lock, and CQE costs totalling ~630 ns), while
Cowbird's purely local-memory request path costs tens of nanoseconds.  This
module provides:

* :class:`CostModel` — every calibrated nanosecond constant in one place,
  with defaults read off the paper's Figure 2 and Section 7 testbed specs.
* :class:`CPU` — a pool of cores with optional SMT (hyper-threading), a
  FIFO ready queue, and cooperative scheduling.
* :class:`Thread` — a simulated hardware thread that *charges* compute time
  to tagged accounts (``app`` vs ``comm``), which is exactly the
  communication-ratio metric of Figure 10.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.sim.engine import Future, SimulationError, Simulator

__all__ = ["CPU", "CostModel", "Thread", "ThreadStats"]

#: Tag for application compute time.
TAG_APP = "app"
#: Tag for communication-library compute time (the Figure 10 numerator).
TAG_COMM = "comm"


@dataclass
class CostModel:
    """Calibrated CPU/time constants, in nanoseconds unless noted.

    The RDMA post/poll breakdown mirrors the paper's Figure 2 (obtained by
    the authors via ``rdtsc`` instrumentation of the Mellanox OFED driver):
    each sub-task is dominated by spinlocks, atomics, and fence
    instructions.  Cowbird replaces the entire sequence with a handful of
    local-memory writes.
    """

    # ---- RDMA verb costs on the caller's CPU (Figure 2) ----------------
    rdma_post_lock: float = 90.0
    rdma_post_doorbell: float = 180.0
    rdma_post_wqe: float = 90.0
    rdma_poll_lock: float = 90.0
    rdma_poll_cqe: float = 180.0
    #: Polling an *empty* completion queue is cheaper than reaping a CQE.
    rdma_poll_empty: float = 60.0

    # ---- Cowbird client-library costs (Figure 2, "Cowbird" bars) -------
    #: async_read/async_write: a few local stores + atomic increments.
    cowbird_post: float = 25.0
    #: poll_wait when a completion is available: integer compares + copy.
    cowbird_poll: float = 15.0
    #: poll_wait when nothing is ready.
    cowbird_poll_empty: float = 8.0

    # ---- Generic memory costs ------------------------------------------
    #: One cache-line local memory write (the unit Figure 2 compares to).
    local_memory_write: float = 10.0
    #: Streaming copy cost per byte (~32 GB/s single-threaded memcpy).
    memcpy_per_byte: float = 0.03

    # ---- Application work (microbenchmark + FASTER) --------------------
    #: Hash computation + bucket walk for one index probe.
    hash_probe_compute: float = 120.0
    #: Per-byte record processing cost (checksum-style touch of payload).
    record_touch_per_byte: float = 0.12
    #: FASTER per-operation bookkeeping above the communication layer.
    faster_op_overhead: float = 1_500.0

    # ---- Thread/scheduler costs ----------------------------------------
    #: Cooperative green-thread switch (AIFM/Shenango-style).
    green_thread_switch: float = 280.0
    #: Kernel context switch (used by blocking designs).
    context_switch: float = 2_000.0

    # ---- Two-sided RPC server-side costs --------------------------------
    rpc_server_handle: float = 450.0

    # ---- Offload-engine (Cowbird-Spot agent) costs ----------------------
    # The agent's fast path is doorbell batching: one ibv_post_send call
    # carries a linked list of WQEs and one ibv_poll_cq call reaps many
    # CQEs, so the *per-entry* costs are a few nanoseconds of pointer
    # arithmetic while the ~300 ns lock/doorbell overhead is paid once
    # per call.  This is what lets one spot core keep up with all
    # application threads (Section 6 / Figure 11).
    #: Parsing one fetched request-metadata entry.
    engine_parse_request: float = 2.0
    #: Per-RDMA-call overhead on the agent (lock + doorbell + fences).
    engine_rdma_call: float = 250.0
    #: Per-WQE cost inside a doorbell-batched post.
    engine_wqe_batched: float = 2.0
    #: Per-CQE cost inside a batched completion reap.
    engine_cqe_batched: float = 1.5
    #: Per-byte staging copy when batching responses in agent memory.
    engine_batch_copy_per_byte: float = 0.01

    # ---- Network / NIC constants (Section 7 testbed) ---------------------
    link_bandwidth_gbps: float = 100.0
    propagation_delay_ns: float = 500.0
    switch_forward_delay_ns: float = 300.0
    nic_processing_delay_ns: float = 250.0
    #: Maximum NIC message rate (millions of messages per second; a
    #: ConnectX-5 sustains ~200 M small messages/s across QPs).
    nic_message_rate_mops: float = 200.0
    mtu_bytes: int = 1024
    #: Offload engine probe interval (1 probe per 2 us for FASTER, §5.2).
    probe_interval_ns: float = 2_000.0

    # ---- SSD model (SATA, 6 Gb/s, §8 baseline) ---------------------------
    ssd_bandwidth_gbps: float = 6.0
    ssd_access_latency_ns: float = 80_000.0
    ssd_queue_depth: int = 32
    ssd_max_iops: int = 100_000

    # ---- SMT --------------------------------------------------------------
    #: Throughput multiplier per hyperthread when both siblings are busy.
    smt_efficiency: float = 0.68

    def rdma_post_total(self) -> float:
        """Total CPU cost of posting one RDMA work request."""
        return self.rdma_post_lock + self.rdma_post_doorbell + self.rdma_post_wqe

    def rdma_poll_total(self) -> float:
        """Total CPU cost of reaping one completion-queue entry."""
        return self.rdma_poll_lock + self.rdma_poll_cqe

    def rdma_read_cpu_total(self) -> float:
        """Compute-side CPU time of a full asynchronous read (Figure 2)."""
        return self.rdma_post_total() + self.rdma_poll_total()

    def cowbird_read_cpu_total(self) -> float:
        """Compute-side CPU time of a full Cowbird read (Figure 2)."""
        return self.cowbird_post + self.cowbird_poll


@dataclass
class ThreadStats:
    """Cycle accounting for one simulated thread.

    ``cpu_ns`` maps a tag (``"app"``, ``"comm"``, ...) to nanoseconds of
    CPU time charged under that tag.  ``blocked_ns`` is wall time spent
    waiting (on futures or for a core).  The paper's communication ratio
    (Figure 10) is ``comm / (total cpu + blocked)`` measured per thread.
    """

    cpu_ns: dict[str, float] = field(default_factory=dict)
    blocked_ns: float = 0.0
    queue_wait_ns: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    ops_completed: int = 0

    def charge(self, tag: str, ns: float) -> None:
        self.cpu_ns[tag] = self.cpu_ns.get(tag, 0.0) + ns

    @property
    def total_cpu_ns(self) -> float:
        return sum(self.cpu_ns.values())

    @property
    def wall_ns(self) -> float:
        return self.finished_at - self.started_at

    def communication_ratio(self) -> float:
        """Time in the communication library over total execution time.

        Blocking waits caused by synchronous communication count toward
        the communication share, matching how the paper instruments the
        wrapper library (the app thread is inside the library while it
        spins or blocks).
        """
        total = self.total_cpu_ns + self.blocked_ns
        if total <= 0:
            return 0.0
        comm = self.cpu_ns.get(TAG_COMM, 0.0) + self.blocked_ns
        return comm / total


class _Core:
    """One physical core with ``smt`` hardware-thread slots."""

    __slots__ = ("index", "smt", "occupants")

    def __init__(self, index: int, smt: int) -> None:
        self.index = index
        self.smt = smt
        self.occupants: set[int] = set()

    @property
    def free_slots(self) -> int:
        return self.smt - len(self.occupants)


class CPU:
    """A pool of physical cores with optional SMT and FIFO admission.

    Threads acquire a hardware-thread slot for the duration of each
    ``compute()`` chunk and release it between chunks, which approximates
    preemptive timesharing for the nanosecond-scale chunks used
    throughout the reproduction.  When both SMT siblings of a core are
    busy, compute chunks stretch by ``1 / smt_efficiency`` — this is what
    makes the paper's 8-core/16-hyperthread scaling curves sublinear past
    eight threads.
    """

    def __init__(
        self,
        sim: Simulator,
        physical_cores: int = 8,
        smt: int = 2,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if physical_cores < 1:
            raise ValueError("need at least one core")
        if smt < 1:
            raise ValueError("smt must be >= 1")
        self.sim = sim
        self.cost = cost_model or CostModel()
        self.smt = smt
        self._cores = [_Core(i, smt) for i in range(physical_cores)]
        self._wait_queue: deque[tuple["Thread", Future]] = deque()
        self._next_thread_id = 0

    @property
    def physical_cores(self) -> int:
        return len(self._cores)

    @property
    def hardware_threads(self) -> int:
        return len(self._cores) * self.smt

    def thread(self, name: str = "") -> "Thread":
        """Create a new simulated thread on this CPU."""
        self._next_thread_id += 1
        return Thread(self, self._next_thread_id, name or f"thread-{self._next_thread_id}")

    # ------------------------------------------------------------------
    # Slot management (used by Thread.compute)
    # ------------------------------------------------------------------
    def _pick_core(self) -> Optional[_Core]:
        """Prefer an empty core; fall back to a core with a free sibling."""
        best: Optional[_Core] = None
        for core in self._cores:
            if core.free_slots == core.smt:
                return core
            if core.free_slots > 0 and best is None:
                best = core
        return best

    def _acquire(self, thread: "Thread") -> Future:
        future = self.sim.future()
        core = self._pick_core()
        if core is not None and not self._wait_queue:
            core.occupants.add(thread.thread_id)
            future.resolve(core)
        else:
            self._wait_queue.append((thread, future))
        return future

    def _release(self, thread: "Thread", core: _Core) -> None:
        core.occupants.discard(thread.thread_id)
        while self._wait_queue:
            next_core = self._pick_core()
            if next_core is None:
                break
            waiting_thread, waiting_future = self._wait_queue.popleft()
            next_core.occupants.add(waiting_thread.thread_id)
            waiting_future.resolve(next_core)

    def _slowdown(self, core: _Core) -> float:
        """Duration multiplier for a chunk starting on ``core`` now."""
        if len(core.occupants) > 1:
            return 1.0 / self.cost.smt_efficiency
        return 1.0


class Thread:
    """A simulated application thread with tagged cycle accounting.

    Used inside simulator processes via ``yield from``::

        def worker(thread, sim):
            yield from thread.compute(120, tag="app")      # hash probe
            value = yield from thread.wait(some_future)     # block
            yield from thread.compute(270, tag="comm")      # poll CQE
    """

    def __init__(self, cpu: CPU, thread_id: int, name: str) -> None:
        self.cpu = cpu
        self.sim = cpu.sim
        self.thread_id = thread_id
        self.name = name
        self.stats = ThreadStats(started_at=cpu.sim.now)

    # ------------------------------------------------------------------
    def compute(self, ns: float, tag: str = TAG_APP) -> Generator[Any, Any, None]:
        """Charge ``ns`` of CPU time under ``tag``, occupying a core slot."""
        if ns < 0:
            raise SimulationError(f"negative compute time: {ns}")
        if ns == 0:
            return
        queue_start = self.sim.now
        core = yield self.cpu._acquire(self)
        self.stats.queue_wait_ns += self.sim.now - queue_start
        duration = ns * self.cpu._slowdown(core)
        yield duration
        self.cpu._release(self, core)
        self.stats.charge(tag, ns)

    def wait(self, future: Future) -> Generator[Any, Any, Any]:
        """Block (off-core) until ``future`` resolves; return its value."""
        start = self.sim.now
        value = yield future
        self.stats.blocked_ns += self.sim.now - start
        return value

    def spin_wait(self, future: Future, tag: str = TAG_COMM) -> Generator[Any, Any, Any]:
        """Busy-poll: occupy a core until ``future`` resolves.

        The elapsed wall time is charged as CPU time under ``tag`` — this
        models synchronous RDMA's busy-polling, where the thread burns
        its core inside the communication library until the completion
        arrives (the behaviour Figure 10's communication ratio exposes).
        """
        queue_start = self.sim.now
        core = yield self.cpu._acquire(self)
        self.stats.queue_wait_ns += self.sim.now - queue_start
        start = self.sim.now
        value = yield future
        self.cpu._release(self, core)
        self.stats.charge(tag, self.sim.now - start)
        return value

    def sleep(self, ns: float) -> Generator[Any, Any, None]:
        """Block (off-core) for ``ns`` nanoseconds."""
        start = self.sim.now
        yield ns
        self.stats.blocked_ns += self.sim.now - start

    def finish(self) -> None:
        """Stamp the thread's end time for wall-clock accounting."""
        self.stats.finished_at = self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Thread({self.name!r})"
