"""A windowed, greedy TCP-like flow model for the contention experiment.

Figure 14 measures the aggregate bandwidth of ten contending iperf3 TCP
flows while Cowbird runs concurrently.  That experiment is a *queueing*
question — how much link capacity is left for best-effort traffic when
Cowbird's RDMA packets are queued at higher priority — so the flow model
only needs to be greedy and window-limited, not a full congestion-control
implementation.  Each flow keeps ``window`` segments in flight; the
receiver acknowledges each segment, and the sender refills the window on
every ACK.  With a large window the flow saturates whatever capacity the
strict-priority arbiter leaves it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.network import Link, PRIORITY_NORMAL

__all__ = ["TcpFlow", "TcpSegment", "TcpSink"]


@dataclass
class TcpSegment:
    """A data segment or its acknowledgment."""

    src: str
    dst: str
    size_bytes: int
    priority: int
    flow_id: int
    sequence: int
    is_ack: bool = False


class TcpSink:
    """Receiver side: counts delivered payload and returns ACKs.

    The sink needs a path back to the sender; the caller wires
    ``ack_link`` after construction (links and endpoints are mutually
    referential).
    """

    ACK_BYTES = 64

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.ack_link: Optional[Link] = None
        self._flows: dict[int, "TcpFlow"] = {}
        self.bytes_received = 0

    def register_flow(self, flow: "TcpFlow") -> None:
        self._flows[flow.flow_id] = flow

    def receive(self, packet, link) -> None:
        if not isinstance(packet, TcpSegment) or packet.is_ack:
            return
        self.bytes_received += packet.size_bytes
        flow = self._flows.get(packet.flow_id)
        if flow is not None:
            flow.bytes_delivered += packet.size_bytes
        if self.ack_link is not None:
            ack = TcpSegment(
                src=self.name,
                dst=packet.src,
                size_bytes=self.ACK_BYTES,
                priority=packet.priority,
                flow_id=packet.flow_id,
                sequence=packet.sequence,
                is_ack=True,
            )
            self.ack_link.send(ack)


class TcpFlow:
    """Sender side: keeps ``window`` segments outstanding on ``link``."""

    _next_flow_id = 0

    def __init__(
        self,
        sim: Simulator,
        src: str,
        dst: str,
        link: Link,
        segment_bytes: int = 1500,
        window: int = 64,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        TcpFlow._next_flow_id += 1
        self.flow_id = TcpFlow._next_flow_id
        self.sim = sim
        self.src = src
        self.dst = dst
        self.link = link
        self.segment_bytes = segment_bytes
        self.window = window
        self.priority = priority
        self._next_seq = 0
        self._in_flight = 0
        self._running = False
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.started_at = 0.0

    def start(self) -> None:
        """Open the window: inject the initial burst of segments."""
        self._running = True
        self.started_at = self.sim.now
        for _ in range(self.window):
            self._send_segment()

    def stop(self) -> None:
        self._running = False

    def on_ack(self, segment: TcpSegment) -> None:
        """Window refill on acknowledgment."""
        self._in_flight = max(0, self._in_flight - 1)
        if self._running:
            self._send_segment()

    def _send_segment(self) -> None:
        self._next_seq += 1
        self._in_flight += 1
        self.bytes_sent += self.segment_bytes
        segment = TcpSegment(
            src=self.src,
            dst=self.dst,
            size_bytes=self.segment_bytes,
            priority=self.priority,
            flow_id=self.flow_id,
            sequence=self._next_seq,
        )
        self.link.send(segment)

    def achieved_gbps(self, now_ns: float) -> float:
        elapsed = now_ns - self.started_at
        if elapsed <= 0:
            return 0.0
        return (self.bytes_delivered * 8.0) / elapsed


class TcpAckDemux:
    """Endpoint that routes returning ACKs back to their flows.

    Placed at the sender host: data segments originate from flows, ACKs
    come back through the host's ingress link and must reach the right
    :class:`TcpFlow` instance.
    """

    def __init__(self) -> None:
        self._flows: dict[int, TcpFlow] = {}

    def register_flow(self, flow: TcpFlow) -> None:
        self._flows[flow.flow_id] = flow

    def receive(self, packet, link) -> None:
        if isinstance(packet, TcpSegment) and packet.is_ack:
            flow = self._flows.get(packet.flow_id)
            if flow is not None:
                flow.on_ack(packet)
