"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro list
    python -m repro run fig01
    python -m repro run fig08 --ops 300 --json out.json
    python -m repro run fig08 --parallel 8 --json out.json
    python -m repro run fig01 --trace trace.json --metrics
    python -m repro metrics fig01 --prefix nic.
    python -m repro run all
    python -m repro run scenario examples/scenarios/fig08_point.toml
    python -m repro run scenario examples/scenarios/*.toml --validate-only
    python -m repro lint src/repro
    python -m repro lint --select SIM001,SIM002 --json src/repro

Each experiment prints the same rows/series the paper reports; ``--json``
additionally dumps the raw records (plus a ``meta`` block with seeds,
version, sim duration, and events dispatched) for plotting.  ``--trace``
writes a Chrome ``trace_event`` JSON of the run, loadable in Perfetto;
``--metrics`` (or the ``metrics`` subcommand) prints the flat telemetry
counter/gauge/histogram snapshot.

Sweep experiments (``fig01``, ``fig08``, ``fig09``, ``fig13``) fan their
point grids out over ``--parallel N`` worker processes; every point
carries its own seed, results merge in submission order, and the JSON
output is byte-identical for any ``N`` (pinned by ``tests/test_sweep.py``).
Points are cached on disk in ``.repro_cache/`` keyed by (repro version,
point config); ``--no-cache`` bypasses the cache.

``run scenario FILE...`` loads declarative deployment descriptions
(JSON/TOML, see ``repro.cluster``) and runs the microbenchmark workload
they describe; ``--validate-only`` stops after schema validation.

``lint [PATH...]`` runs the ``simcheck`` sim-safety linter
(:mod:`repro.analysis`) over the given files/directories (default
``src/repro``); exit code 1 means findings.  The runtime counterpart is
``REPRO_SANITIZE=1``, which any ``repro run`` honours.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from typing import Any, Callable

from repro import __version__, telemetry
from repro.experiments import (
    fig01, fig02, fig08, fig09, fig10, fig11, fig12, fig13, fig14,
    tab01, tab05,
)

__all__ = ["main"]

#: Default seed baked into each experiment's ``run()`` signature
#: (``None`` = the experiment is deterministic and takes no seed).
DEFAULT_SEEDS: dict[str, int | None] = {
    "fig01": 1, "fig02": None, "fig08": 8, "fig09": 9, "fig10": 10,
    "fig11": 11, "fig12": 12, "fig13": 13, "fig14": 14,
    "tab01": None, "tab05": None,
}


#: Experiments whose point grid runs through the sweep harness.
SWEEPABLE = ("fig01", "fig08", "fig09", "fig13")

#: Default on-disk cache for sweep points (bypass with ``--no-cache``).
CACHE_DIR = ".repro_cache"


def _seed_kw(args) -> dict[str, int]:
    seed = getattr(args, "seed", None)
    return {} if seed is None else {"seed": seed}


def _sweep_kw(args) -> dict[str, Any]:
    """Harness routing for sweepable experiments.

    Default is the harness with one worker (identical bytes to any
    ``--parallel N``); ``--trace`` falls back to the legacy inline path
    because span events only exist in-process.
    """
    if getattr(args, "trace", None):
        return {}
    kw: dict[str, Any] = {"parallel": getattr(args, "parallel", None) or 1}
    if not getattr(args, "no_cache", False):
        kw["cache_dir"] = CACHE_DIR
    return kw


def _run_fig01(args) -> tuple[Any, str]:
    rows = fig01.run(ops_per_thread=args.ops or 300, **_seed_kw(args),
                     **_sweep_kw(args))
    return rows, fig01.format_rows(rows)


def _run_fig02(args) -> tuple[Any, str]:
    breakdown = fig02.run()
    return breakdown, fig02.format_breakdown(breakdown)


def _run_fig08(args) -> tuple[Any, str]:
    cells = fig08.run(ops_per_thread=args.ops or 300,
                      thread_counts=(1, 2, 4, 8, 16), **_seed_kw(args),
                      **_sweep_kw(args))
    return cells, fig08.format_cells(cells)


def _run_fig09(args) -> tuple[Any, str]:
    results = fig09.run(ops_per_thread=args.ops or 250,
                        record_count=12_000, **_seed_kw(args),
                        **_sweep_kw(args))
    return results, fig09.format_results(results)


def _run_fig10(args) -> tuple[Any, str]:
    results = fig10.run(ops_per_thread=args.ops or 250,
                        record_count=12_000, **_seed_kw(args))
    return results, fig10.format_results(results)


def _run_fig11(args) -> tuple[Any, str]:
    results = fig11.run(ops_per_thread=args.ops or 250,
                        record_count=12_000, **_seed_kw(args))
    return results, fig11.format_results(results)


def _run_fig12(args) -> tuple[Any, str]:
    results = fig12.run(ops_per_thread=args.ops or 300, **_seed_kw(args))
    return results, fig12.format_results(results)


def _run_fig13(args) -> tuple[Any, str]:
    rows = fig13.run(ops=args.ops or 200, **_seed_kw(args),
                     **_sweep_kw(args))
    return rows, fig13.format_rows(rows)


def _run_fig14(args) -> tuple[Any, str]:
    rows = fig14.run(ops_per_thread=args.ops or 200, **_seed_kw(args))
    return rows, fig14.format_rows(rows)


def _run_tab01(args) -> tuple[Any, str]:
    result = tab01.run()
    return result, result["rendered"]


def _run_tab05(args) -> tuple[Any, str]:
    result = tab05.run()
    lines = ["Table 5: Cowbird-P4 data-plane resources"]
    for key, value in result["estimated"].items():
        lines.append(f"  {key:<20s} {value}")
    lines.append(f"  matches paper row: {result['estimated'] == result['paper']}")
    return result, "\n".join(lines)


EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "fig01": ("normalized 256 B probe throughput (Figure 1)", _run_fig01),
    "fig02": ("per-read compute-side CPU breakdown (Figure 2)", _run_fig02),
    "fig08": ("hash-table throughput panels (Figure 8)", _run_fig08),
    "fig09": ("FASTER YCSB throughput (Figure 9)", _run_fig09),
    "fig10": ("FASTER communication ratio (Figure 10)", _run_fig10),
    "fig11": ("FASTER: Cowbird vs Redy (Figure 11)", _run_fig11),
    "fig12": ("8 B reads: Cowbird vs AIFM (Figure 12)", _run_fig12),
    "fig13": ("read latency by record size (Figure 13)", _run_fig13),
    "fig14": ("contending TCP bandwidth (Figure 14)", _run_fig14),
    "tab01": ("spot pricing (Table 1)", _run_tab01),
    "tab05": ("Tofino resource usage (Table 5)", _run_tab05),
}


def _to_jsonable(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _format_snapshot(snapshot: dict, prefix: str = "") -> str:
    """Render a flat metrics snapshot, one ``name value`` line per metric."""
    lines = []
    for name in sorted(snapshot):
        if prefix and not name.startswith(prefix):
            continue
        value = snapshot[name]
        if isinstance(value, dict):
            value = json.dumps(value, sort_keys=True)
        lines.append(f"  {name} = {value}")
    return "\n".join(lines) if lines else "  (no metrics recorded)"


def _run_scenarios(args) -> int:
    """``repro run scenario FILE...`` — validate and (optionally) run."""
    from repro.cluster import ScenarioError, load_scenario
    from repro.cluster.scenario import run_scenario

    if not args.paths:
        print("run scenario: at least one scenario file is required",
              file=sys.stderr)
        return 2
    dump: dict[str, Any] = {}
    for path in args.paths:
        try:
            spec = load_scenario(path)
            spec.validate()
        except (ScenarioError, OSError) as exc:
            print(f"INVALID {path}: {exc}", file=sys.stderr)
            return 1
        if args.validate_only:
            print(f"OK {path}: scenario {spec.name!r} "
                  f"(system={spec.system}, shards={spec.pool.shards}, "
                  f"threads={spec.workload.threads})")
            continue
        print(f"== scenario {spec.name} ({path})")
        started = time.time()
        result = run_scenario(spec)
        elapsed = time.time() - started
        print(f"   system={spec.system} threads={spec.workload.threads} "
              f"shards={spec.pool.shards} seed={spec.seed}")
        print(f"   total_ops={result.total_ops} "
              f"throughput={result.throughput_mops:.3f} Mops "
              f"elapsed_ns={result.elapsed_ns:.0f}")
        print(f"   ({elapsed:.1f}s wall)\n")
        dump[spec.name] = _to_jsonable(result)
    if args.json and not args.validate_only:
        dump["meta"] = {"repro_version": __version__}
        with open(args.json, "w") as handle:
            json.dump(dump, handle, indent=2)
        print(f"raw records written to {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Cowbird paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser(
        "run", help="run one experiment, 'all', or 'scenario FILE...'"
    )
    run_parser.add_argument("experiment", choices=[*EXPERIMENTS, "all", "scenario"])
    run_parser.add_argument("paths", nargs="*", metavar="FILE",
                            help="scenario file(s) for 'run scenario'")
    run_parser.add_argument("--validate-only", action="store_true",
                            help="validate scenario files without running them")
    run_parser.add_argument("--ops", type=int, default=None,
                            help="operations per thread (scale knob)")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="override the experiment's default seed")
    run_parser.add_argument("--parallel", type=int, default=None, metavar="N",
                            help="worker processes for sweep experiments "
                                 f"({', '.join(SWEEPABLE)}); output is "
                                 "byte-identical for any N")
    run_parser.add_argument("--no-cache", action="store_true",
                            help=f"skip the {CACHE_DIR}/ sweep-point cache")
    run_parser.add_argument("--json", metavar="PATH", default=None,
                            help="also dump raw records as JSON")
    run_parser.add_argument("--trace", metavar="PATH", default=None,
                            help="write a Chrome trace_event JSON (Perfetto)")
    run_parser.add_argument("--metrics", action="store_true",
                            help="print the telemetry metrics snapshot")
    metrics_parser = subparsers.add_parser(
        "metrics", help="run one experiment and print its telemetry metrics"
    )
    metrics_parser.add_argument("experiment", choices=list(EXPERIMENTS))
    metrics_parser.add_argument("--ops", type=int, default=None,
                                help="operations per thread (scale knob)")
    metrics_parser.add_argument("--seed", type=int, default=None,
                                help="override the experiment's default seed")
    metrics_parser.add_argument("--prefix", default="",
                                help="only show metrics under this dotted prefix")
    lint_parser = subparsers.add_parser(
        "lint", help="run the simcheck sim-safety linter (SIM001-SIM006)"
    )
    lint_parser.add_argument("paths", nargs="*", metavar="PATH",
                             help="files/directories to lint (default: src/repro)")
    lint_parser.add_argument("--select", action="append", metavar="CODES",
                             help="comma-separated rule codes to run exclusively")
    lint_parser.add_argument("--ignore", action="append", metavar="CODES",
                             help="comma-separated rule codes to skip")
    lint_parser.add_argument("--json", action="store_true",
                             help="emit findings as a JSON array")
    args = parser.parse_args(argv)

    if args.command == "lint":
        from repro.analysis import simcheck

        return simcheck.run(
            args.paths or ["src/repro"],
            select=args.select,
            ignore=args.ignore,
            as_json=args.json,
        )

    if args.command == "list":
        for name, (description, _fn) in EXPERIMENTS.items():
            print(f"  {name:<7s} {description}")
        return 0

    if args.command == "run" and args.experiment == "scenario":
        return _run_scenarios(args)
    if getattr(args, "paths", None):
        parser.error("positional FILE arguments only apply to 'run scenario'")

    if args.command == "metrics":
        description, fn = EXPERIMENTS[args.experiment]
        tel = telemetry.Telemetry()
        with telemetry.activate(tel):
            fn(args)
        print(f"== {args.experiment}: telemetry metrics")
        print(_format_snapshot(tel.snapshot(), args.prefix))
        return 0

    # Telemetry observes only sim-time, so enabling it never changes the
    # numbers (pinned by tests/test_telemetry.py); collect it whenever any
    # output consumer (--trace, --metrics, --json metadata) wants it.
    collect = bool(args.trace or args.metrics or args.json)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    dump: dict[str, Any] = {}
    meta: dict[str, Any] = {
        "repro_version": __version__,
        "experiments": {},
    }
    trace_events: list = []
    trace_metrics: dict[str, Any] = {}
    for name in names:
        description, fn = EXPERIMENTS[name]
        print(f"== {name}: {description}")
        started = time.time()
        tel = telemetry.Telemetry() if collect else telemetry.NULL_TELEMETRY
        with telemetry.activate(tel):
            raw, rendered = fn(args)
        elapsed = time.time() - started
        print(rendered)
        print(f"   ({elapsed:.1f}s wall)\n")
        dump[name] = _to_jsonable(raw)
        if collect:
            snapshot = tel.snapshot()
            total_ops = sum(
                v for k, v in snapshot.items()
                if k.startswith("bench.") and k.endswith(".ops")
            )
            meta["experiments"][name] = {
                "seed": args.seed if args.seed is not None
                else DEFAULT_SEEDS.get(name),
                "ops": args.ops,
                "total_ops": total_ops,
                "sim_duration_ns": tel.tracer.last_timestamp_ns(),
                "events_dispatched": snapshot.get("sim.events_dispatched", 0),
            }
            if args.metrics:
                print(f"-- {name}: telemetry metrics")
                print(_format_snapshot(snapshot))
                print()
            if args.trace:
                trace_events.extend(tel.tracer.events)
                trace_metrics[name] = snapshot
    if args.json:
        dump["meta"] = meta
        with open(args.json, "w") as handle:
            json.dump(dump, handle, indent=2)
        print(f"raw records written to {args.json}")
    if args.trace:
        telemetry.write_chrome_trace(args.trace, trace_events, trace_metrics)
        print(f"chrome trace written to {args.trace}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
