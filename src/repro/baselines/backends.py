"""The backend interface and the RDMA/Cowbird/local implementations.

A backend exposes an issue/poll pair so one workload loop can drive
every system in the evaluation:

* ``issue_read``/``issue_write`` start an operation and return a token;
* ``poll_completions`` returns tokens whose operations finished;
* ``pending_limit`` bounds how many operations the workload may keep in
  flight (1 for synchronous systems, the batch size for async ones).

CPU-cost fidelity is the whole game: a synchronous one-sided read burns
the Figure 2 post cost, then busy-polls the core through the network
round trip; Cowbird's adapter pays tens of nanoseconds of local stores.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Any, Generator

from repro.cowbird.api import BufferFullError, CowbirdInstance
from repro.rdma.qp import WorkRequest, WorkType
from repro.sim.cpu import TAG_APP, TAG_COMM, Thread

__all__ = [
    "Backend",
    "CowbirdBackend",
    "LocalMemoryBackend",
    "OneSidedAsyncBackend",
    "OneSidedSyncBackend",
    "TwoSidedSyncBackend",
]

_token_counter = itertools.count(1)


class Backend(ABC):
    """A remote-memory system under test."""

    name: str = "backend"
    #: Maximum operations the workload may keep outstanding.
    pending_limit: int = 1

    @abstractmethod
    def issue_read(
        self, thread: Thread, offset: int, length: int
    ) -> Generator[Any, Any, int]:
        """Start a read of remote [offset, offset+length); returns a token."""

    @abstractmethod
    def issue_write(
        self, thread: Thread, offset: int, data: bytes
    ) -> Generator[Any, Any, int]:
        """Start a write of ``data`` to remote ``offset``; returns a token."""

    @abstractmethod
    def poll_completions(
        self, thread: Thread, max_ret: int = 64, block: bool = False
    ) -> Generator[Any, Any, list[int]]:
        """Collect tokens of finished operations.

        With ``block=True`` the call waits (in whatever way is idiomatic
        for the system — busy-polling for sync RDMA, event-checking for
        Cowbird) until at least one completion is available, provided
        any operation is outstanding.
        """

    def outstanding(self) -> int:
        return 0


class LocalMemoryBackend(Backend):
    """The upper bound: 'remote' accesses hit local DRAM.

    Completion is immediate; the only cost is the memory touch itself,
    which the workload already charges as application time.
    """

    name = "local"
    pending_limit = 1

    def __init__(self, cost) -> None:
        self.cost = cost
        self._done: deque[int] = deque()

    def issue_read(self, thread, offset, length):
        yield from thread.compute(self.cost.local_memory_write, tag=TAG_APP)
        token = next(_token_counter)
        self._done.append(token)
        return token

    def issue_write(self, thread, offset, data):
        yield from thread.compute(
            self.cost.local_memory_write + self.cost.memcpy_per_byte * len(data),
            tag=TAG_APP,
        )
        token = next(_token_counter)
        self._done.append(token)
        return token

    def poll_completions(self, thread, max_ret=64, block=False):
        out = []
        while self._done and len(out) < max_ret:
            out.append(self._done.popleft())
        return out
        yield  # pragma: no cover - keeps this a generator


class _RdmaBackendBase(Backend):
    """Shared plumbing for verbs-based backends."""

    def __init__(self, compute_host, qp, region_handle, scratch_bytes: int = 1 << 20):
        self.host = compute_host
        self.verbs = compute_host.verbs
        self.cost = compute_host.verbs.cost
        self.qp = qp
        self.region = region_handle
        # Local scratch the RNIC DMAs into/out of.
        self.scratch = compute_host.registry.register(
            scratch_bytes, name=f"{self.name}-scratch"
        )
        self._scratch_cursor = 0

    def _scratch_slot(self, length: int) -> int:
        aligned = (length + 63) & ~63
        if self._scratch_cursor + aligned > self.scratch.length:
            self._scratch_cursor = 0
        addr = self.scratch.base_addr + self._scratch_cursor
        self._scratch_cursor += aligned
        return addr


class OneSidedSyncBackend(_RdmaBackendBase):
    """Synchronous one-sided RDMA: post, busy-poll, repeat (Section 8)."""

    name = "one-sided-sync"
    pending_limit = 1

    def __init__(self, compute_host, qp, region_handle, **kwargs):
        super().__init__(compute_host, qp, region_handle, **kwargs)
        self._done: deque[int] = deque()

    def issue_read(self, thread, offset, length):
        yield from self.verbs.read_sync(
            thread, self.qp, self._scratch_slot(length),
            self.region.translate(offset, length), self.region.rkey, length,
        )
        token = next(_token_counter)
        self._done.append(token)
        return token

    def issue_write(self, thread, offset, data):
        addr = self._scratch_slot(len(data))
        self.scratch.write(addr, data)
        yield from self.verbs.write_sync(
            thread, self.qp, addr,
            self.region.translate(offset, len(data)), self.region.rkey, len(data),
        )
        token = next(_token_counter)
        self._done.append(token)
        return token

    def poll_completions(self, thread, max_ret=64, block=False):
        out = []
        while self._done and len(out) < max_ret:
            out.append(self._done.popleft())
        return out
        yield  # pragma: no cover


class OneSidedAsyncBackend(_RdmaBackendBase):
    """Asynchronous one-sided RDMA with request pipelining.

    The paper's strongest conventional baseline: requests are posted in
    batches of 100 and completions reaped later, overlapping
    communication with computation.  Every post and poll still costs the
    full Figure 2 breakdown on the application thread.
    """

    name = "one-sided-async"

    def __init__(self, compute_host, qp, region_handle, batch: int = 100, **kwargs):
        super().__init__(compute_host, qp, region_handle, **kwargs)
        self.pending_limit = batch
        self._wr_to_token: dict[int, int] = {}
        self._completed: deque[int] = deque()

    def outstanding(self) -> int:
        return len(self._wr_to_token)

    def issue_read(self, thread, offset, length):
        wr_id = yield from self.verbs.read_async(
            thread, self.qp, self._scratch_slot(length),
            self.region.translate(offset, length), self.region.rkey, length,
        )
        token = next(_token_counter)
        self._wr_to_token[wr_id] = token
        return token

    def issue_write(self, thread, offset, data):
        addr = self._scratch_slot(len(data))
        self.scratch.write(addr, data)
        wr_id = yield from self.verbs.write_async(
            thread, self.qp, addr,
            self.region.translate(offset, len(data)), self.region.rkey, len(data),
        )
        token = next(_token_counter)
        self._wr_to_token[wr_id] = token
        return token

    def poll_completions(self, thread, max_ret=64, block=False):
        while True:
            completions = yield from self.verbs.poll_cq(thread, self.qp.cq, max_ret)
            for completion in completions:
                token = self._wr_to_token.pop(completion.wr_id, None)
                if token is not None:
                    self._completed.append(token)
            if self._completed or not block or not self._wr_to_token:
                break
            waiter = self.host.sim.future()
            self.qp.cq.notify_next_push(waiter)
            yield from thread.spin_wait(waiter, tag=TAG_COMM)
        out = []
        while self._completed and len(out) < max_ret:
            out.append(self._completed.popleft())
        return out


class TwoSidedSyncBackend(_RdmaBackendBase):
    """Two-sided RDMA RPC: SEND request, server WRITE + SEND response.

    The memory pool runs a real server thread (so this baseline consumes
    pool CPU, unlike everything else): it polls for request SENDs,
    copies the data, writes it to the client's buffer, and sends a
    response that completes the client's pre-posted RECV.
    """

    name = "two-sided-sync"
    pending_limit = 1

    REQUEST_BYTES = 24

    def __init__(self, compute_host, pool_host, qp, server_qp, region_handle, **kwargs):
        super().__init__(compute_host, qp, region_handle, **kwargs)
        self.pool_host = pool_host
        self.server_qp = server_qp
        self._done: deque[int] = deque()
        self._server_started = False

    def start_server(self) -> None:
        """Spawn the pool-side RPC loop on a pool CPU thread."""
        if self._server_started:
            return
        self._server_started = True
        thread = self.pool_host.cpu.thread("rpc-server")
        self.pool_host.sim.spawn(self._server_loop(thread), name="rpc-server")

    def _server_loop(self, thread):
        import struct

        verbs = self.pool_host.verbs
        cost = verbs.cost
        pool_region = self.pool_host.registry.by_rkey(self.region.rkey)
        while True:
            # Keep a recv posted, then busy-wait for the next request.
            recv = WorkRequest(
                work_type=WorkType.RECV, local_addr=0, remote_addr=0,
                rkey=0, length=self.REQUEST_BYTES,
            )
            self.pool_host.nic.post(self.server_qp, recv)
            completions = yield from verbs.spin_poll(thread, self.server_qp.cq, 1)
            del completions
            request = self._pending_request
            op, offset, length, reply_addr = request
            yield from thread.compute(cost.rpc_server_handle, tag=TAG_COMM)
            if op == 0:  # read
                yield from thread.compute(cost.memcpy_per_byte * length, tag=TAG_COMM)
                data = pool_region.remote_read(
                    self.region.translate(offset, length), length, self.region.rkey
                )
                scratch = self.pool_host.registry.register(max(length, 64))
                scratch.write(scratch.base_addr, data)
                yield from verbs.post_send(
                    thread, self.server_qp,
                    WorkRequest(
                        work_type=WorkType.WRITE, local_addr=scratch.base_addr,
                        remote_addr=reply_addr, rkey=self.scratch.rkey,
                        length=length,
                    ),
                )
            # Response notification (SEND completes the client's RECV).
            yield from verbs.post_send(
                thread, self.server_qp,
                WorkRequest(
                    work_type=WorkType.SEND, local_addr=0, remote_addr=0,
                    rkey=0, length=8, inline_payload=b"RESP-OK!",
                ),
            )
            # Drain our own WRITE/SEND completions.
            yield from verbs.spin_poll(thread, self.server_qp.cq, 2 if op == 0 else 1)

    def issue_read(self, thread, offset, length):
        import struct

        self.start_server()
        reply_addr = self._scratch_slot(length)
        # Pre-post the RECV for the server's response notification.
        yield from self.verbs.post_recv(
            thread, self.qp,
            WorkRequest(work_type=WorkType.RECV, local_addr=0, remote_addr=0,
                        rkey=0, length=8),
        )
        self._pending_request = (0, offset, length, reply_addr)
        request = struct.pack("<IIQQ", 0, length, offset, reply_addr)[: self.REQUEST_BYTES]
        yield from self.verbs.post_send(
            thread, self.qp,
            WorkRequest(work_type=WorkType.SEND, local_addr=0, remote_addr=0,
                        rkey=0, length=len(request), inline_payload=request),
        )
        # Busy-poll until both our SEND and the response RECV complete.
        yield from self.verbs.spin_poll(thread, self.qp.cq, 2)
        token = next(_token_counter)
        self._done.append(token)
        return token

    def issue_write(self, thread, offset, data):
        import struct

        self.start_server()
        # Write RPC: inline for small payloads (the microbenchmark case);
        # the server applies it during request handling.
        self.start_server()
        yield from self.verbs.post_recv(
            thread, self.qp,
            WorkRequest(work_type=WorkType.RECV, local_addr=0, remote_addr=0,
                        rkey=0, length=8),
        )
        pool_region = self.pool_host.registry.by_rkey(self.region.rkey)
        pool_region.write(self.region.translate(offset, len(data)), data)
        self._pending_request = (1, offset, len(data), 0)
        request = struct.pack("<IIQQ", 1, len(data), offset, 0)[: self.REQUEST_BYTES]
        yield from self.verbs.post_send(
            thread, self.qp,
            WorkRequest(work_type=WorkType.SEND, local_addr=0, remote_addr=0,
                        rkey=0, length=len(request), inline_payload=request),
        )
        yield from self.verbs.spin_poll(thread, self.qp.cq, 2)
        token = next(_token_counter)
        self._done.append(token)
        return token

    def poll_completions(self, thread, max_ret=64, block=False):
        out = []
        while self._done and len(out) < max_ret:
            out.append(self._done.popleft())
        return out
        yield  # pragma: no cover


class CowbirdBackend(Backend):
    """Adapter presenting a Cowbird instance through the Backend API."""

    name = "cowbird"

    def __init__(self, instance: CowbirdInstance, region_id: int = 0,
                 pending_limit: int = 256, sharded=None):
        self.instance = instance
        self.region_id = region_id
        self.pending_limit = pending_limit
        #: Optional ShardedRegionHandle: logical offsets are then routed
        #: to the owning shard's region_id (block striping).
        self.sharded = sharded
        self.poll_id = instance.poll_create()
        self._outstanding = 0

    def outstanding(self) -> int:
        return self._outstanding

    def _route(self, offset: int, length: int) -> tuple[int, int]:
        """Map a logical offset to ``(region_id, region-local offset)``."""
        if self.sharded is None:
            return self.region_id, offset
        shard, local = self.sharded.locate(offset, length)
        return shard.region_id, local

    def issue_read(self, thread, offset, length):
        region_id, offset = self._route(offset, length)
        while True:
            try:
                request_id = yield from self.instance.async_read(
                    thread, region_id, offset, length
                )
                break
            except BufferFullError:
                # Paper semantics: consume completions, then retry.
                yield from self._drain_one(thread)
        self.instance.poll_add(self.poll_id, request_id)
        self._outstanding += 1
        return request_id

    def issue_write(self, thread, offset, data):
        region_id, offset = self._route(offset, len(data))
        while True:
            try:
                request_id = yield from self.instance.async_write(
                    thread, region_id, offset, data
                )
                break
            except BufferFullError:
                yield from self._drain_one(thread)
        self.instance.poll_add(self.poll_id, request_id)
        self._outstanding += 1
        return request_id

    def _drain_one(self, thread):
        events = yield from self.instance.poll_wait(thread, self.poll_id, max_ret=64)
        for event in events:
            self._release(event)
        self._pre_drained = getattr(self, "_pre_drained", [])
        self._pre_drained.extend(event.request_id for event in events)

    def _release(self, event):
        self._outstanding -= 1
        from repro.cowbird.wire import RwType

        if event.rw_type is RwType.READ:
            # Consume the payload so the response ring recycles.
            self.instance.fetch_response(event.request_id)

    def poll_completions(self, thread, max_ret=64, block=False):
        out = list(getattr(self, "_pre_drained", []))[:max_ret]
        if out:
            self._pre_drained = self._pre_drained[len(out):]
            return out
        timeout = None if block and self._outstanding else 0
        events = yield from self.instance.poll_wait(
            thread, self.poll_id, max_ret=max_ret, timeout=timeout
        )
        for event in events:
            self._release(event)
        return [event.request_id for event in events]
