"""Baseline remote-memory systems the paper compares against.

Every comparator in the evaluation is implemented behind one
:class:`~repro.baselines.backends.Backend` interface so workloads can
swap systems without changing their issue/poll loop:

* two-sided synchronous RDMA RPC (client SEND -> server WRITE+SEND),
* one-sided synchronous RDMA (busy-polled ``ibv_post_send``/``poll_cq``),
* one-sided asynchronous RDMA (batch-of-100 pipelining, as in Section 8),
* Cowbird itself (thin adapter over the client library),
* Redy (Figure 11): dedicated pinned I/O cores batching requests,
* AIFM (Figure 12): Shenango-style green threads + IOKernel dispatch,
* a local SATA SSD (Figure 9's default FASTER storage backend),
* purely local memory (the upper bound).
"""

from repro.baselines.backends import (
    Backend,
    CowbirdBackend,
    LocalMemoryBackend,
    OneSidedAsyncBackend,
    OneSidedSyncBackend,
    TwoSidedSyncBackend,
)
from repro.baselines.redy import RedyBackend, RedyConfig
from repro.baselines.aifm import AifmBackend, AifmConfig
from repro.baselines.ssd import SsdBackend, SsdConfig, SsdDrive

__all__ = [
    "AifmBackend",
    "AifmConfig",
    "Backend",
    "CowbirdBackend",
    "LocalMemoryBackend",
    "OneSidedAsyncBackend",
    "OneSidedSyncBackend",
    "RedyBackend",
    "RedyConfig",
    "SsdBackend",
    "SsdConfig",
    "SsdDrive",
    "TwoSidedSyncBackend",
]
