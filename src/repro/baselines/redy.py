"""A behavioural model of Redy (Figure 11's comparator).

Redy [VLDB'22] exposes remote memory as a high-performance cache: user
requests are handed to dedicated **I/O threads pinned to physical
cores** on the compute node, which batch them and ship them to the
memory server over throughput-optimized RDMA connections; the server
processes a batch sequentially and writes back a batch of responses.

The properties the paper's comparison turns on are:

1. application threads pay only a cheap enqueue per request, but
2. every I/O thread **occupies a compute-node core** that FASTER cannot
   use, and
3. the server-side sequential processing bounds aggregate throughput.

We model the I/O threads and the server loop as real simulated threads
(so core stealing emerges from the CPU scheduler) and carry batches
over the simulated RDMA fabric.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.baselines.backends import Backend
from repro.rdma.qp import WorkRequest, WorkType
from repro.sim.cpu import TAG_COMM

__all__ = ["RedyBackend", "RedyConfig"]

_tokens = itertools.count(1)


@dataclass
class RedyConfig:
    """Redy tunables (defaults approximate the paper's description)."""

    #: Dedicated I/O threads pinned on the compute node.
    io_threads: int = 2
    #: Requests batched per server round trip.
    batch_size: int = 64
    #: App-thread cost to enqueue one request to an I/O thread.
    enqueue_ns: float = 60.0
    #: I/O-thread cost per request (marshal + WQE).
    io_per_op_ns: float = 50.0
    #: Memory-server sequential processing cost per request.
    server_per_op_ns: float = 120.0
    #: Fixed per-batch cost on both I/O thread and server.
    per_batch_ns: float = 600.0


@dataclass
class _RedyRequest:
    token: int
    is_write: bool
    offset: int
    length: int
    issuer: int = 0
    data: bytes = b""


class RedyBackend(Backend):
    """Redy as a workload backend."""

    name = "redy"

    def __init__(
        self,
        compute_host,
        pool_host,
        region_handle,
        qp_pairs,
        config: Optional[RedyConfig] = None,
    ) -> None:
        """``qp_pairs``: one (client_qp, server_qp) tuple per I/O thread."""
        self.host = compute_host
        self.pool_host = pool_host
        self.region = region_handle
        self.config = config or RedyConfig()
        self.cost = compute_host.verbs.cost
        if len(qp_pairs) < self.config.io_threads:
            raise ValueError("need one QP pair per I/O thread")
        self.qp_pairs = qp_pairs
        self.pending_limit = self.config.batch_size * self.config.io_threads
        self._queue: deque[_RedyRequest] = deque()
        self._completed: dict[int, deque[int]] = {}
        self._outstanding: dict[int, int] = {}
        self._wake_futures: list = []
        self._completion_futures: dict[int, list] = {}
        self._started = False
        #: Threads created (visible so experiments can count stolen cores).
        self.io_thread_objs = []
        self.server_thread_objs = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Pin the I/O threads (compute cores!) and the server loop."""
        if self._started:
            return
        self._started = True
        for i in range(self.config.io_threads):
            io_thread = self.host.cpu.thread(f"redy-io-{i}")
            self.io_thread_objs.append(io_thread)
            self.host.sim.spawn(
                self._io_loop(io_thread, *self.qp_pairs[i]), name=f"redy-io-{i}"
            )

    def outstanding(self) -> int:
        return sum(self._outstanding.values())

    # ------------------------------------------------------------------
    # Backend interface (application side)
    # ------------------------------------------------------------------
    def issue_read(self, thread, offset, length):
        self.start()
        yield from thread.compute(self.config.enqueue_ns, tag=TAG_COMM)
        token = next(_tokens)
        self._enqueue(_RedyRequest(token=token, is_write=False, offset=offset,
                                   length=length, issuer=thread.thread_id))
        return token

    def issue_write(self, thread, offset, data):
        self.start()
        yield from thread.compute(self.config.enqueue_ns, tag=TAG_COMM)
        token = next(_tokens)
        self._enqueue(_RedyRequest(token=token, is_write=True, offset=offset,
                                   length=len(data), data=data,
                                   issuer=thread.thread_id))
        return token

    def _enqueue(self, request: _RedyRequest) -> None:
        self._queue.append(request)
        issuer = request.issuer
        self._outstanding[issuer] = self._outstanding.get(issuer, 0) + 1
        self._completed.setdefault(issuer, deque())
        wakers, self._wake_futures = self._wake_futures, []
        for waker in wakers:
            waker.resolve(None)

    def poll_completions(self, thread, max_ret=64, block=False):
        yield from thread.compute(self.cost.cowbird_poll_empty, tag=TAG_COMM)
        issuer = thread.thread_id
        mine = self._completed.setdefault(issuer, deque())
        while block and not mine and self._outstanding.get(issuer, 0):
            waiter = self.host.sim.future()
            self._completion_futures.setdefault(issuer, []).append(waiter)
            yield from thread.wait(waiter)
        out = []
        while mine and len(out) < max_ret:
            out.append(mine.popleft())
        return out

    # ------------------------------------------------------------------
    # The pinned I/O loop (compute node) and server processing
    # ------------------------------------------------------------------
    def _io_loop(self, thread, client_qp, server_qp):
        config = self.config
        pool_region = self.pool_host.registry.by_rkey(self.region.rkey)
        slab = self.host.registry.register(1 << 20, name=f"redy-slab-{thread.name}")
        while True:
            if not self._queue:
                waiter = self.host.sim.future()
                self._wake_futures.append(waiter)
                yield from thread.wait(waiter)
                continue
            batch: list[_RedyRequest] = []
            while self._queue and len(batch) < config.batch_size:
                batch.append(self._queue.popleft())
            # Marshal the batch and ship it (one message pair per batch).
            yield from thread.compute(
                config.per_batch_ns + config.io_per_op_ns * len(batch),
                tag=TAG_COMM,
            )
            descriptor = b"B" * min(1024, 16 * len(batch))
            wr = WorkRequest(
                work_type=WorkType.SEND, local_addr=0, remote_addr=0, rkey=0,
                length=len(descriptor), inline_payload=descriptor,
            )
            self.host.nic.post(client_qp, wr)
            self.pool_host.nic.post(
                server_qp,
                WorkRequest(work_type=WorkType.RECV, local_addr=0,
                            remote_addr=0, rkey=0, length=1024),
            )
            # Server-side sequential processing (charged as simulated
            # delay on the pool: the server is not a modelled CPU-core
            # bottleneck for the compute node, only a rate limit).
            server_time = config.per_batch_ns + config.server_per_op_ns * len(batch)
            total_bytes = 0
            for request in batch:
                if request.is_write:
                    pool_region.write(
                        self.region.translate(request.offset, request.length),
                        request.data,
                    )
                else:
                    total_bytes += request.length
            yield from thread.sleep(
                2.0 * self.cost.propagation_delay_ns
                + 2.0 * self.cost.nic_processing_delay_ns
                + server_time
            )
            # Response batch lands in the slab via one RDMA write; the
            # I/O thread reaps it and completes the app requests.
            response_wr = WorkRequest(
                work_type=WorkType.WRITE, local_addr=slab.base_addr,
                remote_addr=slab.base_addr, rkey=slab.rkey,
                length=max(64, min(total_bytes, slab.length // 2)),
            )
            del response_wr  # bytes accounted in server_time + link below
            yield from thread.compute(
                self.cost.rdma_poll_total(), tag=TAG_COMM
            )
            for request in batch:
                self._completed.setdefault(request.issuer, deque()).append(
                    request.token
                )
                self._outstanding[request.issuer] -= 1
                completers = self._completion_futures.pop(request.issuer, [])
                for completer in completers:
                    completer.resolve(None)
