"""The SATA SSD storage model (FASTER's default backend, Figure 9).

Section 8's SSD baseline is a local SATA drive with 6 Gb/s interface
throughput.  The model captures what matters for the comparison:

* fixed access latency per I/O (flash read + controller + SATA),
* a bounded internal queue depth (NCQ) for parallelism,
* interface bandwidth as the large-transfer ceiling.

Remote memory beats this by ≥2.3× in the paper; Cowbird by 12–84×.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.baselines.backends import Backend
from repro.sim.cpu import TAG_COMM
from repro.sim.engine import Future, Simulator
from repro.sim.units import transmission_time_ns

__all__ = ["SsdBackend", "SsdConfig", "SsdDrive"]

_tokens = itertools.count(1)


@dataclass
class SsdConfig:
    """SATA SSD parameters (Section 8: 6 Gb/s SATA)."""

    bandwidth_gbps: float = 6.0
    access_latency_ns: float = 80_000.0
    queue_depth: int = 32
    #: Sustained random-I/O ceiling of the drive's controller/channels.
    max_iops: int = 100_000
    #: Minimum addressable unit; smaller I/Os still move one sector.
    sector_bytes: int = 512
    #: Host-side submission/completion cost per I/O (io_uring-ish).
    submit_ns: float = 600.0


@dataclass
class _SsdIo:
    future: Future
    size_bytes: int


class SsdDrive:
    """The device itself: a queue-depth-limited, bandwidth-capped server."""

    def __init__(self, sim: Simulator, config: Optional[SsdConfig] = None) -> None:
        self.sim = sim
        self.config = config or SsdConfig()
        self._inflight = 0
        self._waiting: deque[_SsdIo] = deque()
        #: The SATA interface serializes transfers.
        self._bus_free_at = 0.0
        #: Controller issue slots pace I/Os at the drive's IOPS ceiling.
        self._issue_free_at = 0.0
        self.ios_completed = 0
        self.bytes_transferred = 0

    def submit(self, size_bytes: int) -> Future:
        """Submit one I/O; the future resolves when it completes."""
        if size_bytes <= 0:
            raise ValueError(f"I/O size must be positive: {size_bytes}")
        io = _SsdIo(future=self.sim.future(), size_bytes=size_bytes)
        if self._inflight < self.config.queue_depth:
            self._start(io)
        else:
            self._waiting.append(io)
        return io.future

    def _start(self, io: _SsdIo) -> None:
        self._inflight += 1
        config = self.config
        sectors = max(1, -(-io.size_bytes // config.sector_bytes))
        transfer_bytes = sectors * config.sector_bytes
        transfer = transmission_time_ns(transfer_bytes, config.bandwidth_gbps)
        # Controller pacing: random I/Os issue at most at max_iops.
        issue_gap = 1e9 / config.max_iops if config.max_iops else 0.0
        issue_at = max(self.sim.now, self._issue_free_at)
        self._issue_free_at = issue_at + issue_gap
        # The bus is shared: transfers serialize after the flash access.
        ready_at = issue_at + config.access_latency_ns
        start = max(ready_at, self._bus_free_at)
        self._bus_free_at = start + transfer
        done_at = start + transfer
        self.sim.call_at(done_at, lambda: self._finish(io, transfer_bytes))

    def _finish(self, io: _SsdIo, transfer_bytes: int) -> None:
        self._inflight -= 1
        self.ios_completed += 1
        self.bytes_transferred += transfer_bytes
        io.future.resolve(None)
        if self._waiting and self._inflight < self.config.queue_depth:
            self._start(self._waiting.popleft())


class SsdBackend(Backend):
    """The drive exposed through the workload Backend interface."""

    name = "ssd"

    def __init__(self, compute_host, config: Optional[SsdConfig] = None,
                 pending_limit: int = 64) -> None:
        self.host = compute_host
        self.config = config or SsdConfig()
        self.drive = SsdDrive(compute_host.sim, self.config)
        self.pending_limit = pending_limit
        self._completed: dict[int, deque[int]] = {}
        self._outstanding: dict[int, int] = {}
        self._waiters: dict[int, list] = {}
        #: Backing store for verification (offset -> bytes).
        self._backing: dict[int, bytes] = {}

    def outstanding(self) -> int:
        return sum(self._outstanding.values())

    def backing_write(self, offset: int, data: bytes) -> None:
        self._backing[offset] = bytes(data)

    def backing_read(self, offset: int, length: int) -> bytes:
        data = self._backing.get(offset, b"")
        return data[:length]

    def _submit(self, thread, size_bytes):
        yield from thread.compute(self.config.submit_ns, tag=TAG_COMM)
        token = next(_tokens)
        issuer = thread.thread_id
        self._outstanding[issuer] = self._outstanding.get(issuer, 0) + 1
        self._completed.setdefault(issuer, deque())
        future = self.drive.submit(size_bytes)

        def on_done(_future, token=token, issuer=issuer):
            self._completed[issuer].append(token)
            self._outstanding[issuer] -= 1
            waiters = self._waiters.pop(issuer, [])
            for waiter in waiters:
                waiter.resolve(None)

        future.add_callback(on_done)
        return token

    def issue_read(self, thread, offset, length):
        return (yield from self._submit(thread, length))

    def issue_write(self, thread, offset, data):
        return (yield from self._submit(thread, len(data)))

    def poll_completions(self, thread, max_ret=64, block=False):
        yield from thread.compute(self.host.verbs.cost.cowbird_poll_empty,
                                  tag=TAG_COMM)
        issuer = thread.thread_id
        mine = self._completed.setdefault(issuer, deque())
        while block and not mine and self._outstanding.get(issuer, 0):
            waiter = self.host.sim.future()
            self._waiters.setdefault(issuer, []).append(waiter)
            yield from thread.wait(waiter)
        out = []
        while mine and len(out) < max_ret:
            out.append(mine.popleft())
        return out
