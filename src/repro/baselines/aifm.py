"""A behavioural model of AIFM (Figure 12's comparator).

AIFM [OSDI'20] is application-integrated far memory on the Shenango
runtime: dereferencing a non-local remote pointer yields the green
thread, ships a request through Shenango's dedicated IOKernel core and
TCP data path to a remote agent, and reschedules the thread when the
object arrives.  The properties the comparison turns on:

1. every remote access pays object-model and green-thread costs on the
   application core (deref checks, two context switches),
2. all network I/O funnels through a **single dedicated IOKernel
   core** running a TCP stack — a global serialization point, and
3. the request/response round trip is TCP-based, an order of magnitude
   slower per message than raw RDMA verbs.

Together these cap AIFM's small-object read throughput at a fraction of
an RDMA-based design, which is exactly the gap Figure 12 shows.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.baselines.backends import Backend
from repro.sim.cpu import TAG_COMM

__all__ = ["AifmBackend", "AifmConfig"]

_tokens = itertools.count(1)


@dataclass
class AifmConfig:
    """AIFM/Shenango parameters (xl170-deployment flavoured)."""

    #: Remote-pointer dereference check + object bookkeeping.
    deref_ns: float = 100.0
    #: One green-thread context switch (two per remote access).
    switch_ns: float = 280.0
    #: IOKernel CPU per request (TCP tx + rx processing).
    iokernel_per_op_ns: float = 1_500.0
    #: TCP round trip to the remote agent (25 GbE, kernel-bypass).
    network_rtt_ns: float = 10_000.0
    #: Green threads multiplexed per application thread.
    green_threads: int = 8


class AifmBackend(Backend):
    """AIFM as a workload backend."""

    name = "aifm"

    def __init__(self, compute_host, pool_host, region_handle,
                 config: Optional[AifmConfig] = None) -> None:
        self.host = compute_host
        self.pool_host = pool_host
        self.region = region_handle
        self.config = config or AifmConfig()
        self.cost = compute_host.verbs.cost
        self.pending_limit = self.config.green_threads
        self._queue: deque[tuple[int, int, bool, int, int, bytes]] = deque()
        self._completed: dict[int, deque[int]] = {}
        self._outstanding: dict[int, int] = {}
        self._wake: list = []
        self._completion_waiters: dict[int, list] = {}
        self._started = False
        self.iokernel_thread = None

    def start(self) -> None:
        """Dedicate one compute core to the Shenango IOKernel."""
        if self._started:
            return
        self._started = True
        self.iokernel_thread = self.host.cpu.thread("aifm-iokernel")
        self.host.sim.spawn(self._iokernel_loop(self.iokernel_thread),
                            name="aifm-iokernel")

    def outstanding(self) -> int:
        return sum(self._outstanding.values())

    # ------------------------------------------------------------------
    def issue_read(self, thread, offset, length):
        self.start()
        # Deref check + yield into the scheduler.
        yield from thread.compute(
            self.config.deref_ns + self.config.switch_ns, tag=TAG_COMM
        )
        token = next(_tokens)
        issuer = thread.thread_id
        self._queue.append((token, issuer, False, offset, length, b""))
        self._outstanding[issuer] = self._outstanding.get(issuer, 0) + 1
        self._completed.setdefault(issuer, deque())
        self._wake_iokernel()
        return token

    def issue_write(self, thread, offset, data):
        self.start()
        yield from thread.compute(
            self.config.deref_ns + self.config.switch_ns, tag=TAG_COMM
        )
        token = next(_tokens)
        issuer = thread.thread_id
        self._queue.append((token, issuer, True, offset, len(data), data))
        self._outstanding[issuer] = self._outstanding.get(issuer, 0) + 1
        self._completed.setdefault(issuer, deque())
        self._wake_iokernel()
        return token

    def poll_completions(self, thread, max_ret=64, block=False):
        # The green thread being rescheduled is the second switch.
        yield from thread.compute(self.config.switch_ns, tag=TAG_COMM)
        issuer = thread.thread_id
        mine = self._completed.setdefault(issuer, deque())
        while block and not mine and self._outstanding.get(issuer, 0):
            waiter = self.host.sim.future()
            self._completion_waiters.setdefault(issuer, []).append(waiter)
            yield from thread.wait(waiter)
        out = []
        while mine and len(out) < max_ret:
            out.append(mine.popleft())
        return out

    # ------------------------------------------------------------------
    def _wake_iokernel(self) -> None:
        wakers, self._wake = self._wake, []
        for waker in wakers:
            waker.resolve(None)

    def _iokernel_loop(self, thread):
        """The single IOKernel core: every packet goes through here."""
        pool_region = self.pool_host.registry.by_rkey(self.region.rkey)
        sim = self.host.sim
        while True:
            if not self._queue:
                waiter = sim.future()
                self._wake.append(waiter)
                yield from thread.wait(waiter)
                continue
            token, issuer, is_write, offset, length, data = self._queue.popleft()
            # TCP tx+rx processing serializes on this core.
            yield from thread.compute(
                self.config.iokernel_per_op_ns, tag=TAG_COMM
            )
            if is_write:
                pool_region.write(self.region.translate(offset, length), data)
            # The round trip to the remote agent overlaps with the next
            # request's CPU work (the IOKernel pipelines).
            def complete(token=token, issuer=issuer):
                self._completed.setdefault(issuer, deque()).append(token)
                self._outstanding[issuer] -= 1
                waiters = self._completion_waiters.pop(issuer, [])
                for waiter in waiters:
                    waiter.resolve(None)

            sim.call_after(self.config.network_rtt_ns, complete)
