"""Cowbird's in-memory wire formats (Section 4.2, Tables 3).

Three byte-exact layouts live here:

* :class:`RequestMetadata` — the fixed-size request descriptor the
  client appends to its metadata ring and the offload engine parses out
  of RDMA read payloads (Table 3: rw_type/req_addr/resp_addr/length/
  region_id, padded for alignment).
* :class:`GreenBlock` — the client-written bookkeeping the engine reads
  with a single probe (tail pointers, packed contiguously).
* :class:`RedBlock` — the engine-written bookkeeping the client reads
  locally (head pointers, response tail, and the per-type progress
  counters that make completion tracking integer comparisons).

Request IDs encode operation type, region id, and a per-type sequence
number (Section 4.3) so that "almost all checks can be done with simple
integer arithmetic".
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

__all__ = [
    "BookkeepingLayout",
    "GreenBlock",
    "RedBlock",
    "RequestMetadata",
    "RwType",
    "decode_request_id",
    "encode_request_id",
]


class RwType(enum.IntEnum):
    """Request-type discriminator; INVALID marks not-yet-ready entries.

    The client writes the rw_type cache line *last* (Section 4.3), so an
    engine that races ahead of an in-progress append sees INVALID and
    stops.
    """

    INVALID = 0
    READ = 1
    WRITE = 2


#: Packed layout: rw_type u16, region_id u16, length u32, req_addr u64,
#: resp_addr u64 = 24 bytes, padded to 32 for cache-line-friendly
#: alignment (R1: fixed-size, trivially parsed by packet-centric devices).
_METADATA_STRUCT = struct.Struct("<HHIQQ")
METADATA_ENTRY_BYTES = 32
_METADATA_PAD = METADATA_ENTRY_BYTES - _METADATA_STRUCT.size


@dataclass(frozen=True)
class RequestMetadata:
    """One entry of the request metadata ring (Table 3).

    ``req_addr`` is where the engine *fetches* data from: a memory-pool
    address for reads, a compute-node address (in the request data ring)
    for writes.  ``resp_addr`` is where the result lands: a compute-node
    address (in the response data ring) for reads, a memory-pool address
    for writes.
    """

    rw_type: RwType
    req_addr: int
    resp_addr: int
    length: int
    region_id: int

    def __post_init__(self) -> None:
        if not 0 <= self.region_id <= 0xFFFF:
            raise ValueError(f"region_id out of 16-bit range: {self.region_id}")
        if not 0 <= self.length < (1 << 32):
            raise ValueError(f"length out of 32-bit range: {self.length}")
        if self.req_addr < 0 or self.resp_addr < 0:
            raise ValueError("addresses must be non-negative")

    def pack(self) -> bytes:
        return (
            _METADATA_STRUCT.pack(
                int(self.rw_type),
                self.region_id,
                self.length,
                self.req_addr,
                self.resp_addr,
            )
            + b"\x00" * _METADATA_PAD
        )

    @classmethod
    def unpack(cls, data: bytes) -> "RequestMetadata":
        if len(data) < _METADATA_STRUCT.size:
            raise ValueError(f"metadata entry too short: {len(data)} bytes")
        rw, region_id, length, req_addr, resp_addr = _METADATA_STRUCT.unpack_from(data)
        return cls(
            rw_type=RwType(rw),
            req_addr=req_addr,
            resp_addr=resp_addr,
            length=length,
            region_id=region_id,
        )


# ----------------------------------------------------------------------
# Bookkeeping blocks (Section 4.2 "Bookkeeping" + Figure 4 colors)
# ----------------------------------------------------------------------

_GREEN_STRUCT = struct.Struct("<QQ")
_RED_STRUCT = struct.Struct("<QQQQQ")


@dataclass
class GreenBlock:
    """Client-written pointers, read by the engine in one RDMA read.

    Tails are monotonically increasing (entries / bytes produced since
    start); the ring index is ``tail % capacity``.  Monotonic counters
    avoid the classic full-vs-empty ambiguity of wrapped indices.
    """

    request_meta_tail: int = 0
    request_data_tail: int = 0

    SIZE = _GREEN_STRUCT.size

    def pack(self) -> bytes:
        return _GREEN_STRUCT.pack(self.request_meta_tail, self.request_data_tail)

    @classmethod
    def unpack(cls, data: bytes) -> "GreenBlock":
        meta_tail, data_tail = _GREEN_STRUCT.unpack_from(data)
        return cls(request_meta_tail=meta_tail, request_data_tail=data_tail)


@dataclass
class RedBlock:
    """Engine-written pointers/counters, read locally by the client.

    One RDMA write updates all five fields (Phase IV, R3): the head
    pointers free ring space for new requests, the response tail
    publishes freshly written response bytes, and the two progress
    counters carry the per-type sequence number of the last completed
    operation — the entire completion-tracking story of Section 4.2.
    """

    request_meta_head: int = 0
    request_data_head: int = 0
    response_data_tail: int = 0
    write_progress: int = 0
    read_progress: int = 0

    SIZE = _RED_STRUCT.size

    def pack(self) -> bytes:
        return _RED_STRUCT.pack(
            self.request_meta_head,
            self.request_data_head,
            self.response_data_tail,
            self.write_progress,
            self.read_progress,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "RedBlock":
        fields = _RED_STRUCT.unpack_from(data)
        return cls(*fields)


@dataclass(frozen=True)
class BookkeepingLayout:
    """Addresses of the green and red blocks inside one region.

    Both blocks live in a single registered region so each side can be
    read or written with exactly one RDMA operation; they sit on
    separate cache lines so client stores and engine DMA writes do not
    false-share.
    """

    base_addr: int

    GREEN_OFFSET = 0
    RED_OFFSET = 64
    TOTAL_BYTES = 128

    @property
    def green_addr(self) -> int:
        return self.base_addr + self.GREEN_OFFSET

    @property
    def red_addr(self) -> int:
        return self.base_addr + self.RED_OFFSET


# ----------------------------------------------------------------------
# Request-id encoding (Section 4.3)
# ----------------------------------------------------------------------

_REQ_SEQ_BITS = 32
_REQ_REGION_SHIFT = _REQ_SEQ_BITS
_REQ_TYPE_SHIFT = _REQ_REGION_SHIFT + 16


def encode_request_id(rw_type: RwType, region_id: int, sequence: int) -> int:
    """Pack (type, region, per-type sequence) into one integer."""
    if not 0 <= region_id <= 0xFFFF:
        raise ValueError(f"region_id out of range: {region_id}")
    if not 0 < sequence < (1 << _REQ_SEQ_BITS):
        raise ValueError(f"sequence out of range: {sequence}")
    return (int(rw_type) << _REQ_TYPE_SHIFT) | (region_id << _REQ_REGION_SHIFT) | sequence


def decode_request_id(request_id: int) -> tuple[RwType, int, int]:
    """Inverse of :func:`encode_request_id`."""
    rw_type = RwType((request_id >> _REQ_TYPE_SHIFT) & 0xFFFF)
    region_id = (request_id >> _REQ_REGION_SHIFT) & 0xFFFF
    sequence = request_id & ((1 << _REQ_SEQ_BITS) - 1)
    return rw_type, region_id, sequence
