"""Cowbird-Spot: the harvested-CPU offload engine (Section 6).

Where Cowbird-P4 recycles raw packets in a switch pipeline, Cowbird-Spot
is an event-driven agent on a general-purpose processor — a spot VM, a
SmartNIC ARM core, or the management CPU of a harvested-memory VM.  The
protocol is the same four phases; the differences the paper calls out
are implemented here:

* the agent can *parse* request metadata and run a real **overlap
  check**, pausing reads only when they truly conflict with an
  in-flight write (Cowbird-P4 must pause all reads);
* the agent can **stage and batch**: it accumulates ``BATCH_SIZE`` read
  results in local memory and ships them to the compute node with a
  single RDMA write (Phase III step 2a), cutting message counts and
  compute-node RNIC load — disable batching (``batch_size=1``) to get
  the paper's "Cowbird (batching disabled)" line;
* the agent's resource use is capped at **one CPU core** (Section 8.4):
  the agent host is built with a single-core CPU and all agent work is
  charged to threads on it.

The agent's fast path uses doorbell batching (WQE lists) and batched
CQE reaping, so per-request CPU cost is a few nanoseconds while the
~300 ns verb-call overhead amortizes across each batch.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.cowbird.api import CowbirdInstance, InstanceDescriptor
from repro.cowbird.buffers import MetadataRing, skip_pad
from repro.cowbird.wire import GreenBlock, RedBlock, RequestMetadata, RwType
from repro.rdma.qp import CompletionQueue, WorkRequest, WorkType
from repro.sim.network import PRIORITY_HIGH
from repro.sim.engine import Future

__all__ = ["CowbirdSpotEngine", "SpotEngineConfig"]

#: CPU-accounting tag for agent work (it is all communication offload).
TAG_ENGINE = "engine"


@dataclass
class SpotEngineConfig:
    """Agent tunables."""

    #: Read responses staged before one RDMA write back (BATCH_SIZE).
    batch_size: int = 100
    #: Byte cap on a staged batch: large records flush earlier so
    #: batching never multiplies their latency.
    batch_max_bytes: int = 32 << 10
    #: Idle polling interval between probe rounds.
    poll_interval_ns: float = 2_000.0
    #: Agent-side staging memory for green blocks, metadata, and batches.
    staging_bytes: int = 16 << 20
    #: Maximum WQEs chained into one doorbell-batched post.
    max_post_batch: int = 128


@dataclass
class SpotEngineStats:
    probe_rounds: int = 0
    metadata_fetches: int = 0
    requests_parsed: int = 0
    reads_executed: int = 0
    writes_executed: int = 0
    batches_flushed: int = 0
    batch_entries_total: int = 0
    rdma_calls: int = 0
    overlap_stalls: int = 0

    def mean_batch_size(self) -> float:
        if self.batches_flushed == 0:
            return 0.0
        return self.batch_entries_total / self.batches_flushed


@dataclass
class _SpotOp:
    """One application request moving through the agent."""

    instance: "_SpotInstance"
    sequence: int
    metadata: RequestMetadata
    ring_index: int
    staging_addr: int = 0
    completed: bool = False
    #: Sim time the agent parsed this request (span begin for telemetry).
    parsed_at: float = 0.0


@dataclass
class _SpotInstance:
    descriptor: InstanceDescriptor
    #: Control QP (probes + metadata reads, high priority class).
    qp_compute: object
    #: Data QP (payload fetches, batch flushes, red updates).  Control
    #: and data ride separate QPs because they use different network
    #: priorities — within one QP, priority reordering would corrupt
    #: the PSN sequence and trigger NAK storms.
    qp_compute_data: object
    qp_pools: dict[str, object]
    green_staging: int
    meta_staging: int
    seen_meta_tail: int = 0
    parsed_meta: int = 0
    #: Engine-internal placement cursor for the response ring (mirrors
    #: the client's reservation arithmetic; computes batch
    #: destinations).  The *published* cursors live in ``red`` and
    #: advance only with the completed FIFO prefix, so the red block is
    #: always a consistent recovery point.
    resp_data_cursor: int = 0
    read_count: int = 0
    write_count: int = 0
    red: RedBlock = field(default_factory=RedBlock)
    in_order: deque = field(default_factory=deque)
    #: Writes whose pool write has not completed (for the overlap check).
    active_writes: list = field(default_factory=list)
    #: Reads waiting behind an overlapping write.
    stalled_reads: deque = field(default_factory=deque)
    #: Batch under accumulation: list of completed read ops.
    batch: list = field(default_factory=list)
    batch_start_cursor: int = 0
    #: Read fetches posted to the pool but not yet completed.
    outstanding_read_fetches: int = 0
    probe_inflight: bool = False
    meta_fetch_inflight: bool = False
    #: Sim time the current batch opened (span begin for telemetry).
    batch_opened_at: float = 0.0


class CowbirdSpotEngine:
    """The event-driven agent process on the spot VM."""

    def __init__(self, agent_host, config: Optional[SpotEngineConfig] = None) -> None:
        self.host = agent_host
        self.sim = agent_host.sim
        self.cost = agent_host.verbs.cost
        self.config = config or SpotEngineConfig()
        self.stats = SpotEngineStats()
        tel = self.sim.telemetry
        self._tel = tel
        self._tel_probe_rounds = tel.counter("spot.probe_rounds")
        self._tel_meta_fetches = tel.counter("spot.metadata_fetches")
        self._tel_parsed = tel.counter("spot.requests_parsed")
        self._tel_reads = tel.counter("spot.reads_executed")
        self._tel_writes = tel.counter("spot.writes_executed")
        self._tel_batch_flushes = tel.counter("spot.batch_flushes")
        self._tel_batch_entries = tel.counter("spot.batch_entries")
        self._tel_rdma_calls = tel.counter("spot.rdma_calls")
        self._tel_overlap_stalls = tel.counter("spot.overlap_stalls")
        self._tel_request_ns = tel.histogram("spot.request_latency_ns")
        self._tel_batch_bytes = tel.histogram("spot.batch_bytes")
        self.cq = CompletionQueue(capacity=1 << 16)
        self.staging = agent_host.registry.register(
            self.config.staging_bytes, name="spot-staging"
        )
        self._staging_cursor = 0
        self._free_ranges: list[tuple[int, int]] = []
        self._instances: list[_SpotInstance] = []
        self._wr_ops: dict[int, tuple[str, object]] = {}
        self._running = False
        self._work_signal: Optional[Future] = None
        self._transient_base = 0
        self._threads: list = []

    # ------------------------------------------------------------------
    # Phase I: setup
    # ------------------------------------------------------------------
    def register_instance(
        self, instance: CowbirdInstance, pool_hosts: dict,
        recover: bool = False,
    ) -> None:
        """Install one client instance (Phase I).

        With ``recover=True`` the engine adopts a *running* instance
        previously served by another (reclaimed) agent: all cursors are
        reconstructed from the client's red block.  This works because
        the protocol publishes exactly enough state to resume —

        * ``request_meta_head`` = first entry not yet completed (the
          head only advances over the completed FIFO prefix),
        * ``read_progress``/``write_progress`` = per-type sequence
          counters at that head,
        * ``request_data_head``/``response_data_tail`` = the data-ring
          cursors at that head —

        and every Cowbird operation is idempotent to re-execute (reads
        are replayable; write payloads stay in the request data ring
        until their head advances).  Spot VMs can be reclaimed at any
        time (Section 2.2); this is the recovery story that makes a
        spot-hosted engine safe.
        """
        descriptor = instance.descriptor()
        compute_host = instance.host
        qp_agent_c = self.host.nic.create_qp(self.cq)
        qp_compute = compute_host.nic.create_qp()
        qp_agent_c.connect(compute_host.name, qp_compute.qpn)
        qp_compute.connect(self.host.name, qp_agent_c.qpn)
        qp_agent_d = self.host.nic.create_qp(self.cq)
        qp_compute_d = compute_host.nic.create_qp()
        qp_agent_d.connect(compute_host.name, qp_compute_d.qpn)
        qp_compute_d.connect(self.host.name, qp_agent_d.qpn)
        qp_pools = {}
        for pool_node in sorted({h.node for h in descriptor.remote_regions.values()}):
            pool_host = pool_hosts[pool_node]
            qp_agent_p = self.host.nic.create_qp(self.cq)
            qp_pool = pool_host.nic.create_qp()
            qp_agent_p.connect(pool_node, qp_pool.qpn)
            qp_pool.connect(self.host.name, qp_agent_p.qpn)
            qp_pools[pool_node] = qp_agent_p
        state = _SpotInstance(
            descriptor=descriptor,
            qp_compute=qp_agent_c,
            qp_compute_data=qp_agent_d,
            qp_pools=qp_pools,
            green_staging=self._alloc_staging(GreenBlock.SIZE),
            meta_staging=self._alloc_staging(
                descriptor.metadata_capacity * MetadataRing.ENTRY_BYTES
            ),
        )
        if recover:
            # Control-plane read of the client's red block (one RDMA
            # read in a real deployment) rebuilds the engine cursors.
            raw = instance.region.read(
                descriptor.bookkeeping_addr + 64, RedBlock.SIZE
            )
            red = RedBlock.unpack(raw)
            state.red = red
            state.parsed_meta = red.request_meta_head
            state.seen_meta_tail = red.request_meta_head
            state.read_count = red.read_progress
            state.write_count = red.write_progress
            state.resp_data_cursor = red.response_data_tail
        self._instances.append(state)

    def _alloc_staging(self, length: int) -> int:
        aligned = (length + 63) & ~63
        if self._staging_cursor + aligned > self.staging.length:
            raise MemoryError("agent staging memory exhausted")
        addr = self.staging.base_addr + self._staging_cursor
        self._staging_cursor += aligned
        return addr

    def _batch_staging(self, length: int) -> int:
        """Allocate transient staging for one payload (first fit).

        Slots are freed only when the RDMA operation that reads them is
        *acknowledged* — the NIC re-reads the buffer on Go-Back-N
        retransmission, so recycling any earlier would corrupt recovered
        transfers under packet loss.
        """
        aligned = (length + 63) & ~63
        for index, (offset, size) in enumerate(self._free_ranges):
            if size >= aligned:
                if size == aligned:
                    del self._free_ranges[index]
                else:
                    self._free_ranges[index] = (offset + aligned, size - aligned)
                return self.staging.base_addr + offset
        raise MemoryError(
            "agent staging exhausted: too many unacknowledged transfers"
        )

    def _free_staging(self, addr: int, length: int) -> None:
        """Return a transient slot; coalesce with free neighbours."""
        aligned = (length + 63) & ~63
        offset = addr - self.staging.base_addr
        self._free_ranges.append((offset, aligned))
        self._free_ranges.sort()
        merged = []
        for start, size in self._free_ranges:
            if merged and merged[-1][0] + merged[-1][1] == start:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((start, size))
        self._free_ranges = merged

    def start(self) -> None:
        """Spawn the agent's prober and completer loops (one core)."""
        if self._running:
            raise RuntimeError("engine already started")
        if not self._instances:
            raise RuntimeError("no instances registered")
        self._running = True
        self._transient_base = self._staging_cursor
        self._free_ranges = [
            (self._transient_base, self.staging.length - self._transient_base)
        ]
        prober = self.host.cpu.thread("spot-prober")
        completer = self.host.cpu.thread("spot-completer")
        self._threads = [prober, completer]
        self.sim.spawn(self._probe_loop(prober), name="spot-probe-loop")
        self.sim.spawn(self._completion_loop(completer), name="spot-completion-loop")

    def stop(self) -> None:
        self._running = False
        if self._work_signal is not None and not self._work_signal.done:
            self._work_signal.resolve(None)

    def stats_snapshot(self) -> dict:
        """Flat engine counters (the OffloadEngine protocol view)."""
        return dataclasses.asdict(self.stats)

    def agent_cpu_ns(self) -> float:
        """Total agent CPU time consumed (Section 8.4 resource usage)."""
        return sum(t.stats.cpu_ns.get(TAG_ENGINE, 0.0) for t in self._threads)

    # ------------------------------------------------------------------
    # Phase II: probing — pipelined across instances
    # ------------------------------------------------------------------
    def _probe_loop(self, thread):
        """Phase II: fire probes on a timer; completions drive the rest.

        The prober never waits for round trips — it batch-posts a green
        read per instance (skipping instances with a probe or metadata
        fetch already outstanding) and sleeps one probe interval.  The
        completion loop parses probe responses and escalates.
        """
        while self._running:
            self.stats.probe_rounds += 1
            self._tel_probe_rounds.inc()
            posts = []
            for state in self._instances:
                if state.probe_inflight:
                    continue
                state.probe_inflight = True
                # Control traffic rides a higher class so discovery
                # latency is independent of bulk data bursts.
                wr = WorkRequest(
                    work_type=WorkType.READ,
                    local_addr=state.green_staging,
                    remote_addr=state.descriptor.bookkeeping_addr,
                    rkey=state.descriptor.rkey,
                    length=GreenBlock.SIZE,
                    priority=PRIORITY_HIGH,
                )
                self._wr_ops[wr.wr_id] = ("probe", state)
                posts.append((state.qp_compute, wr))
            yield from self._post_batched(thread, posts)
            yield from thread.sleep(self.config.poll_interval_ns)

    # ------------------------------------------------------------------
    # Phase III: fetch metadata, parse, execute
    # ------------------------------------------------------------------
    def _build_meta_fetch(self, state: _SpotInstance):
        """Build the WR that fetches one instance's new metadata run."""
        descriptor = state.descriptor
        capacity = descriptor.metadata_capacity
        start = state.parsed_meta
        start_slot = start % capacity
        contiguous = min(state.seen_meta_tail - start, capacity - start_slot)
        end = start + contiguous
        length = contiguous * MetadataRing.ENTRY_BYTES
        self.stats.metadata_fetches += 1
        self._tel_meta_fetches.inc()
        wr = WorkRequest(
            work_type=WorkType.READ,
            local_addr=state.meta_staging,
            remote_addr=descriptor.metadata_base + start_slot * MetadataRing.ENTRY_BYTES,
            rkey=descriptor.rkey,
            length=length,
            priority=PRIORITY_HIGH,
        )
        return (state.qp_compute, wr), (start, end), None

    def _parse_and_dispatch(self, thread, state: _SpotInstance, span):
        start, end = span
        # Parse entries (the agent, unlike the switch, can do this);
        # per-entry parse cost is charged in one lump per fetch.
        yield from thread.compute(
            self.cost.engine_parse_request * (end - start), tag=TAG_ENGINE
        )
        ops: list[_SpotOp] = []
        for i, index in enumerate(range(start, end)):
            raw = self.staging.read(
                state.meta_staging + i * MetadataRing.ENTRY_BYTES,
                MetadataRing.ENTRY_BYTES,
            )
            metadata = RequestMetadata.unpack(raw)
            if metadata.rw_type is RwType.INVALID:
                end = index
                break
            self.stats.requests_parsed += 1
            self._tel_parsed.inc()
            if metadata.rw_type is RwType.READ:
                state.read_count += 1
                sequence = state.read_count
            else:
                state.write_count += 1
                sequence = state.write_count
            op = _SpotOp(
                instance=state, sequence=sequence, metadata=metadata,
                ring_index=index, parsed_at=self.sim.now,
            )
            ops.append(op)
            state.in_order.append(op)
        state.parsed_meta = end
        return self._dispatch_posts(state, ops)

    def _overlaps_active_write(self, state: _SpotInstance, metadata: RequestMetadata) -> bool:
        """The per-range consistency check Cowbird-P4 cannot do."""
        lo, hi = metadata.req_addr, metadata.req_addr + metadata.length
        for write_op in state.active_writes:
            w = write_op.metadata
            if w.region_id != metadata.region_id:
                continue
            w_lo, w_hi = w.resp_addr, w.resp_addr + w.length
            if lo < w_hi and w_lo < hi:
                return True
        return False

    def _dispatch_posts(self, state: _SpotInstance, ops: list[_SpotOp]):
        """Build fetch WRs for new ops (posted by the caller in bulk)."""
        to_post: list[tuple[object, WorkRequest]] = []
        for op in ops:
            metadata = op.metadata
            if metadata.rw_type is RwType.READ:
                if state.stalled_reads or self._overlaps_active_write(state, metadata):
                    # Reads execute in order: once one stalls, later
                    # reads queue behind it (Section 6).
                    self.stats.overlap_stalls += 1
                    self._tel_overlap_stalls.inc()
                    state.stalled_reads.append(op)
                    continue
                to_post.append(self._build_read_fetch(state, op))
            else:
                state.active_writes.append(op)
                to_post.append(self._build_write_fetch(state, op))
        return to_post

    def _build_read_fetch(self, state: _SpotInstance, op: _SpotOp):
        state.outstanding_read_fetches += 1
        op.staging_addr = self._batch_staging(op.metadata.length)
        handle = state.descriptor.remote_regions[op.metadata.region_id]
        wr = WorkRequest(
            work_type=WorkType.READ,
            local_addr=op.staging_addr,
            remote_addr=op.metadata.req_addr,
            rkey=handle.rkey,
            length=op.metadata.length,
        )
        self._wr_ops[wr.wr_id] = ("read_fetch", op)
        return (state.qp_pools[handle.node], wr)

    def _build_write_fetch(self, state: _SpotInstance, op: _SpotOp):
        op.staging_addr = self._batch_staging(op.metadata.length)
        wr = WorkRequest(
            work_type=WorkType.READ,
            local_addr=op.staging_addr,
            remote_addr=op.metadata.req_addr,
            rkey=state.descriptor.rkey,
            length=op.metadata.length,
        )
        self._wr_ops[wr.wr_id] = ("write_fetch", op)
        return (state.qp_compute_data, wr)

    def _post_batched(self, thread, posts):
        """Doorbell batching: one call overhead, a few ns per WQE."""
        if not posts:
            return
        for chunk_start in range(0, len(posts), self.config.max_post_batch):
            chunk = posts[chunk_start : chunk_start + self.config.max_post_batch]
            yield from thread.compute(
                self.cost.engine_rdma_call
                + self.cost.engine_wqe_batched * len(chunk),
                tag=TAG_ENGINE,
            )
            self.stats.rdma_calls += 1
            self._tel_rdma_calls.inc()
            for qp, wr in chunk:
                self.host.nic.post(qp, wr)

    # ------------------------------------------------------------------
    # Completions: stage, batch, write back, bookkeeping
    # ------------------------------------------------------------------
    def _completion_loop(self, thread):
        while self._running:
            completions = self.cq.poll(max_entries=256)
            # Handle discovery (probe/meta) completions first: they feed
            # the pipeline, and delaying them stretches every instance's
            # probe cadence.
            completions.sort(
                key=lambda c: 0 if self._wr_ops.get(c.wr_id, ("",))[0]
                in ("probe", "meta") else 1
            )
            if not completions:
                signal = self.sim.future()
                self.cq.notify_next_push(signal)
                yield from thread.wait(signal)
                continue
            follow_up: list[tuple[object, WorkRequest]] = []
            yield from thread.compute(
                self.cost.engine_cqe_batched * len(completions), tag=TAG_ENGINE
            )
            for completion in completions:
                kind, payload = self._wr_ops.pop(completion.wr_id, (None, None))
                if kind == "probe":
                    state = payload
                    state.probe_inflight = False
                    raw = self.staging.read(state.green_staging, GreenBlock.SIZE)
                    green = GreenBlock.unpack(raw)
                    state.seen_meta_tail = max(
                        state.seen_meta_tail, green.request_meta_tail
                    )
                    if (state.seen_meta_tail > state.parsed_meta
                            and not state.meta_fetch_inflight):
                        state.meta_fetch_inflight = True
                        post, span, _done = self._build_meta_fetch(state)
                        self._wr_ops[post[1].wr_id] = ("meta", (state, span))
                        follow_up.append(post)
                elif kind == "meta":
                    state, span = payload
                    state.meta_fetch_inflight = False
                    new_posts = yield from self._parse_and_dispatch(
                        thread, state, span
                    )
                    follow_up.extend(new_posts)
                    # Chain the next fetch immediately if the tail has
                    # already moved past what we just parsed — discovery
                    # bandwidth must not be probe-gated under load.
                    if state.seen_meta_tail > state.parsed_meta:
                        state.meta_fetch_inflight = True
                        post, span2, _d = self._build_meta_fetch(state)
                        self._wr_ops[post[1].wr_id] = ("meta", (state, span2))
                        follow_up.append(post)
                elif kind == "read_fetch":
                    posts = yield from self._on_read_fetched(thread, payload)
                    follow_up.extend(posts)
                elif kind == "write_fetch":
                    follow_up.append(self._build_pool_write(payload))
                elif kind == "pool_write":
                    op = payload
                    self._free_staging(op.staging_addr, op.metadata.length)
                    follow_up.extend(self._on_write_done(op))
                elif kind == "batch_flush":
                    # Batch landed: its gather buffer and every member's
                    # staged payload may now be recycled.
                    _state, gather_addr, total, members = payload
                    self._free_staging(gather_addr, total)
                    for member_addr, member_len in members:
                        self._free_staging(member_addr, member_len)
                elif kind == "red_update":
                    state_and_slot = payload
                    self._free_staging(state_and_slot[1], RedBlock.SIZE)
            # Idle flush: no more pool responses coming for an instance
            # means a partial batch must not wait for more traffic.
            for state in self._instances:
                if state.batch and state.outstanding_read_fetches == 0:
                    follow_up.extend((yield from self._flush_batch(thread, state)))
            yield from self._post_batched(thread, follow_up)

    def _build_pool_write(self, op: _SpotOp):
        state = op.instance
        handle = state.descriptor.remote_regions[op.metadata.region_id]
        wr = WorkRequest(
            work_type=WorkType.WRITE,
            local_addr=op.staging_addr,
            remote_addr=op.metadata.resp_addr,
            rkey=handle.rkey,
            length=op.metadata.length,
        )
        self._wr_ops[wr.wr_id] = ("pool_write", op)
        return (state.qp_pools[handle.node], wr)

    def _on_read_fetched(self, thread, op: _SpotOp):
        """Stage a read result; flush the batch when full (step 2a)."""
        state = op.instance
        op.completed = True
        state.outstanding_read_fetches -= 1
        self.stats.reads_executed += 1
        self._tel_reads.inc()
        self._tel_request_ns.observe(self.sim.now - op.parsed_at)
        if self._tel.enabled:
            self._tel.complete(
                "spot.read", op.parsed_at, self.sim.now,
                process=self.host.name, track="agent",
                bytes=op.metadata.length, sequence=op.sequence,
            )
        # Mirror the client's response-ring reservation arithmetic.
        pad = skip_pad(
            state.resp_data_cursor, op.metadata.length,
            state.descriptor.response_data_capacity,
        )
        posts = []
        if pad > 0 and state.batch:
            # The ring wraps here: the accumulated batch is contiguous
            # only up to the boundary, so flush it before continuing.
            posts.extend((yield from self._flush_batch(thread, state)))
        state.resp_data_cursor += pad
        if not state.batch:
            state.batch_start_cursor = state.resp_data_cursor
            state.batch_opened_at = self.sim.now
        state.batch.append(op)
        state.resp_data_cursor += op.metadata.length
        batch_bytes = state.resp_data_cursor - state.batch_start_cursor
        if (len(state.batch) >= self.config.batch_size
                or batch_bytes >= self.config.batch_max_bytes):
            posts.extend((yield from self._flush_batch(thread, state)))
        return posts

    def flushable(self, state: _SpotInstance) -> bool:
        return bool(state.batch)

    def _flush_batch(self, thread, state: _SpotInstance):
        """One RDMA write carries the whole batch to the compute node."""
        batch, state.batch = state.batch, []
        if not batch:
            return
        total = state.resp_data_cursor - state.batch_start_cursor
        # Gather staged payloads into one contiguous send buffer.  The
        # batch never spans a ring wrap (flushed at the boundary), so the
        # payloads simply concatenate.
        gather_addr = self._batch_staging(total)
        offset = 0
        copy_bytes = 0
        for op in batch:
            data = self.staging.read(op.staging_addr, op.metadata.length)
            self.staging.write(gather_addr + offset, data)
            offset += op.metadata.length
            copy_bytes += op.metadata.length
        yield from thread.compute(
            self.cost.engine_batch_copy_per_byte * copy_bytes, tag=TAG_ENGINE
        )
        dest_addr = (
            state.descriptor.response_data_base
            + state.batch_start_cursor % state.descriptor.response_data_capacity
        )
        wr = WorkRequest(
            work_type=WorkType.WRITE,
            local_addr=gather_addr,
            remote_addr=dest_addr,
            rkey=state.descriptor.rkey,
            length=total,
        )
        self._wr_ops[wr.wr_id] = (
            "batch_flush",
            (state, gather_addr, total,
             [(op.staging_addr, op.metadata.length) for op in batch]),
        )
        self.stats.batches_flushed += 1
        self.stats.batch_entries_total += len(batch)
        self._tel_batch_flushes.inc()
        self._tel_batch_entries.inc(len(batch))
        self._tel_batch_bytes.observe(total)
        if self._tel.enabled:
            self._tel.complete(
                "spot.batch", state.batch_opened_at, self.sim.now,
                process=self.host.name, track="agent",
                entries=len(batch), bytes=total,
            )
        # Publication happens prefix-wise: progress counters and the
        # response tail only cover the completed FIFO prefix, keeping
        # the red block a consistent recovery point.
        self._advance_meta_head(state)
        return [(state.qp_compute_data, wr), self._build_red_update(state)]

    def _on_write_done(self, op: _SpotOp):
        """Phase IV for writes: progress counter + unstall reads."""
        state = op.instance
        op.completed = True
        self.stats.writes_executed += 1
        self._tel_writes.inc()
        self._tel_request_ns.observe(self.sim.now - op.parsed_at)
        if self._tel.enabled:
            self._tel.complete(
                "spot.write", op.parsed_at, self.sim.now,
                process=self.host.name, track="agent",
                bytes=op.metadata.length, sequence=op.sequence,
            )
        state.active_writes.remove(op)
        self._advance_meta_head(state)
        posts = [self._build_red_update(state)]
        # Unstall reads whose conflict cleared, preserving read order.
        while state.stalled_reads:
            head = state.stalled_reads[0]
            if self._overlaps_active_write(state, head.metadata):
                break
            state.stalled_reads.popleft()
            posts.append(self._build_read_fetch(state, head))
        return posts

    def _advance_meta_head(self, state: _SpotInstance) -> None:
        """Publish the completed FIFO prefix into the red block.

        Head, per-type progress, and both data-ring cursors advance
        together, so the red block is self-consistent at every instant —
        which is exactly what crash recovery of the offload engine
        (spot reclamation) relies on.
        """
        capacity_req = state.descriptor.request_data_capacity
        capacity_resp = state.descriptor.response_data_capacity
        while state.in_order and state.in_order[0].completed:
            done = state.in_order.popleft()
            state.red.request_meta_head = done.ring_index + 1
            metadata = done.metadata
            if metadata.rw_type is RwType.READ:
                state.red.read_progress = done.sequence
                pad = skip_pad(
                    state.red.response_data_tail, metadata.length, capacity_resp
                )
                state.red.response_data_tail += pad + metadata.length
            else:
                state.red.write_progress = done.sequence
                pad = skip_pad(
                    state.red.request_data_head, metadata.length, capacity_req
                )
                state.red.request_data_head += pad + metadata.length

    def _build_red_update(self, state: _SpotInstance):
        payload = state.red.pack()
        addr = self._batch_staging(len(payload))
        self.staging.write(addr, payload)
        wr = WorkRequest(
            work_type=WorkType.WRITE,
            local_addr=addr,
            remote_addr=state.descriptor.bookkeeping_addr + 64,
            rkey=state.descriptor.rkey,
            length=len(payload),
        )
        self._wr_ops[wr.wr_id] = ("red_update", (state, addr))
        return (state.qp_compute_data, wr)
