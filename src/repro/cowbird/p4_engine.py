"""Cowbird-P4: the programmable-switch offload engine (Section 5).

The engine lives entirely in the switch data plane.  It discovers new
requests by generating low-priority RDMA read *probes* of the compute
node's green bookkeeping block (Phase II), fetches and parses request
metadata, then *recycles* packets to execute transfers (Phase III):

* a probe response is recycled into a metadata read request,
* a memory-pool read response is recycled into an RDMA write of the
  payload to the compute node (Response First/Middle/Last become Write
  First/Middle/Last — the payload is never parsed, matching PHV
  limits),
* the final ACK is recycled into the Phase IV bookkeeping write.

Engine-to-host traffic uses three requester channels per instance —
probe (low priority), compute data, and one per memory-pool peer — so
strict-priority queueing can never reorder packets within a PSN space.

Consistency (Section 5.3): the switch cannot do range comparisons, so
whenever any write is fetching its payload (Phase III step 1b) the
engine pauses *all* newly probed reads.  Recovery is Go-Back-N: on a
data-plane timeout the channel's PSN is rewound to the oldest
incomplete operation and everything after it is re-executed.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cowbird.api import CowbirdInstance, InstanceDescriptor
from repro.cowbird.wire import (
    GreenBlock,
    RedBlock,
    RequestMetadata,
    RwType,
)
from repro.cowbird.buffers import MetadataRing, skip_pad
from repro.rdma.packets import (
    Bth,
    Opcode,
    PacketPool,
    Reth,
    RocePacket,
    psn_add,
    psn_distance,
)
from repro.sim.engine import Simulator
from repro.sim.network import PRIORITY_LOW, PRIORITY_NORMAL, Switch

__all__ = ["CowbirdP4Engine", "P4EngineConfig"]


@dataclass
class P4EngineConfig:
    """Tunables of the switch data plane program."""

    #: Probe generation interval (1 probe / 2 us for FASTER, Section 5.2).
    probe_interval_ns: float = 2_000.0
    #: Data-plane timeout before Go-Back-N recovery.
    timeout_ns: float = 500_000.0
    #: Give up on an operation after this many replays.
    max_retries: int = 16
    #: Probes ride the lowest priority so they only use idle cycles.
    probe_priority: int = PRIORITY_LOW
    #: Priority of execute/complete traffic (Figure 14 raises this).
    data_priority: int = PRIORITY_NORMAL
    mtu_bytes: int = 1024
    #: Adaptive probing: back off while idle, snap back on activity
    #: ("the switch can also start at a low baseline rate and ramp up").
    adaptive_probing: bool = False
    adaptive_max_interval_ns: float = 64_000.0
    #: Multi-instance probe scheduling (Section 5.4 leaves richer
    #: policies to future work; we implement one): "round-robin" cycles
    #: instances uniformly; "weighted" visits instances with recent
    #: activity every cycle and idle ones only every ``idle_stride``-th
    #: visit, concentrating probe bandwidth on active applications.
    probe_policy: str = "round-robin"
    idle_stride: int = 8


@dataclass
class P4EngineStats:
    probes_sent: int = 0
    probe_responses: int = 0
    metadata_fetches: int = 0
    requests_parsed: int = 0
    reads_executed: int = 0
    writes_executed: int = 0
    recycled_packets: int = 0
    red_updates: int = 0
    go_back_n_events: int = 0
    stale_packets: int = 0
    reads_paused: int = 0


@dataclass
class _EngineOp:
    """One switch-initiated RDMA operation awaiting its response/ACK."""

    kind: str  # probe | meta | read_fetch | write_fetch | resp_write | pool_write | red_update
    channel: "_Channel"
    first_psn: int
    num_psns: int
    expect_bytes: int = 0
    received_bytes: int = 0
    issued_at: float = 0.0
    retries: int = 0
    parent: Optional["_AppOp"] = None
    instance: Optional["_Instance"] = None
    buffer: bytearray = field(default_factory=bytearray)
    #: Parameters needed to re-emit the request on replay.
    replay: Optional[Callable[[], None]] = None
    done: bool = False

    @property
    def last_psn(self) -> int:
        return psn_add(self.first_psn, self.num_psns - 1)

    def covers(self, psn: int) -> bool:
        return psn_distance(self.first_psn, psn) < self.num_psns


@dataclass
class _AppOp:
    """One application-level Cowbird request being executed."""

    instance: "_Instance"
    sequence: int
    metadata: RequestMetadata
    ring_index: int
    completed: bool = False
    fetch_op: Optional[_EngineOp] = None
    write_train: Optional[_EngineOp] = None
    #: Sim time the switch parsed this request (span begin for telemetry).
    parsed_at: float = 0.0


class _Channel:
    """The engine's requester state toward one host QP.

    The switch holds this in stateful registers: the destination QPN,
    the next PSN, and the set of in-flight operations keyed by PSN.
    """

    def __init__(
        self,
        engine: "CowbirdP4Engine",
        peer_node: str,
        peer_qpn: int,
        virtual_qpn: int,
        rkey: int,
        priority: int,
    ) -> None:
        self.engine = engine
        self.peer_node = peer_node
        self.peer_qpn = peer_qpn
        self.virtual_qpn = virtual_qpn
        self.rkey = rkey
        self.priority = priority
        self.send_psn = 0
        self.inflight: deque[_EngineOp] = deque()

    # ------------------------------------------------------------------
    def emit_read(
        self,
        addr: int,
        length: int,
        kind: str,
        parent: Optional[_AppOp] = None,
        instance: Optional["_Instance"] = None,
        rkey: Optional[int] = None,
    ) -> _EngineOp:
        """Issue an RDMA READ request; responses are matched by PSN."""
        mtu = self.engine.config.mtu_bytes
        num_psns = max(1, (length + mtu - 1) // mtu)
        op = _EngineOp(
            kind=kind,
            channel=self,
            first_psn=self.send_psn,
            num_psns=num_psns,
            expect_bytes=length,
            issued_at=self.engine.sim.now,
            parent=parent,
            instance=instance,
        )
        effective_rkey = rkey if rkey is not None else self.rkey
        op.replay = lambda: self._send_read_packet(op, addr, effective_rkey, length)
        self.send_psn = psn_add(self.send_psn, num_psns)
        self.inflight.append(op)
        self._send_read_packet(op, addr, effective_rkey, length)
        return op

    def _send_read_packet(self, op: _EngineOp, addr: int, rkey: int, length: int) -> None:
        packet = self.engine.pool.acquire(
            src=self.engine.node,
            dst=self.peer_node,
            bth=Bth(
                opcode=Opcode.RC_RDMA_READ_REQUEST,
                dest_qp=self.peer_qpn,
                psn=op.first_psn,
                ack_request=True,
            ),
            reth=Reth(virtual_address=addr, remote_key=rkey, dma_length=length),
            priority=self.priority,
        )
        self.engine.switch.inject(packet)

    def begin_write(
        self,
        total_length: int,
        kind: str,
        parent: Optional[_AppOp],
        instance: Optional["_Instance"],
    ) -> _EngineOp:
        """Allocate the PSN range for a write train about to stream out."""
        mtu = self.engine.config.mtu_bytes
        num_psns = max(1, (total_length + mtu - 1) // mtu)
        op = _EngineOp(
            kind=kind,
            channel=self,
            first_psn=self.send_psn,
            num_psns=num_psns,
            expect_bytes=total_length,
            issued_at=self.engine.sim.now,
            parent=parent,
            instance=instance,
        )
        self.send_psn = psn_add(self.send_psn, num_psns)
        self.inflight.append(op)
        return op

    def emit_write_segment(
        self,
        op: _EngineOp,
        segment_index: int,
        dest_addr: int,
        dest_rkey: int,
        payload: bytes,
        recycle: Optional[RocePacket] = None,
    ) -> None:
        """Stream one converted segment of a write train.

        When ``recycle`` is given (the Phase III read-response-to-write
        conversion), the incoming packet is rewritten in place — headers
        swapped, payload untouched — so the steady-state execute path
        allocates no packet objects.
        """
        n = op.num_psns
        if n == 1:
            opcode = Opcode.RC_RDMA_WRITE_ONLY
        elif segment_index == 0:
            opcode = Opcode.RC_RDMA_WRITE_FIRST
        elif segment_index == n - 1:
            opcode = Opcode.RC_RDMA_WRITE_LAST
        else:
            opcode = Opcode.RC_RDMA_WRITE_MIDDLE
        is_tail = segment_index == n - 1
        reth = (
            Reth(
                virtual_address=dest_addr,
                remote_key=dest_rkey,
                dma_length=op.expect_bytes,
            )
            if opcode.carries_reth
            else None
        )
        psn = psn_add(op.first_psn, segment_index)
        if recycle is not None:
            packet = recycle.recycle(
                src=self.engine.node,
                dst=self.peer_node,
                opcode=opcode,
                dest_qp=self.peer_qpn,
                psn=psn,
                ack_request=is_tail,
                reth=reth,
                priority=self.priority,
            )
        else:
            packet = self.engine.pool.acquire(
                src=self.engine.node,
                dst=self.peer_node,
                bth=Bth(
                    opcode=opcode,
                    dest_qp=self.peer_qpn,
                    psn=psn,
                    ack_request=is_tail,
                ),
                reth=reth,
                payload=payload,
                priority=self.priority,
            )
        self.engine.switch.inject(packet)

    # ------------------------------------------------------------------
    def match(self, psn: int) -> Optional[_EngineOp]:
        for op in self.inflight:
            if not op.done and op.covers(psn):
                return op
        return None

    def retire(self, op: _EngineOp) -> None:
        op.done = True
        if op in self.inflight:
            self.inflight.remove(op)

    def drop(self, op: _EngineOp) -> None:
        """Remove an op that will be superseded by a replayed parent."""
        if op in self.inflight:
            self.inflight.remove(op)

    def oldest_pending(self) -> Optional[_EngineOp]:
        for op in self.inflight:
            if not op.done:
                return op
        return None


class _Instance:
    """Per-instance switch register state (Section 5.4)."""

    def __init__(self, descriptor: InstanceDescriptor) -> None:
        self.descriptor = descriptor
        self.probe_channel: Optional[_Channel] = None
        self.data_channel: Optional[_Channel] = None
        self.pool_channels: dict[str, _Channel] = {}
        # The switch's view of the client's green block.
        self.seen_meta_tail = 0
        self.seen_data_tail = 0
        # Monotonic ring cursors mirrored from lengths (Section 4.2).
        self.parsed_meta = 0  # entries fetched and parsed
        self.req_data_cursor = 0
        self.resp_data_cursor = 0
        # Engine-maintained red block registers.
        self.red = RedBlock()
        # Per-type sequence counters mirroring the client's.
        self.read_count = 0
        self.write_count = 0
        # Execution pipeline.
        self.pending: deque[_AppOp] = deque()
        self.in_order: deque[_AppOp] = deque()  # ring-order, for head advance
        self.fetching_writes = 0
        self.meta_fetch_inflight = False
        self.probe_inflight = False
        self.probe_interval_scale = 1.0
        self._meta_fetch_span: tuple[int, int] = (0, 0)
        #: Weighted probing state: probes remaining before this instance
        #: is demoted to idle (hysteresis), and how many visits an idle
        #: instance has been skipped for.
        self.activity_ttl = 16
        self.idle_skips = 0


class CowbirdP4Engine:
    """The switch data plane program plus its control-plane state."""

    def __init__(
        self,
        sim: Simulator,
        switch: Switch,
        config: Optional[P4EngineConfig] = None,
        node: str = "switch",
    ) -> None:
        self.sim = sim
        self.switch = switch
        self.config = config or P4EngineConfig()
        self.node = node
        self.stats = P4EngineStats()
        #: Free-list for switch-generated packets; shells come back when
        #: the receiving NIC finishes dispatching them.
        self.pool = PacketPool(sanitizer=sim.sanitizer)
        tel = sim.telemetry
        self._tel = tel
        self._tel_probes = tel.counter("p4.probes_sent")
        self._tel_probe_rounds = tel.counter("p4.probe_rounds")
        self._tel_probe_responses = tel.counter("p4.probe_responses")
        self._tel_meta_fetches = tel.counter("p4.metadata_fetches")
        self._tel_parsed = tel.counter("p4.requests_parsed")
        self._tel_reads = tel.counter("p4.reads_executed")
        self._tel_writes = tel.counter("p4.writes_executed")
        self._tel_recycled = tel.counter("p4.recycled_packets")
        self._tel_red_updates = tel.counter("p4.red_updates")
        self._tel_gbn = tel.counter("p4.go_back_n_events")
        self._tel_reads_paused = tel.counter("p4.reads_paused")
        self._tel_request_ns = tel.histogram("p4.request_latency_ns")
        self._instances: list[_Instance] = []
        #: QPN-to-instance/channel map (Section 5.4: packets after Phase II
        #: carry no instance id, so the switch keys on the QPN).
        self._channels_by_vqpn: dict[int, _Channel] = {}
        self._instance_by_vqpn: dict[int, _Instance] = {}
        self._vqpn_counter = itertools.count(0x200)
        self._probe_cycle = 0
        self._started = False
        self._probe_token = None
        self._timeout_token = None
        previous = switch.pipeline
        if previous is not None:
            raise RuntimeError("switch already has a pipeline installed")
        switch.pipeline = self._pipeline

    # ------------------------------------------------------------------
    # Phase I: setup (control-plane RPC from the compute node)
    # ------------------------------------------------------------------
    def register_instance(self, instance: CowbirdInstance, pool_hosts: dict) -> None:
        """Install one client instance: create QPs and switch registers.

        ``pool_hosts`` maps pool node name -> Host for every memory pool
        referenced by the instance's remote regions.
        """
        descriptor = instance.descriptor()
        state = _Instance(descriptor)
        compute_host = instance.host
        # Probe channel and data channel toward the compute node.
        for attr, priority in (
            ("probe_channel", self.config.probe_priority),
            ("data_channel", self.config.data_priority),
        ):
            qp = compute_host.nic.create_qp()
            vqpn = next(self._vqpn_counter)
            qp.connect(self.node, vqpn)
            channel = _Channel(
                self, compute_host.name, qp.qpn, vqpn, descriptor.rkey, priority
            )
            setattr(state, attr, channel)
            self._channels_by_vqpn[vqpn] = channel
            self._instance_by_vqpn[vqpn] = state
        # One channel per distinct memory-pool node.
        pool_nodes = {h.node for h in descriptor.remote_regions.values()}
        for pool_node in sorted(pool_nodes):
            pool_host = pool_hosts[pool_node]
            qp = pool_host.nic.create_qp()
            vqpn = next(self._vqpn_counter)
            qp.connect(self.node, vqpn)
            channel = _Channel(
                self, pool_node, qp.qpn, vqpn, 0, self.config.data_priority
            )
            state.pool_channels[pool_node] = channel
            self._channels_by_vqpn[vqpn] = channel
            self._instance_by_vqpn[vqpn] = state
        self._instances.append(state)

    def start(self) -> None:
        """Begin Phase II probing and the timeout scanner."""
        if self._started:
            raise RuntimeError("engine already started")
        if not self._instances:
            raise RuntimeError("no instances registered")
        self._started = True
        self._probe_token = self.sim.call_after_cancellable(
            self.config.probe_interval_ns, self._probe_tick
        )
        self._timeout_token = self.sim.call_after_cancellable(
            self.config.timeout_ns, self._timeout_tick
        )

    def stop(self) -> None:
        """Halt probing and timeout scanning; cancel the pending ticks.

        Without this a built deployment leaks one recurring sim event
        per tick forever (each tick re-arms itself unconditionally).
        Idempotent: stopping a never-started or already-stopped engine
        is a no-op.
        """
        self._started = False
        if self._probe_token is not None:
            self._probe_token.cancel()
            self._probe_token = None
        if self._timeout_token is not None:
            self._timeout_token.cancel()
            self._timeout_token = None

    def stats_snapshot(self) -> dict:
        """Flat engine counters (the OffloadEngine protocol view)."""
        return dataclasses.asdict(self.stats)

    # ------------------------------------------------------------------
    # Phase II: probing (time-division multiplexed across instances)
    # ------------------------------------------------------------------
    def _probe_tick(self) -> None:
        if not self._started:
            return
        state = self._next_probe_target()
        interval = self.config.probe_interval_ns
        if self.config.adaptive_probing and state is not None:
            interval = min(
                interval * state.probe_interval_scale,
                self.config.adaptive_max_interval_ns,
            )
        self._tel_probe_rounds.inc()
        if state is not None and not state.probe_inflight:
            state.probe_inflight = True
            self.stats.probes_sent += 1
            self._tel_probes.inc()
            state.probe_channel.emit_read(
                state.descriptor.bookkeeping_addr,
                GreenBlock.SIZE,
                kind="probe",
                instance=state,
            )
        self._probe_token = self.sim.call_after_cancellable(
            interval, self._probe_tick
        )

    def _next_probe_target(self) -> Optional[_Instance]:
        """Pick the instance this probe slot serves (Section 5.4 TDM).

        Round-robin treats instances uniformly.  The weighted policy
        concentrates slots on recently active instances: an idle
        instance only consumes a slot every ``idle_stride`` visits, so
        active applications see probe intervals close to the slot
        period even with many idle co-tenants.
        """
        n = len(self._instances)
        if self.config.probe_policy == "round-robin":
            state = self._instances[self._probe_cycle % n]
            self._probe_cycle += 1
            return state
        for _ in range(n):
            state = self._instances[self._probe_cycle % n]
            self._probe_cycle += 1
            if state.activity_ttl > 0:
                return state
            state.idle_skips += 1
            if state.idle_skips >= self.config.idle_stride:
                state.idle_skips = 0
                return state
        return None

    # ------------------------------------------------------------------
    # The data plane pipeline: every packet traverses this
    # ------------------------------------------------------------------
    def _pipeline(self, packet, link) -> list:
        if not isinstance(packet, RocePacket) or packet.dst != self.node:
            return [packet]  # transit traffic: forward unchanged
        channel = self._channels_by_vqpn.get(packet.bth.dest_qp)
        if channel is None:
            self.stats.stale_packets += 1
            return []
        state = self._instance_by_vqpn[packet.bth.dest_qp]
        opcode = packet.opcode
        if opcode.is_read_response:
            self._on_read_response(state, channel, packet)
        elif opcode is Opcode.RC_ACKNOWLEDGE:
            self._on_ack(state, channel, packet)
        return []  # always consumed: the switch interdicts all RDMA

    def _on_read_response(self, state: _Instance, channel: _Channel, packet) -> None:
        op = channel.match(packet.bth.psn)
        if op is None or op.done:
            self.stats.stale_packets += 1
            return
        offset = psn_distance(op.first_psn, packet.bth.psn) * self.config.mtu_bytes
        if op.kind in ("probe", "meta"):
            # Control reads are parsed by the pipeline (they fit the PHV).
            if len(op.buffer) < op.expect_bytes:
                op.buffer.extend(b"\x00" * (op.expect_bytes - len(op.buffer)))
            op.buffer[offset : offset + len(packet.payload)] = packet.payload
        op.received_bytes += len(packet.payload)
        complete = op.received_bytes >= op.expect_bytes and packet.opcode in (
            Opcode.RC_RDMA_READ_RESPONSE_LAST,
            Opcode.RC_RDMA_READ_RESPONSE_ONLY,
        )
        if op.kind == "probe":
            if complete:
                channel.retire(op)
                if self._tel.enabled:
                    self._tel.complete(
                        "p4.probe", op.issued_at, self.sim.now,
                        process=self.node, track=f"qp{channel.virtual_qpn}",
                    )
                self._on_probe_response(state, bytes(op.buffer))
        elif op.kind == "meta":
            if complete:
                channel.retire(op)
                if self._tel.enabled:
                    self._tel.complete(
                        "p4.meta_fetch", op.issued_at, self.sim.now,
                        process=self.node, track=f"qp{channel.virtual_qpn}",
                        bytes=op.expect_bytes,
                    )
                self._on_metadata(state, bytes(op.buffer))
        elif op.kind == "read_fetch":
            self._convert_read_data(state, op, packet, offset, complete)
        elif op.kind == "write_fetch":
            self._convert_write_data(state, op, packet, offset, complete)
        else:
            self.stats.stale_packets += 1

    # -- Phase II continued: probe response -> metadata fetch ------------
    def _on_probe_response(self, state: _Instance, payload: bytes) -> None:
        self.stats.probe_responses += 1
        self._tel_probe_responses.inc()
        state.probe_inflight = False
        green = GreenBlock.unpack(payload)
        state.seen_meta_tail = max(state.seen_meta_tail, green.request_meta_tail)
        state.seen_data_tail = max(state.seen_data_tail, green.request_data_tail)
        activity = state.seen_meta_tail > state.parsed_meta
        if activity:
            state.activity_ttl = 16  # hysteresis: stay hot for a while
        elif state.activity_ttl > 0:
            state.activity_ttl -= 1
        if self.config.adaptive_probing:
            state.probe_interval_scale = (
                1.0 if activity else min(state.probe_interval_scale * 2.0, 64.0)
            )
        self._maybe_fetch_metadata(state)

    def _maybe_fetch_metadata(self, state: _Instance) -> None:
        if state.meta_fetch_inflight or state.seen_meta_tail <= state.parsed_meta:
            return
        descriptor = state.descriptor
        capacity = descriptor.metadata_capacity
        start = state.parsed_meta
        end = state.seen_meta_tail
        # The ring may wrap: fetch only the contiguous run from start
        # ("issue one or more RDMA read requests", Section 5.2).
        start_slot = start % capacity
        contiguous = min(end - start, capacity - start_slot)
        end = start + contiguous
        length = contiguous * MetadataRing.ENTRY_BYTES
        addr = descriptor.metadata_base + start_slot * MetadataRing.ENTRY_BYTES
        state.meta_fetch_inflight = True
        self.stats.metadata_fetches += 1
        self._tel_meta_fetches.inc()
        self.stats.recycled_packets += 1  # probe response recycled into this read
        self._tel_recycled.inc()
        op = state.data_channel.emit_read(addr, length, kind="meta", instance=state)
        op.buffer = bytearray()
        op.parent = None
        state._meta_fetch_span = (start, end)  # type: ignore[attr-defined]

    # -- Phase III: parse metadata, execute transfers ---------------------
    def _on_metadata(self, state: _Instance, payload: bytes) -> None:
        start, end = state._meta_fetch_span  # type: ignore[attr-defined]
        state.meta_fetch_inflight = False
        entry_bytes = MetadataRing.ENTRY_BYTES
        for i, index in enumerate(range(start, end)):
            raw = payload[i * entry_bytes : (i + 1) * entry_bytes]
            metadata = RequestMetadata.unpack(raw)
            if metadata.rw_type is RwType.INVALID:
                # The client writes rw_type last; an INVALID entry means
                # we raced an in-progress append.  Stop here; the next
                # probe retries from this index.
                end = index
                break
            self.stats.requests_parsed += 1
            self._tel_parsed.inc()
            if metadata.rw_type is RwType.READ:
                state.read_count += 1
                sequence = state.read_count
            else:
                state.write_count += 1
                sequence = state.write_count
            app_op = _AppOp(
                instance=state, sequence=sequence, metadata=metadata,
                ring_index=index, parsed_at=self.sim.now,
            )
            state.pending.append(app_op)
            state.in_order.append(app_op)
        state.parsed_meta = end
        self._drain_pending(state)
        self._maybe_fetch_metadata(state)

    def _drain_pending(self, state: _Instance) -> None:
        """FIFO execution with the pause-all-reads rule (Section 5.3)."""
        while state.pending:
            app_op = state.pending[0]
            if app_op.metadata.rw_type is RwType.READ:
                if state.fetching_writes > 0:
                    self.stats.reads_paused += 1
                    self._tel_reads_paused.inc()
                    return  # paused until no write is in Phase III step 1b
                state.pending.popleft()
                self._execute_read(state, app_op)
            else:
                state.pending.popleft()
                self._execute_write(state, app_op)

    def _pool_channel_for(self, state: _Instance, region_id: int) -> tuple[_Channel, int]:
        handle = state.descriptor.remote_regions[region_id]
        return state.pool_channels[handle.node], handle.rkey

    def _execute_read(self, state: _Instance, app_op: _AppOp) -> None:
        """Phase III step 1a: fetch the requested data from the pool."""
        channel, rkey = self._pool_channel_for(state, app_op.metadata.region_id)
        self.stats.recycled_packets += 1  # recycled from the Phase II response
        self._tel_recycled.inc()
        app_op.fetch_op = channel.emit_read(
            app_op.metadata.req_addr,
            app_op.metadata.length,
            kind="read_fetch",
            parent=app_op,
            instance=state,
            rkey=rkey,
        )

    def _execute_write(self, state: _Instance, app_op: _AppOp) -> None:
        """Phase III step 1b: fetch the to-be-written data from compute."""
        state.fetching_writes += 1
        self.stats.recycled_packets += 1
        self._tel_recycled.inc()
        app_op.fetch_op = state.data_channel.emit_read(
            app_op.metadata.req_addr,
            app_op.metadata.length,
            kind="write_fetch",
            parent=app_op,
            instance=state,
        )

    def _convert_read_data(
        self, state: _Instance, op: _EngineOp, packet, offset: int, complete: bool
    ) -> None:
        """Step 2a: recycle a pool read response into a compute write."""
        app_op = op.parent
        if app_op.write_train is None:
            app_op.write_train = state.data_channel.begin_write(
                op.expect_bytes, kind="resp_write", parent=app_op, instance=state
            )
        self.stats.recycled_packets += 1
        self._tel_recycled.inc()
        segment = psn_distance(op.first_psn, packet.bth.psn)
        if complete:
            op.channel.retire(op)
        state.data_channel.emit_write_segment(
            app_op.write_train,
            segment,
            dest_addr=app_op.metadata.resp_addr,
            dest_rkey=state.descriptor.rkey,
            payload=packet.payload,
            recycle=packet,
        )

    def _convert_write_data(
        self, state: _Instance, op: _EngineOp, packet, offset: int, complete: bool
    ) -> None:
        """Step 2b: recycle compute data into a memory-pool write."""
        app_op = op.parent
        channel, rkey = self._pool_channel_for(state, app_op.metadata.region_id)
        if app_op.write_train is None:
            app_op.write_train = channel.begin_write(
                op.expect_bytes, kind="pool_write", parent=app_op, instance=state
            )
        self.stats.recycled_packets += 1
        self._tel_recycled.inc()
        segment = psn_distance(op.first_psn, packet.bth.psn)
        channel.emit_write_segment(
            app_op.write_train,
            segment,
            dest_addr=app_op.metadata.resp_addr,
            dest_rkey=rkey,
            payload=packet.payload,
            recycle=packet,
        )
        if complete:
            op.channel.retire(op)
            state.fetching_writes -= 1
            self._drain_pending(state)

    # -- Phase IV: completion ---------------------------------------------
    def _on_ack(self, state: _Instance, channel: _Channel, packet) -> None:
        if packet.aeth is not None and packet.aeth.is_nak:
            self._go_back_n(channel)
            return
        # Cumulative ACK: retire covered *write* ops on this channel.
        # Read-kind ops retire only via their responses — if a response
        # was dropped, the timeout path must still find the op pending.
        psn = packet.bth.psn
        for op in list(channel.inflight):
            if op.done or op.kind not in ("resp_write", "pool_write", "red_update"):
                continue
            if psn_distance(op.last_psn, psn) < (1 << 23):
                channel.retire(op)
                if op.kind in ("resp_write", "pool_write"):
                    self._complete_app_op(state, op.parent)

    def _complete_app_op(self, state: _Instance, app_op: _AppOp) -> None:
        app_op.completed = True
        metadata = app_op.metadata
        self._tel_request_ns.observe(self.sim.now - app_op.parsed_at)
        if self._tel.enabled:
            self._tel.complete(
                "p4.request", app_op.parsed_at, self.sim.now,
                process=self.node, track=f"inst{self._instances.index(state)}",
                rw=metadata.rw_type.name.lower(), bytes=metadata.length,
                sequence=app_op.sequence,
            )
        if metadata.rw_type is RwType.READ:
            self.stats.reads_executed += 1
            self._tel_reads.inc()
            state.red.read_progress = max(state.red.read_progress, app_op.sequence)
            # Mirror the client's response-ring reservation cursor.
            pad = skip_pad(
                state.resp_data_cursor, metadata.length,
                state.descriptor.response_data_capacity,
            )
            state.resp_data_cursor += pad + metadata.length
            state.red.response_data_tail = state.resp_data_cursor
        else:
            self.stats.writes_executed += 1
            self._tel_writes.inc()
            state.red.write_progress = max(state.red.write_progress, app_op.sequence)
            pad = skip_pad(
                state.req_data_cursor, metadata.length,
                state.descriptor.request_data_capacity,
            )
            state.req_data_cursor += pad + metadata.length
            state.red.request_data_head = state.req_data_cursor
        # Metadata head advances over the completed prefix, in ring order.
        while state.in_order and state.in_order[0].completed:
            done = state.in_order.popleft()
            state.red.request_meta_head = done.ring_index + 1
        self._emit_red_update(state)

    def _emit_red_update(self, state: _Instance) -> None:
        """Phase IV: one RDMA write refreshes all bookkeeping (R3)."""
        self.stats.red_updates += 1
        self._tel_red_updates.inc()
        self.stats.recycled_packets += 1  # recycled from the ACK
        self._tel_recycled.inc()
        payload = state.red.pack()
        train = state.data_channel.begin_write(
            len(payload), kind="red_update", parent=None, instance=state
        )
        state.data_channel.emit_write_segment(
            train,
            0,
            dest_addr=state.descriptor.bookkeeping_addr + 64,  # red offset
            dest_rkey=state.descriptor.rkey,
            payload=payload,
        )

    # ------------------------------------------------------------------
    # Fault tolerance: data-plane timeouts + Go-Back-N (Section 5.3)
    # ------------------------------------------------------------------
    def _timeout_tick(self) -> None:
        if not self._started:
            return
        for channel in self._channels_by_vqpn.values():
            oldest = channel.oldest_pending()
            if oldest is not None and (
                self.sim.now - oldest.issued_at >= self.config.timeout_ns
            ):
                self._go_back_n(channel)
        self._timeout_token = self.sim.call_after_cancellable(
            self.config.timeout_ns, self._timeout_tick
        )

    def _go_back_n(self, channel: _Channel) -> None:
        """Rewind the channel PSN and re-execute everything incomplete."""
        pending = [op for op in channel.inflight if not op.done]
        if not pending:
            return
        self.stats.go_back_n_events += 1
        self._tel_gbn.inc()
        if self._tel.enabled:
            self._tel.instant(
                "p4.go_back_n", process=self.node,
                track=f"qp{channel.virtual_qpn}", pending=len(pending),
            )
        channel.inflight = deque(op for op in channel.inflight if op.done)
        channel.send_psn = pending[0].first_psn
        for op in pending:
            op.retries += 1
            if op.retries > self.config.max_retries:
                continue  # dropped; the client will observe a stall
            if op.kind in ("probe",):
                op.instance.probe_inflight = False
                continue  # the probe loop regenerates probes
            if op.kind == "meta":
                op.instance.meta_fetch_inflight = False
                self._maybe_fetch_metadata(op.instance)
                continue
            if op.kind in ("read_fetch", "write_fetch"):
                # Re-execute Phase III step 1; the stale converted train
                # (if any) is superseded.
                app_op = op.parent
                if app_op.write_train is not None:
                    app_op.write_train.channel.drop(app_op.write_train)
                    if op.kind == "write_fetch":
                        # the fetch never completed, so fetching_writes
                        # still counts it; the re-fetch keeps the count.
                        pass
                    app_op.write_train = None
                if op.kind == "read_fetch":
                    app_op.fetch_op = self._replay_read_fetch(app_op)
                else:
                    app_op.fetch_op = op.instance.data_channel.emit_read(
                        app_op.metadata.req_addr, app_op.metadata.length,
                        kind="write_fetch", parent=app_op, instance=op.instance,
                    )
                continue
            if op.kind in ("resp_write", "pool_write"):
                # The switch keeps no payloads: re-fetch from the source.
                app_op = op.parent
                app_op.write_train = None
                if op.kind == "resp_write":
                    app_op.fetch_op = self._replay_read_fetch(app_op)
                else:
                    op.instance.fetching_writes += 1
                    app_op.fetch_op = op.instance.data_channel.emit_read(
                        app_op.metadata.req_addr, app_op.metadata.length,
                        kind="write_fetch", parent=app_op, instance=op.instance,
                    )
                continue
            if op.kind == "red_update":
                self._emit_red_update(op.instance)

    def _replay_read_fetch(self, app_op: _AppOp) -> _EngineOp:
        state = app_op.instance
        channel, rkey = self._pool_channel_for(state, app_op.metadata.region_id)
        return channel.emit_read(
            app_op.metadata.req_addr, app_op.metadata.length,
            kind="read_fetch", parent=app_op, instance=state, rkey=rkey,
        )
