"""Cowbird's lock-free circular buffers (Section 4.2, Figure 4).

Three rings live in compute-node registered memory:

* the **request metadata ring** — fixed 32-byte entries (R1: trivially
  parsed by packet-centric devices),
* the **request data ring** — raw write payloads, no per-entry metadata,
* the **response data ring** — raw read results, appended by the engine.

Pointers are monotonically increasing counters (entries or bytes since
start); the ring offset is ``pointer % capacity``.  Data-ring
allocations never wrap around the end of the buffer: if an entry would
straddle the boundary, the allocator skips the leftover bytes
(:func:`skip_pad`).  Producer and consumer apply the same deterministic
rule, so the offload engine can mirror the client's cursor from lengths
alone — no extra coordination messages (R2/R3).
"""

from __future__ import annotations

from typing import Iterator

from repro.cowbird.wire import METADATA_ENTRY_BYTES, RequestMetadata
from repro.memory.region import MemoryRegion

__all__ = ["DataRing", "MetadataRing", "RingFullError", "skip_pad"]


class RingFullError(Exception):
    """No space: the caller should retry after consuming completions."""


def skip_pad(tail: int, length: int, capacity: int) -> int:
    """Padding inserted before an allocation so it never wraps.

    >>> skip_pad(900, 200, 1024)   # 900+200 > 1024: skip to boundary
    124
    >>> skip_pad(100, 200, 1024)
    0
    """
    offset = tail % capacity
    if offset + length > capacity:
        return capacity - offset
    return 0


class MetadataRing:
    """The request metadata ring: fixed-size entries, one per request."""

    ENTRY_BYTES = METADATA_ENTRY_BYTES

    def __init__(self, region: MemoryRegion, base_addr: int, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        needed = capacity * self.ENTRY_BYTES
        if not region.contains(base_addr, needed):
            raise ValueError(
                f"ring of {needed} bytes does not fit region at {base_addr:#x}"
            )
        self.region = region
        self.base_addr = base_addr
        self.capacity = capacity
        #: Client-side pointers: tail is owned locally, head mirrors the
        #: engine-written red block.
        self.tail = 0
        self.head = 0

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return self.capacity * self.ENTRY_BYTES

    def free_entries(self) -> int:
        return self.capacity - (self.tail - self.head)

    def addr_of(self, index: int) -> int:
        """Address of the entry at monotonic ``index``."""
        return self.base_addr + (index % self.capacity) * self.ENTRY_BYTES

    # ------------------------------------------------------------------
    def append(self, entry: RequestMetadata) -> int:
        """Write ``entry`` at the tail; return its monotonic index.

        Raises :class:`RingFullError` when the engine has not yet freed
        space (the paper's API returns an error telling the app to retry
        after processing existing responses).
        """
        if self.free_entries() <= 0:
            raise RingFullError(
                f"metadata ring full ({self.capacity} entries outstanding)"
            )
        index = self.tail
        self.region.write(self.addr_of(index), entry.pack())
        self.tail += 1
        return index

    def read_entry(self, index: int) -> RequestMetadata:
        """Local parse of the entry at monotonic ``index``."""
        raw = self.region.read(self.addr_of(index), self.ENTRY_BYTES)
        return RequestMetadata.unpack(raw)

    def entries_between(self, head: int, tail: int) -> Iterator[RequestMetadata]:
        """Parse entries in [head, tail) — what an engine fetch yields."""
        for index in range(head, tail):
            yield self.read_entry(index)

    def advance_head(self, new_head: int) -> None:
        """Adopt the engine-published head (frees ring space)."""
        if new_head < self.head or new_head > self.tail:
            raise ValueError(
                f"head must move forward within [{self.head}, {self.tail}]: {new_head}"
            )
        self.head = new_head


class DataRing:
    """A byte ring for raw payloads (request data / response data)."""

    def __init__(self, region: MemoryRegion, base_addr: int, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not region.contains(base_addr, capacity):
            raise ValueError(
                f"ring of {capacity} bytes does not fit region at {base_addr:#x}"
            )
        self.region = region
        self.base_addr = base_addr
        self.capacity = capacity
        self.tail = 0
        self.head = 0

    # ------------------------------------------------------------------
    def free_bytes(self) -> int:
        return self.capacity - (self.tail - self.head)

    def addr_at(self, pointer: int) -> int:
        return self.base_addr + (pointer % self.capacity)

    # ------------------------------------------------------------------
    def reserve(self, length: int) -> int:
        """Allocate ``length`` contiguous bytes; return their address.

        Applies the no-wrap rule, advancing the tail past boundary
        padding first.  Raises :class:`RingFullError` when the payload
        (plus any padding) does not fit.
        """
        if length <= 0:
            raise ValueError(f"allocation length must be positive: {length}")
        # Cap allocations at half the ring so boundary padding (counted
        # as occupancy by the conservative full-check below) can never
        # make an allocation permanently unsatisfiable.
        if length > self.capacity // 2:
            raise ValueError(
                f"allocation of {length} bytes exceeds half the ring "
                f"capacity ({self.capacity})"
            )
        pad = skip_pad(self.tail, length, self.capacity)
        if self.tail - self.head + pad + length > self.capacity:
            raise RingFullError(
                f"data ring full ({self.free_bytes()} free, need {pad + length})"
            )
        self.tail += pad
        addr = self.addr_at(self.tail)
        self.tail += length
        return addr

    def write(self, addr: int, payload: bytes) -> None:
        """Store ``payload`` at a previously reserved address."""
        self.region.write(addr, payload)

    def read(self, addr: int, length: int) -> bytes:
        return self.region.read(addr, length)

    def advance_head(self, new_head: int) -> None:
        """Consume through ``new_head`` (monotonic byte pointer)."""
        if new_head < self.head or new_head > self.tail:
            raise ValueError(
                f"head must move forward within [{self.head}, {self.tail}]: {new_head}"
            )
        self.head = new_head

    def mirror_reserve(self, cursor: int, length: int) -> tuple[int, int]:
        """Engine-side replay of :meth:`reserve`'s cursor arithmetic.

        Given the consumer's view of the producer cursor, returns
        ``(addr, new_cursor)`` for an entry of ``length`` bytes — the
        deterministic no-wrap rule means lengths alone reproduce the
        producer's layout.
        """
        pad = skip_pad(cursor, length, self.capacity)
        cursor += pad
        addr = self.addr_at(cursor)
        return addr, cursor + length
