"""The Cowbird client library and user-space API (Section 4, Table 2).

From the application's perspective every call here touches **only local
memory**: ``async_read``/``async_write`` append to lock-free rings and
return a request id; ``poll_wait`` compares integers in the
engine-maintained red block.  No RDMA verb is ever invoked on the
compute node — that is the entire point of the paper, and it is why the
CPU charges in this module are :attr:`CostModel.cowbird_post` /
``cowbird_poll`` (tens of ns) instead of the ~630 ns verb path.

One :class:`CowbirdInstance` owns one set of queues (the paper lays
buffers out per hardware thread; multi-threaded apps create one
instance per thread and the engine multiplexes).  All buffers of an
instance live in a single registered region, so the offload engine
reaches everything with one rkey:

    [ bookkeeping 128 B | metadata ring | request data | response data ]
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.cowbird.buffers import DataRing, MetadataRing, RingFullError
from repro.cowbird.wire import (
    BookkeepingLayout,
    GreenBlock,
    RedBlock,
    RequestMetadata,
    RwType,
    decode_request_id,
    encode_request_id,
)
from repro.memory.pool import RemoteRegionHandle
from repro.sim.cpu import TAG_COMM, Thread

__all__ = [
    "BufferFullError",
    "CompletionEvent",
    "CowbirdClient",
    "CowbirdConfig",
    "CowbirdInstance",
    "InstanceDescriptor",
    "PollGroup",
]


class BufferFullError(Exception):
    """A queue/buffer is full; retry after consuming completions.

    For writes the retry can be immediate; for reads the application
    should consume existing responses first (Section 4.3).
    """


@dataclass
class CowbirdConfig:
    """Sizing of one instance's rings."""

    metadata_capacity: int = 1024
    request_data_capacity: int = 1 << 20
    response_data_capacity: int = 1 << 20

    def total_bytes(self) -> int:
        return (
            BookkeepingLayout.TOTAL_BYTES
            + self.metadata_capacity * MetadataRing.ENTRY_BYTES
            + self.request_data_capacity
            + self.response_data_capacity
        )


@dataclass(frozen=True)
class InstanceDescriptor:
    """Phase I setup payload: everything the offload engine must know.

    This is what the compute node sends "through an RPC endpoint running
    on the switch control plane" (Section 5.2): buffer addresses, sizes,
    the region rkey, and the registered remote regions.
    """

    instance_id: int
    node: str
    rkey: int
    bookkeeping_addr: int
    metadata_base: int
    metadata_capacity: int
    request_data_base: int
    request_data_capacity: int
    response_data_base: int
    response_data_capacity: int
    remote_regions: dict[int, RemoteRegionHandle] = field(default_factory=dict)


@dataclass
class CompletionEvent:
    """One completed request, as returned by ``poll_wait``."""

    request_id: int
    rw_type: RwType
    addr: int
    length: int


class PollGroup:
    """An epoll-like notification group over request ids (Section 4.1).

    Registration tracks, per operation type, the set of outstanding
    sequence numbers; completion checks are integer comparisons against
    the red block's progress counters.
    """

    def __init__(self, poll_id: int) -> None:
        self.poll_id = poll_id
        self._pending: dict[int, int] = {}  # request_id -> sequence

    def add(self, request_id: int) -> None:
        _type, _region, seq = decode_request_id(request_id)
        self._pending[request_id] = seq

    def remove(self, request_id: int) -> None:
        self._pending.pop(request_id, None)

    def __len__(self) -> int:
        return len(self._pending)

    def completed(self, red: RedBlock) -> list[int]:
        """Request ids whose sequence the progress counters have passed."""
        done = []
        for request_id, seq in self._pending.items():
            rw_type, _region, _seq = decode_request_id(request_id)
            progress = (
                red.read_progress if rw_type is RwType.READ else red.write_progress
            )
            if progress >= seq:
                done.append(request_id)
        return done


@dataclass
class _OutstandingRead:
    sequence: int
    addr: int
    length: int
    pad: int
    ring_allocated: bool
    consumed: bool = False


@dataclass
class _OutstandingWrite:
    sequence: int
    data_pad: int
    length: int


class CowbirdInstance:
    """One set of Cowbird queues on a compute node."""

    def __init__(self, host, config: CowbirdConfig, instance_id: int) -> None:
        self.host = host
        self.sim = host.sim
        self.cost = host.verbs.cost
        self.config = config
        self.instance_id = instance_id
        # One registered region holds all buffers (single rkey for R3).
        self.region = host.registry.register(
            config.total_bytes(), name=f"cowbird-{instance_id}"
        )
        base = self.region.base_addr
        self.bookkeeping = BookkeepingLayout(base_addr=base)
        cursor = base + BookkeepingLayout.TOTAL_BYTES
        self.metadata_ring = MetadataRing(self.region, cursor, config.metadata_capacity)
        cursor += self.metadata_ring.size_bytes
        self.request_data = DataRing(self.region, cursor, config.request_data_capacity)
        cursor += config.request_data_capacity
        self.response_data = DataRing(self.region, cursor, config.response_data_capacity)
        # Local mirrors of the shared blocks.
        self.green = GreenBlock()
        self.red = RedBlock()
        self._publish_green()
        self.region.write(self.bookkeeping.red_addr, self.red.pack())
        # Sequence counters (per type, starting at 1; Section 4.3).
        self._read_seq = itertools.count(1)
        self._write_seq = itertools.count(1)
        self._reads: dict[int, _OutstandingRead] = {}
        self._writes: dict[int, _OutstandingWrite] = {}
        self._poll_groups: dict[int, PollGroup] = {}
        self._next_poll_id = itertools.count(1)
        self._progress_waiters: list = []
        self.remote_regions: dict[int, RemoteRegionHandle] = {}
        # Observe engine RDMA writes to the red block so poll_wait can be
        # event-driven instead of simulating every empty poll.
        self.region.write_watchers.append(self._on_region_write)
        # Stats.
        self.requests_issued = 0
        self.requests_completed = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def register_remote_region(self, handle: RemoteRegionHandle) -> None:
        """Make a memory-pool region addressable through this instance."""
        self.remote_regions[handle.region_id] = handle

    def descriptor(self) -> InstanceDescriptor:
        return InstanceDescriptor(
            instance_id=self.instance_id,
            node=self.host.name,
            rkey=self.region.rkey,
            bookkeeping_addr=self.bookkeeping.base_addr,
            metadata_base=self.metadata_ring.base_addr,
            metadata_capacity=self.metadata_ring.capacity,
            request_data_base=self.request_data.base_addr,
            request_data_capacity=self.request_data.capacity,
            response_data_base=self.response_data.base_addr,
            response_data_capacity=self.response_data.capacity,
            remote_regions=dict(self.remote_regions),
        )

    # ------------------------------------------------------------------
    # The Table 2 API
    # ------------------------------------------------------------------
    def async_read(
        self,
        thread: Thread,
        region_id: int,
        src_offset: int,
        length: int,
        dest_addr: Optional[int] = None,
    ) -> Generator[Any, Any, int]:
        """Asynchronously read remote bytes; returns a request id.

        ``src_offset`` is relative to the remote region's base (the API
        expresses remote memory as offsets from ``memory_pool_addr``).
        With ``dest_addr=None`` the result lands in the response data
        ring; a caller-supplied address must be in registered compute
        memory.
        """
        handle = self._handle(region_id)
        remote_addr = handle.translate(src_offset, length)
        # Reserve the response slot first (step 2 of Section 4.3) so a
        # full response ring fails before any state is published.
        pad = 0
        ring_allocated = dest_addr is None
        if ring_allocated:
            before = self.response_data.tail
            try:
                dest_addr = self.response_data.reserve(length)
            except RingFullError as exc:
                raise BufferFullError(str(exc)) from exc
            pad = (self.response_data.tail - before) - length
        sequence = next(self._read_seq)
        try:
            self._append_metadata(
                RequestMetadata(
                    rw_type=RwType.READ,
                    req_addr=remote_addr,
                    resp_addr=dest_addr,
                    length=length,
                    region_id=region_id,
                )
            )
        except RingFullError as exc:
            raise BufferFullError(str(exc)) from exc
        self._reads[sequence] = _OutstandingRead(
            sequence=sequence, addr=dest_addr, length=length, pad=pad,
            ring_allocated=ring_allocated,
        )
        self.requests_issued += 1
        # The whole issue path is a handful of local stores (Figure 2).
        yield from thread.compute(self.cost.cowbird_post, tag=TAG_COMM)
        return encode_request_id(RwType.READ, region_id, sequence)

    def async_write(
        self,
        thread: Thread,
        region_id: int,
        dest_offset: int,
        data: bytes,
    ) -> Generator[Any, Any, int]:
        """Asynchronously write ``data`` to remote memory; returns a request id."""
        if not data:
            raise ValueError("cannot write an empty payload")
        handle = self._handle(region_id)
        remote_addr = handle.translate(dest_offset, len(data))
        before = self.request_data.tail
        try:
            src_addr = self.request_data.reserve(len(data))
        except RingFullError as exc:
            raise BufferFullError(str(exc)) from exc
        pad = (self.request_data.tail - before) - len(data)
        self.request_data.write(src_addr, data)
        sequence = next(self._write_seq)
        try:
            self._append_metadata(
                RequestMetadata(
                    rw_type=RwType.WRITE,
                    req_addr=src_addr,
                    resp_addr=remote_addr,
                    length=len(data),
                    region_id=region_id,
                )
            )
        except RingFullError as exc:
            raise BufferFullError(str(exc)) from exc
        self._writes[sequence] = _OutstandingWrite(
            sequence=sequence, data_pad=pad, length=len(data)
        )
        self.requests_issued += 1
        # Post cost plus the payload copy into the request data ring.
        yield from thread.compute(
            self.cost.cowbird_post + self.cost.memcpy_per_byte * len(data),
            tag=TAG_COMM,
        )
        return encode_request_id(RwType.WRITE, region_id, sequence)

    def poll_create(self) -> int:
        """Initialize a notification group; returns a poll id."""
        poll_id = next(self._next_poll_id)
        self._poll_groups[poll_id] = PollGroup(poll_id)
        return poll_id

    def poll_add(self, poll_id: int, request_id: int) -> None:
        self._group(poll_id).add(request_id)

    def poll_remove(self, poll_id: int, request_id: int) -> None:
        self._group(poll_id).remove(request_id)

    def poll_wait(
        self,
        thread: Thread,
        poll_id: int,
        max_ret: int = 16,
        timeout: Optional[float] = None,
    ) -> Generator[Any, Any, list[CompletionEvent]]:
        """Wait for up to ``max_ret`` completions or until ``timeout`` ns.

        Completion checks are purely local: integer comparisons against
        the red block's progress counters (Section 4.3).
        """
        group = self._group(poll_id)
        deadline = None if timeout is None else self.sim.now + timeout
        while True:
            # Register for progress *before* checking, so an engine
            # update landing between the check and the wait cannot be
            # missed (the classic lost-wakeup race).
            progress = self.sim.future()
            self._progress_waiters.append(progress)
            self._sync_red()
            done_ids = group.completed(self.red)[:max_ret]
            if done_ids or not len(group):
                self._discard_waiter(progress)
                yield from thread.compute(
                    self.cost.cowbird_poll if done_ids else self.cost.cowbird_poll_empty,
                    tag=TAG_COMM,
                )
                events = [self._complete(request_id) for request_id in done_ids]
                for request_id in done_ids:
                    group.remove(request_id)
                return events
            yield from thread.compute(self.cost.cowbird_poll_empty, tag=TAG_COMM)
            if deadline is not None and self.sim.now >= deadline:
                self._discard_waiter(progress)
                return []
            if deadline is None:
                yield from thread.wait(progress)
            else:
                yield from thread.wait(
                    self.sim.any_of([progress, self.sim.timeout(deadline - self.sim.now)])
                )

    # ------------------------------------------------------------------
    # Convenience methods (Section 4.1: "Simple extensions can be made
    # to the API to allow convenience methods like traditional
    # select/poll semantics or an implicit notification group tied to
    # each read and write.")
    # ------------------------------------------------------------------
    def wait_one(
        self,
        thread: Thread,
        request_id: int,
        timeout: Optional[float] = None,
    ) -> Generator[Any, Any, Optional[CompletionEvent]]:
        """Block until one specific request completes (implicit group)."""
        poll_id = self.poll_create()
        try:
            self.poll_add(poll_id, request_id)
            events = yield from self.poll_wait(
                thread, poll_id, max_ret=1, timeout=timeout
            )
            return events[0] if events else None
        finally:
            del self._poll_groups[poll_id]

    def select(
        self,
        thread: Thread,
        request_ids: list[int],
        max_ret: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Generator[Any, Any, list[CompletionEvent]]:
        """select()-style wait over an ad-hoc set of request ids.

        Returns the completed subset (at least one unless the timeout
        expires); unfinished requests are simply not consumed and can be
        selected on again.
        """
        if not request_ids:
            return []
        poll_id = self.poll_create()
        try:
            for request_id in request_ids:
                self.poll_add(poll_id, request_id)
            events = yield from self.poll_wait(
                thread, poll_id,
                max_ret=max_ret if max_ret is not None else len(request_ids),
                timeout=timeout,
            )
            return events
        finally:
            del self._poll_groups[poll_id]

    # ------------------------------------------------------------------
    # Response consumption
    # ------------------------------------------------------------------
    def fetch_response(self, request_id: int) -> bytes:
        """Copy a completed read's bytes out and free its ring slot."""
        rw_type, _region, sequence = decode_request_id(request_id)
        if rw_type is not RwType.READ:
            raise ValueError("only reads have response payloads")
        entry = self._reads.get(sequence)
        if entry is None:
            raise KeyError(f"unknown or already-freed read sequence {sequence}")
        if self.red.read_progress < sequence:
            raise RuntimeError(f"read {sequence} not complete yet")
        data = self.region.read(entry.addr, entry.length)
        entry.consumed = True
        self._release_consumed_reads()
        return data

    def _release_consumed_reads(self) -> None:
        """Advance the response ring head past consumed leading reads."""
        while True:
            first = min(self._reads) if self._reads else None
            if first is None:
                break
            entry = self._reads[first]
            if not entry.consumed:
                break
            if entry.ring_allocated:
                self.response_data.advance_head(
                    self.response_data.head + entry.pad + entry.length
                )
            del self._reads[first]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _handle(self, region_id: int) -> RemoteRegionHandle:
        handle = self.remote_regions.get(region_id)
        if handle is None:
            raise KeyError(f"region {region_id} not registered with instance")
        return handle

    def _append_metadata(self, entry: RequestMetadata) -> None:
        self.metadata_ring.append(entry)
        self.green.request_meta_tail = self.metadata_ring.tail
        self.green.request_data_tail = self.request_data.tail
        self._publish_green()

    def _publish_green(self) -> None:
        self.region.write(self.bookkeeping.green_addr, self.green.pack())

    def _sync_red(self) -> None:
        """Adopt the engine-published red block into local mirrors."""
        raw = self.region.read(self.bookkeeping.red_addr, RedBlock.SIZE)
        red = RedBlock.unpack(raw)
        if red.request_meta_head > self.metadata_ring.head:
            self.metadata_ring.advance_head(red.request_meta_head)
        if red.request_data_head > self.request_data.head:
            self.request_data.advance_head(red.request_data_head)
        self.red = red

    def _discard_waiter(self, progress) -> None:
        try:
            self._progress_waiters.remove(progress)
        except ValueError:
            pass  # already fired and cleared by _on_region_write

    def _on_region_write(self, addr: int, length: int) -> None:
        """Wake poll_wait sleepers when the engine touches the red block."""
        red_addr = self.bookkeeping.red_addr
        if addr < red_addr + RedBlock.SIZE and addr + length > red_addr:
            waiters, self._progress_waiters = self._progress_waiters, []
            for waiter in waiters:
                waiter.resolve(None)

    def _group(self, poll_id: int) -> PollGroup:
        group = self._poll_groups.get(poll_id)
        if group is None:
            raise KeyError(f"unknown poll id {poll_id}")
        return group

    def _complete(self, request_id: int) -> CompletionEvent:
        rw_type, _region, sequence = decode_request_id(request_id)
        self.requests_completed += 1
        if rw_type is RwType.READ:
            entry = self._reads[sequence]
            return CompletionEvent(
                request_id=request_id, rw_type=rw_type,
                addr=entry.addr, length=entry.length,
            )
        entry = self._writes.pop(sequence)
        return CompletionEvent(
            request_id=request_id, rw_type=rw_type, addr=0, length=entry.length
        )


class CowbirdClient:
    """Factory/registry for a compute node's Cowbird instances."""

    def __init__(self, host, config: Optional[CowbirdConfig] = None) -> None:
        self.host = host
        self.config = config or CowbirdConfig()
        self.instances: list[CowbirdInstance] = []
        self._shared_regions: list[RemoteRegionHandle] = []

    def register_remote_region(self, handle: RemoteRegionHandle) -> None:
        """Register a remote region with all (current and future) instances."""
        self._shared_regions.append(handle)
        for instance in self.instances:
            instance.register_remote_region(handle)

    def create_instance(self, config: Optional[CowbirdConfig] = None) -> CowbirdInstance:
        instance = CowbirdInstance(
            self.host, config or self.config, instance_id=len(self.instances)
        )
        for handle in self._shared_regions:
            instance.register_remote_region(handle)
        self.instances.append(instance)
        return instance
