"""Cowbird: the paper's primary contribution.

The compute node issues remote-memory operations with *purely local*
memory writes (:mod:`repro.cowbird.api`); an offload engine discovers
them by polling compute-node memory over RDMA and executes the
transfers on the application's behalf.  Two engine variants are
provided, matching the paper's Sections 5 and 6:

* :class:`~repro.cowbird.p4_engine.CowbirdP4Engine` — a programmable
  switch data plane that *recycles* RDMA packets (probe response ->
  metadata read -> data read -> spoofed write) without any server CPU.
* :class:`~repro.cowbird.spot_engine.CowbirdSpotEngine` — an
  event-driven agent on a harvested/spot VM that uses host verbs and
  batches responses (BATCH_SIZE) to cut per-request message overheads.
"""

from repro.cowbird.wire import (
    BookkeepingLayout,
    GreenBlock,
    RedBlock,
    RequestMetadata,
    RwType,
    decode_request_id,
    encode_request_id,
)
from repro.cowbird.buffers import DataRing, MetadataRing, RingFullError
from repro.cowbird.api import (
    BufferFullError,
    CowbirdClient,
    CowbirdConfig,
    CowbirdInstance,
    PollGroup,
)
from repro.cowbird.p4_engine import CowbirdP4Engine, P4EngineConfig
from repro.cowbird.spot_engine import CowbirdSpotEngine, SpotEngineConfig
from repro.cowbird.p4_resources import P4PipelineResources, estimate_pipeline_resources

__all__ = [
    "BookkeepingLayout",
    "BufferFullError",
    "CowbirdClient",
    "CowbirdConfig",
    "CowbirdInstance",
    "CowbirdP4Engine",
    "CowbirdSpotEngine",
    "DataRing",
    "GreenBlock",
    "MetadataRing",
    "P4EngineConfig",
    "P4PipelineResources",
    "PollGroup",
    "RedBlock",
    "RequestMetadata",
    "RingFullError",
    "RwType",
    "SpotEngineConfig",
    "decode_request_id",
    "encode_request_id",
    "estimate_pipeline_resources",
]
