"""Tofino pipeline resource accounting for Cowbird-P4 (Table 5).

The paper reports the data-plane footprint of the ~1700-line P4 program
on a 32-port L3-forwarding Tofino: PHV 1085 b, SRAM 1424 KB, TCAM
1.28 KB, 12 stages, 38 VLIW instructions, 11 stateful ALUs.  We cannot
run a Tofino compiler here, so this module models the program as the
list of match-action units the Section 5 protocol logically requires
and aggregates their costs with RMT-style accounting rules:

* each logical table/register consumes SRAM in 16 KB block units,
* ternary matches consume TCAM in 44-bit-wide half-KB slices,
* a register that is read-modified-written needs a stateful ALU,
* units are greedily packed into stages subject to dependency order.

The estimator exists so the reproduction can (a) regenerate Table 5's
row and (b) answer sizing questions like "how many concurrent Cowbird
instances fit next to L3 forwarding?" — the same questions the paper's
Section 8.4 addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "MatchActionUnit",
    "P4PipelineResources",
    "cowbird_pipeline_units",
    "estimate_pipeline_resources",
]

SRAM_BLOCK_KB = 16
TCAM_SLICE_KB = 0.64
MAX_STAGES = 12
UNITS_PER_STAGE = 4


@dataclass(frozen=True)
class MatchActionUnit:
    """One logical table or register bank in the P4 program."""

    name: str
    #: Phase of the Section 5 protocol this unit serves.
    phase: str
    sram_blocks: int = 1
    tcam_kb: float = 0.0
    vliw_instructions: int = 1
    stateful_alus: int = 0
    #: Header/metadata bits this unit adds to the PHV allocation.
    phv_bits: int = 0
    #: Units in the same dependency level may share a stage.
    dependency_level: int = 0


@dataclass
class P4PipelineResources:
    """Aggregated pipeline usage — the row Table 5 reports."""

    phv_bits: int = 0
    sram_kb: int = 0
    tcam_kb: float = 0.0
    stages: int = 0
    vliw_instructions: int = 0
    stateful_alus: int = 0
    units: int = 0

    def fits_tofino(self) -> bool:
        """Does the program fit a Tofino-1 pipeline?"""
        return (
            self.stages <= MAX_STAGES
            and self.phv_bits <= 4096  # total PHV capacity (bits)
            and self.sram_kb <= 120 * SRAM_BLOCK_KB * 12  # 120 blocks/stage
        )


def cowbird_pipeline_units(
    instances: int = 32, l3_forwarding: bool = True
) -> list[MatchActionUnit]:
    """The match-action inventory of the Cowbird-P4 program.

    ``instances`` sizes the per-instance register banks (the paper's
    worst case assumes all 32 ports run Cowbird-P4).
    """
    units: list[MatchActionUnit] = []
    if l3_forwarding:
        # Baseline L3 switch.p4 behaviour the program coexists with.
        units += [
            MatchActionUnit("ipv4_lpm", "forwarding", sram_blocks=48,
                            tcam_kb=0.64, vliw_instructions=2, phv_bits=160,
                            dependency_level=0),
            MatchActionUnit("l2_rewrite", "forwarding", sram_blocks=8,
                            vliw_instructions=2, phv_bits=112,
                            dependency_level=1),
        ]
    # --- Parsing: RoCEv2 headers into the PHV (Table 4) -----------------
    units += [
        MatchActionUnit("roce_classifier", "parse", sram_blocks=1,
                        tcam_kb=0.64, vliw_instructions=1,
                        phv_bits=96 + 260, dependency_level=0),
    ]
    # --- Phase II: probe generation and green-block tracking ------------
    per_instance_blocks = max(1, instances * 16 // (SRAM_BLOCK_KB * 1024) or 1)
    units += [
        MatchActionUnit("probe_schedule", "probe", sram_blocks=1,
                        vliw_instructions=2, stateful_alus=1,
                        phv_bits=32, dependency_level=2),
        MatchActionUnit("green_tail_register", "probe",
                        sram_blocks=per_instance_blocks,
                        vliw_instructions=2, stateful_alus=2,
                        phv_bits=128, dependency_level=3),
        MatchActionUnit("qpn_to_instance", "multiplex", sram_blocks=2,
                        vliw_instructions=1, phv_bits=24,
                        dependency_level=1),
    ]
    # --- Phase III: PSN registers, recycling, conversion -----------------
    units += [
        MatchActionUnit("psn_registers", "execute",
                        sram_blocks=per_instance_blocks,
                        vliw_instructions=3, stateful_alus=3,
                        phv_bits=48, dependency_level=5),
        MatchActionUnit("opcode_convert", "execute", sram_blocks=1,
                        tcam_kb=0.0, vliw_instructions=4, phv_bits=8,
                        dependency_level=7),
        MatchActionUnit("resp_addr_hash_table", "execute", sram_blocks=19,
                        vliw_instructions=3, stateful_alus=2,
                        phv_bits=64, dependency_level=8),
        MatchActionUnit("header_rewrite", "execute", sram_blocks=2,
                        vliw_instructions=5, phv_bits=0,
                        dependency_level=9),
        MatchActionUnit("pause_reads_flag", "consistency", sram_blocks=1,
                        vliw_instructions=2, stateful_alus=1,
                        phv_bits=8, dependency_level=6),
    ]
    # --- Phase IV + fault tolerance --------------------------------------
    units += [
        MatchActionUnit("progress_counters", "complete",
                        sram_blocks=per_instance_blocks,
                        vliw_instructions=4, stateful_alus=2,
                        phv_bits=64, dependency_level=10),
        MatchActionUnit("timeout_tracker", "fault", sram_blocks=2,
                        vliw_instructions=3, phv_bits=32,
                        dependency_level=4),
        MatchActionUnit("ring_cursor_mirror", "complete",
                        sram_blocks=per_instance_blocks,
                        vliw_instructions=4, phv_bits=49,
                        dependency_level=11),
    ]
    return units


def estimate_pipeline_resources(
    units: Iterable[MatchActionUnit] | None = None,
) -> P4PipelineResources:
    """Aggregate unit costs into the Table 5 row."""
    unit_list = list(units) if units is not None else cowbird_pipeline_units()
    result = P4PipelineResources()
    # Stage packing: dependency levels must be in order; within a level,
    # at most UNITS_PER_STAGE units share a stage.
    stages = 0
    levels: dict[int, int] = {}
    for unit in unit_list:
        levels[unit.dependency_level] = levels.get(unit.dependency_level, 0) + 1
    for level in sorted(levels):
        stages += max(1, -(-levels[level] // UNITS_PER_STAGE))
    result.stages = max(stages, len(levels))
    for unit in unit_list:
        result.units += 1
        result.phv_bits += unit.phv_bits
        result.sram_kb += unit.sram_blocks * SRAM_BLOCK_KB
        result.tcam_kb += unit.tcam_kb
        result.vliw_instructions += unit.vliw_instructions
        result.stateful_alus += unit.stateful_alus
    result.tcam_kb = round(result.tcam_kb, 2)
    return result
