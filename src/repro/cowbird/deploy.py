"""One-call Cowbird deployments for tests, examples, and experiments.

Builds the Section 7 testbed (compute node, memory pool, switch, and —
for Cowbird-Spot — a spot-VM agent host), allocates remote memory,
creates client instances, registers them with the chosen offload
engine, and starts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cowbird.api import CowbirdClient, CowbirdConfig, CowbirdInstance
from repro.cowbird.p4_engine import CowbirdP4Engine, P4EngineConfig
from repro.cowbird.spot_engine import CowbirdSpotEngine, SpotEngineConfig
from repro.memory.pool import MemoryPool, RemoteRegionHandle
from repro.sim.cpu import CostModel
from repro.sim.network import FaultInjector
from repro.testbed import Host, Testbed

__all__ = ["CowbirdDeployment", "deploy_cowbird"]


@dataclass
class CowbirdDeployment:
    """Everything a deployed Cowbird system exposes."""

    bed: Testbed
    compute: Host
    pool_host: Host
    pool: MemoryPool
    client: CowbirdClient
    instances: list[CowbirdInstance]
    region: RemoteRegionHandle
    engine: object
    agent_host: Optional[Host] = None

    @property
    def sim(self):
        return self.bed.sim

    def pool_region(self):
        """The backing memory region on the pool (for test assertions)."""
        return self.pool.region_for(self.region)

    def close(self) -> None:
        """Stop the engine (cancels recurring probe/timeout events)."""
        if self.engine is not None:
            self.engine.stop()


def deploy_cowbird(
    engine: str = "spot",
    num_instances: int = 1,
    remote_bytes: int = 1 << 20,
    compute_cores: int = 8,
    smt: int = 2,
    cost: Optional[CostModel] = None,
    cowbird_config: Optional[CowbirdConfig] = None,
    spot_config: Optional[SpotEngineConfig] = None,
    p4_config: Optional[P4EngineConfig] = None,
    fault_injector: Optional[FaultInjector] = None,
    seed: int = 0,
) -> CowbirdDeployment:
    """Stand up a complete Cowbird system and start its offload engine.

    ``engine`` selects the offload platform: ``"spot"`` (Section 6),
    ``"p4"`` (Section 5), or ``"none"`` (client only — for unit tests
    that drive the protocol by hand).
    """
    if engine not in ("spot", "p4", "none"):
        raise ValueError(f"unknown engine kind: {engine}")
    cost = cost or CostModel()
    bed = Testbed(seed=seed, cost=cost, fault_injector=fault_injector)
    compute = bed.add_host("compute", cpu_cores=compute_cores, smt=smt)
    pool_host, pool = bed.add_pool("pool")
    region = pool.allocate_region(remote_bytes, name="cowbird-remote")

    client = CowbirdClient(compute, cowbird_config)
    client.register_remote_region(region)
    instances = [client.create_instance() for _ in range(num_instances)]

    agent_host = None
    engine_obj = None
    if engine == "spot":
        # The agent is capped at one CPU core (Section 8.4).
        agent_host = bed.add_host("spot-agent", cpu_cores=1, smt=2)
        engine_obj = CowbirdSpotEngine(agent_host, spot_config)
        for instance in instances:
            engine_obj.register_instance(instance, {"pool": pool_host})
        engine_obj.start()
    elif engine == "p4":
        engine_obj = CowbirdP4Engine(bed.sim, bed.switch, p4_config)
        for instance in instances:
            engine_obj.register_instance(instance, {"pool": pool_host})
        engine_obj.start()

    return CowbirdDeployment(
        bed=bed,
        compute=compute,
        pool_host=pool_host,
        pool=pool,
        client=client,
        instances=instances,
        region=region,
        engine=engine_obj,
        agent_host=agent_host,
    )
