"""Workload generators: the hash-table microbenchmark and YCSB."""

from repro.workloads.hashtable import (
    HashTable,
    HashTableConfig,
    ProbeResult,
    probe_worker,
)
from repro.workloads.ycsb import (
    UniformGenerator,
    YcsbConfig,
    YcsbOp,
    YcsbWorkload,
    ZipfianGenerator,
)

__all__ = [
    "HashTable",
    "HashTableConfig",
    "ProbeResult",
    "UniformGenerator",
    "YcsbConfig",
    "YcsbOp",
    "YcsbWorkload",
    "ZipfianGenerator",
    "probe_worker",
]
