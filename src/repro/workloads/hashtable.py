"""The hash-table probe microbenchmark (Figures 1, 8, 12, 13).

Section 8's throughput microbenchmark: a hash table whose records are
split between compute-local memory (5 %) and remote memory (95 %); each
operation hashes a key, locates the record, and touches its bytes.
Local hits cost only application CPU; remote hits go through whatever
:class:`~repro.baselines.backends.Backend` is under test, pipelined up
to the backend's limit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.baselines.backends import Backend
from repro.sim.cpu import TAG_APP, Thread

__all__ = ["HashTable", "HashTableConfig", "ProbeResult", "probe_worker"]


@dataclass
class HashTableConfig:
    """Microbenchmark parameters (Section 8.1)."""

    num_records: int = 100_000
    record_bytes: int = 256
    #: Fraction of records resident in compute-local memory.
    local_fraction: float = 0.05
    #: Operations each worker thread performs.
    ops_per_thread: int = 2_000
    #: In-flight cap for pipelined backends (the paper uses batches of
    #: 100 for asynchronous RDMA and Cowbird alike).
    pipeline_depth: int = 100

    def __post_init__(self) -> None:
        if not 0.0 <= self.local_fraction <= 1.0:
            raise ValueError(f"local_fraction out of range: {self.local_fraction}")
        if self.num_records < 1:
            raise ValueError("num_records must be >= 1")


class HashTable:
    """Key -> record placement map for the microbenchmark.

    The first ``local_fraction`` of records live in local memory; the
    rest are laid out contiguously in the remote region.  ``locate`` is
    pure arithmetic so workers can run it cheaply per op (the simulated
    hash cost is charged separately from the cost model).
    """

    def __init__(self, config: HashTableConfig) -> None:
        self.config = config
        self.local_count = int(config.num_records * config.local_fraction)

    def locate(self, key: int) -> tuple[bool, int]:
        """Return (is_local, remote_offset_or_zero) for ``key``."""
        slot = key % self.config.num_records
        if slot < self.local_count:
            return True, 0
        remote_index = slot - self.local_count
        return False, remote_index * self.config.record_bytes

    @property
    def remote_count(self) -> int:
        return self.config.num_records - self.local_count

    def remote_bytes_needed(self) -> int:
        return self.remote_count * self.config.record_bytes


@dataclass
class ProbeResult:
    """Per-thread outcome of one microbenchmark run."""

    thread_name: str
    ops: int = 0
    local_hits: int = 0
    remote_hits: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    comm_cpu_ns: float = 0.0
    app_cpu_ns: float = 0.0
    blocked_ns: float = 0.0

    @property
    def elapsed_ns(self) -> float:
        return self.finished_at - self.started_at

    def mops(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.ops / self.elapsed_ns * 1_000.0  # ops/ns -> Mops


def probe_worker(
    thread: Thread,
    backend: Backend,
    table: HashTable,
    cost,
    seed: int = 0,
    ops: Optional[int] = None,
) -> Generator[Any, Any, ProbeResult]:
    """One worker thread's probe loop.

    Issues hash probes back to back; remote fetches are pipelined up to
    ``min(backend.pending_limit, config.pipeline_depth)`` outstanding
    operations, and every reaped completion is charged the record-touch
    cost (the application actually looks at the data).
    """
    config = table.config
    total_ops = ops if ops is not None else config.ops_per_thread
    depth = max(1, min(backend.pending_limit, config.pipeline_depth))
    rng = random.Random(seed)
    result = ProbeResult(thread_name=thread.name, started_at=thread.sim.now)
    touch_ns = cost.record_touch_per_byte * config.record_bytes
    inflight = 0

    def reap(tokens: list) -> Generator[Any, Any, None]:
        nonlocal inflight
        for _token in tokens:
            yield from thread.compute(touch_ns, tag=TAG_APP)
        inflight -= len(tokens)

    for _ in range(total_ops):
        key = rng.randrange(config.num_records)
        yield from thread.compute(cost.hash_probe_compute, tag=TAG_APP)
        is_local, offset = table.locate(key)
        result.ops += 1
        if is_local:
            result.local_hits += 1
            yield from thread.compute(touch_ns, tag=TAG_APP)
            continue
        result.remote_hits += 1
        yield from backend.issue_read(thread, offset, config.record_bytes)
        inflight += 1
        if inflight >= depth:
            tokens = yield from backend.poll_completions(
                thread, max_ret=depth, block=True
            )
            yield from reap(tokens)
        else:
            tokens = yield from backend.poll_completions(thread, max_ret=depth)
            yield from reap(tokens)
    while inflight > 0:
        tokens = yield from backend.poll_completions(thread, max_ret=depth,
                                                     block=True)
        yield from reap(tokens)
    result.finished_at = thread.sim.now
    result.comm_cpu_ns = thread.stats.cpu_ns.get("comm", 0.0)
    result.app_cpu_ns = thread.stats.cpu_ns.get("app", 0.0)
    result.blocked_ns = thread.stats.blocked_ns
    thread.finish()
    return result
