"""YCSB-style workload generation (Section 8: Zipfian θ=0.99 / uniform).

The Zipfian generator is Gray et al.'s classic algorithm (the one YCSB
itself uses): constant-time sampling after an O(n) zeta precomputation,
with the standard scrambling option so hot keys spread across the key
space instead of clustering at low ids.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "UniformGenerator",
    "YcsbConfig",
    "YcsbOp",
    "YcsbWorkload",
    "ZipfianGenerator",
]

#: FNV-1a constants for key scrambling.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """64-bit FNV-1a hash of an integer (YCSB's scrambling hash)."""
    data = value.to_bytes(8, "little")
    result = _FNV_OFFSET
    for byte in data:
        result ^= byte
        result = (result * _FNV_PRIME) & 0xFFFF_FFFF_FFFF_FFFF
    return result


class UniformGenerator:
    """Uniform key choice over [0, item_count)."""

    def __init__(self, item_count: int, seed: int = 0) -> None:
        if item_count < 1:
            raise ValueError("item_count must be >= 1")
        self.item_count = item_count
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.item_count)


class ZipfianGenerator:
    """Zipfian key choice with parameter θ (default 0.99, as in YCSB)."""

    def __init__(
        self,
        item_count: int,
        theta: float = 0.99,
        seed: int = 0,
        scrambled: bool = True,
    ) -> None:
        if item_count < 1:
            raise ValueError("item_count must be >= 1")
        if not 0.0 < theta < 1.0:
            raise ValueError(f"theta must be in (0, 1): {theta}")
        self.item_count = item_count
        self.theta = theta
        self.scrambled = scrambled
        self._rng = random.Random(seed)
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        denominator = 1.0 - self._zeta2 / self._zetan
        if denominator == 0.0:  # item_count == 2: zeta(n) == zeta(2)
            self._eta = 0.0
        else:
            self._eta = (
                1.0 - (2.0 / item_count) ** (1.0 - theta)
            ) / denominator

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            rank = 0
        elif uz < 1.0 + 0.5 ** self.theta:
            rank = 1
        else:
            rank = int(
                self.item_count * (self._eta * u - self._eta + 1.0) ** self._alpha
            )
            rank = min(rank, self.item_count - 1)
        if self.scrambled:
            return fnv1a_64(rank) % self.item_count
        return rank


class YcsbOp(enum.Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"


@dataclass
class YcsbConfig:
    """One YCSB workload configuration.

    Section 8 databases: 8 B keys with 64 B or 512 B values, Zipfian
    θ=0.99 (Figure 9) or uniform (Figure 11).
    """

    record_count: int = 100_000
    value_bytes: int = 64
    key_bytes: int = 8
    read_fraction: float = 1.0
    distribution: str = "zipfian"  # "zipfian" | "uniform"
    theta: float = 0.99
    seed: int = 42

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read_fraction out of range: {self.read_fraction}")
        if self.distribution not in ("zipfian", "uniform"):
            raise ValueError(f"unknown distribution: {self.distribution}")

    @property
    def record_bytes(self) -> int:
        return self.key_bytes + self.value_bytes


class YcsbWorkload:
    """A seeded stream of (op, key) pairs."""

    def __init__(self, config: YcsbConfig, worker_seed: int = 0) -> None:
        self.config = config
        seed = config.seed * 1_000_003 + worker_seed
        if config.distribution == "zipfian":
            self._keys = ZipfianGenerator(config.record_count, config.theta, seed)
        else:
            self._keys = UniformGenerator(config.record_count, seed)
        self._op_rng = random.Random(seed ^ 0x5EED)

    def next_op(self) -> tuple[YcsbOp, int]:
        key = self._keys.next()
        if self._op_rng.random() < self.config.read_fraction:
            return (YcsbOp.READ, key)
        return (YcsbOp.UPDATE, key)

    def ops(self, count: int) -> Iterator[tuple[YcsbOp, int]]:
        for _ in range(count):
            yield self.next_op()

    def value_for(self, key: int) -> bytes:
        """Deterministic record payload for verification."""
        seedling = (key * 2654435761) & 0xFFFF_FFFF
        unit = seedling.to_bytes(4, "little")
        reps = -(-self.config.value_bytes // 4)
        return (unit * reps)[: self.config.value_bytes]
