"""Packet capture and protocol tracing.

A :class:`PacketSniffer` taps one or more RNICs (via their rx-hook
chain) and/or switch pipelines, recording every RoCEv2 packet with its
timestamp.  Captures render as human-readable protocol traces — the
tool we used to validate the Cowbird-P4 recycling sequence — can be
filtered by opcode, QP, or time window, and export as JSONL or Chrome
``trace_event`` JSON (each packet an instant on its tap's track).

    sniffer = PacketSniffer(sim)
    sniffer.attach_nic(compute.nic)
    ... run ...
    print(sniffer.render())
    sniffer.to_chrome_trace("packets.json")
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import IO, Optional, Union

from repro.rdma.packets import Opcode, RocePacket
from repro.sim.engine import Simulator
from repro.telemetry.export import write_chrome_trace
from repro.telemetry.spans import SpanEvent

__all__ = ["CapturedPacket", "PacketSniffer"]


@dataclass(frozen=True)
class CapturedPacket:
    """One observation of a packet at a tap point."""

    timestamp_ns: float
    tap: str
    src: str
    dst: str
    opcode: Opcode
    dest_qp: int
    psn: int
    payload_bytes: int
    size_bytes: int

    def describe(self) -> str:
        return (
            f"{self.timestamp_ns / 1000:10.3f}us  {self.tap:<10s} "
            f"{self.src:>10s} -> {self.dst:<10s} {self.opcode.name:<28s} "
            f"qp={self.dest_qp:<5d} psn={self.psn:<8d} "
            f"payload={self.payload_bytes}B"
        )


class PacketSniffer:
    """Records RoCEv2 packets from NIC and switch tap points."""

    def __init__(self, sim: Simulator, max_packets: int = 100_000) -> None:
        self.sim = sim
        self.max_packets = max_packets
        self.packets: list[CapturedPacket] = []
        self.dropped_over_capacity = 0

    # ------------------------------------------------------------------
    # Tap points
    # ------------------------------------------------------------------
    def attach_nic(self, nic, tap_name: Optional[str] = None) -> None:
        """Record every packet delivered to ``nic``.

        Registers via :meth:`~repro.rdma.nic.RNIC.add_rx_hook`, so the
        tap *chains* with hooks installed before or after it — a later
        ``nic.rx_hook = ...`` assignment can no longer silently replace
        the sniffer.
        """
        name = tap_name or f"rx@{nic.node}"
        nic.add_rx_hook(lambda packet: self._record(name, packet))

    def attach_switch(self, switch, tap_name: str = "switch") -> None:
        """Record every packet traversing ``switch`` (wraps its pipeline)."""
        previous = switch.pipeline

        def pipeline(packet, link):
            if isinstance(packet, RocePacket):
                self._record(tap_name, packet)
            if previous is not None:
                return previous(packet, link)
            return [packet]

        switch.pipeline = pipeline

    def _record(self, tap: str, packet: RocePacket) -> None:
        if len(self.packets) >= self.max_packets:
            self.dropped_over_capacity += 1
            return
        self.packets.append(
            CapturedPacket(
                timestamp_ns=self.sim.now,
                tap=tap,
                src=packet.src,
                dst=packet.dst,
                opcode=packet.opcode,
                dest_qp=packet.bth.dest_qp,
                psn=packet.bth.psn,
                payload_bytes=len(packet.payload),
                size_bytes=packet.size_bytes,
            )
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(
        self,
        opcode: Optional[Opcode] = None,
        dest_qp: Optional[int] = None,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        since_ns: float = 0.0,
        until_ns: Optional[float] = None,
    ) -> list[CapturedPacket]:
        """Select captured packets by header fields and time window."""
        out = []
        for packet in self.packets:
            if opcode is not None and packet.opcode is not opcode:
                continue
            if dest_qp is not None and packet.dest_qp != dest_qp:
                continue
            if src is not None and packet.src != src:
                continue
            if dst is not None and packet.dst != dst:
                continue
            if packet.timestamp_ns < since_ns:
                continue
            if until_ns is not None and packet.timestamp_ns > until_ns:
                continue
            out.append(packet)
        return out

    def opcode_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for packet in self.packets:
            counts[packet.opcode.name] = counts.get(packet.opcode.name, 0) + 1
        return counts

    def bytes_by_direction(self) -> dict[tuple[str, str], int]:
        totals: dict[tuple[str, str], int] = {}
        for packet in self.packets:
            key = (packet.src, packet.dst)
            totals[key] = totals.get(key, 0) + packet.size_bytes
        return totals

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable trace (optionally the first ``limit`` lines)."""
        selected = self.packets[:limit] if limit else self.packets
        lines = [packet.describe() for packet in selected]
        if limit and len(self.packets) > limit:
            lines.append(f"... {len(self.packets) - limit} more packets")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write one JSON object per captured packet; returns the count."""
        def _write(handle: IO[str]) -> int:
            for packet in self.packets:
                record = asdict(packet)
                record["opcode"] = packet.opcode.name
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
            return len(self.packets)

        if isinstance(destination, str):
            with open(destination, "w") as handle:
                return _write(handle)
        return _write(destination)

    def to_chrome_trace(self, destination: Union[str, IO[str]]) -> int:
        """Write a Chrome ``trace_event`` JSON of the capture.

        Each packet becomes an instant event on ``<tap>`` process /
        ``<src>-><dst>`` track, so Perfetto shows per-tap packet
        timelines; returns the number of events written.
        """
        events = [
            SpanEvent(
                name=packet.opcode.name,
                begin_ns=packet.timestamp_ns,
                end_ns=packet.timestamp_ns,
                process=packet.tap,
                track=f"{packet.src}->{packet.dst}",
                attrs={
                    "dest_qp": packet.dest_qp,
                    "psn": packet.psn,
                    "payload_bytes": packet.payload_bytes,
                    "size_bytes": packet.size_bytes,
                },
            )
            for packet in self.packets
        ]
        write_chrome_trace(destination, events)
        return len(events)

    def __len__(self) -> int:
        return len(self.packets)
