"""Packet capture and protocol tracing.

A :class:`PacketSniffer` taps one or more RNICs (via their ``rx_hook``)
and/or switch pipelines, recording every RoCEv2 packet with its
timestamp.  Captures render as human-readable protocol traces — the
tool we used to validate the Cowbird-P4 recycling sequence — and can be
filtered by opcode, QP, or time window.

    sniffer = PacketSniffer(sim)
    sniffer.attach_nic(compute.nic)
    ... run ...
    print(sniffer.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.rdma.packets import Opcode, RocePacket
from repro.sim.engine import Simulator

__all__ = ["CapturedPacket", "PacketSniffer"]


@dataclass(frozen=True)
class CapturedPacket:
    """One observation of a packet at a tap point."""

    timestamp_ns: float
    tap: str
    src: str
    dst: str
    opcode: Opcode
    dest_qp: int
    psn: int
    payload_bytes: int
    size_bytes: int

    def describe(self) -> str:
        return (
            f"{self.timestamp_ns / 1000:10.3f}us  {self.tap:<10s} "
            f"{self.src:>10s} -> {self.dst:<10s} {self.opcode.name:<28s} "
            f"qp={self.dest_qp:<5d} psn={self.psn:<8d} "
            f"payload={self.payload_bytes}B"
        )


class PacketSniffer:
    """Records RoCEv2 packets from NIC and switch tap points."""

    def __init__(self, sim: Simulator, max_packets: int = 100_000) -> None:
        self.sim = sim
        self.max_packets = max_packets
        self.packets: list[CapturedPacket] = []
        self.dropped_over_capacity = 0

    # ------------------------------------------------------------------
    # Tap points
    # ------------------------------------------------------------------
    def attach_nic(self, nic, tap_name: Optional[str] = None) -> None:
        """Record every packet delivered to ``nic`` (chains rx hooks)."""
        name = tap_name or f"rx@{nic.node}"
        previous = nic.rx_hook

        def hook(packet: RocePacket) -> None:
            self._record(name, packet)
            if previous is not None:
                previous(packet)

        nic.rx_hook = hook

    def attach_switch(self, switch, tap_name: str = "switch") -> None:
        """Record every packet traversing ``switch`` (wraps its pipeline)."""
        previous = switch.pipeline

        def pipeline(packet, link):
            if isinstance(packet, RocePacket):
                self._record(tap_name, packet)
            if previous is not None:
                return previous(packet, link)
            return [packet]

        switch.pipeline = pipeline

    def _record(self, tap: str, packet: RocePacket) -> None:
        if len(self.packets) >= self.max_packets:
            self.dropped_over_capacity += 1
            return
        self.packets.append(
            CapturedPacket(
                timestamp_ns=self.sim.now,
                tap=tap,
                src=packet.src,
                dst=packet.dst,
                opcode=packet.opcode,
                dest_qp=packet.bth.dest_qp,
                psn=packet.bth.psn,
                payload_bytes=len(packet.payload),
                size_bytes=packet.size_bytes,
            )
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(
        self,
        opcode: Optional[Opcode] = None,
        dest_qp: Optional[int] = None,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        since_ns: float = 0.0,
        until_ns: Optional[float] = None,
    ) -> list[CapturedPacket]:
        """Select captured packets by header fields and time window."""
        out = []
        for packet in self.packets:
            if opcode is not None and packet.opcode is not opcode:
                continue
            if dest_qp is not None and packet.dest_qp != dest_qp:
                continue
            if src is not None and packet.src != src:
                continue
            if dst is not None and packet.dst != dst:
                continue
            if packet.timestamp_ns < since_ns:
                continue
            if until_ns is not None and packet.timestamp_ns > until_ns:
                continue
            out.append(packet)
        return out

    def opcode_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for packet in self.packets:
            counts[packet.opcode.name] = counts.get(packet.opcode.name, 0) + 1
        return counts

    def bytes_by_direction(self) -> dict[tuple[str, str], int]:
        totals: dict[tuple[str, str], int] = {}
        for packet in self.packets:
            key = (packet.src, packet.dst)
            totals[key] = totals.get(key, 0) + packet.size_bytes
        return totals

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable trace (optionally the first ``limit`` lines)."""
        selected = self.packets[:limit] if limit else self.packets
        lines = [packet.describe() for packet in selected]
        if limit and len(self.packets) > limit:
            lines.append(f"... {len(self.packets) - limit} more packets")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.packets)
