"""Queue pairs, work requests, and completion queues.

A reliable-connection (RC) queue pair carries the requester state the
RNIC model needs: the next PSN to stamp on outgoing packets, the
expected PSN on the responder side, and the window of outstanding work
requests awaiting acknowledgment (the Go-Back-N retransmit window).
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.rdma.packets import PSN_MODULUS, psn_add, psn_distance

__all__ = [
    "Completion",
    "CompletionQueue",
    "CompletionStatus",
    "QueuePair",
    "WorkRequest",
    "WorkType",
]


class WorkType(enum.Enum):
    """Operation kinds supported by the verbs layer."""

    READ = "read"
    WRITE = "write"
    SEND = "send"
    RECV = "recv"


class CompletionStatus(enum.Enum):
    SUCCESS = "success"
    RETRY_EXCEEDED = "retry_exceeded"
    REMOTE_ACCESS_ERROR = "remote_access_error"
    FLUSHED = "flushed"


_wr_ids = itertools.count(1)


@dataclass(slots=True)
class WorkRequest:
    """One posted operation (the WQE the doorbell announces).

    Addresses are absolute virtual addresses; ``local_addr`` names
    requester-side memory (the DMA target for reads, source for
    writes), ``remote_addr``/``rkey`` name responder-side memory.
    """

    work_type: WorkType
    local_addr: int
    remote_addr: int
    rkey: int
    length: int
    wr_id: int = field(default_factory=lambda: next(_wr_ids))
    signaled: bool = True
    #: Inline payload for SEND operations (bypasses local memory read).
    inline_payload: bytes = b""
    #: Network priority override (None -> the NIC's configured class).
    priority: Optional[int] = None

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"negative length: {self.length}")


@dataclass(slots=True)
class Completion:
    """A completion-queue entry (CQE)."""

    wr_id: int
    status: CompletionStatus
    work_type: WorkType
    byte_len: int
    qp_num: int
    completed_at: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is CompletionStatus.SUCCESS


class CompletionQueue:
    """A FIFO of completions shared by one or more queue pairs."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: deque[Completion] = deque()
        self.overflows = 0
        self._waiters: list = []

    def push(self, completion: Completion) -> None:
        if len(self._entries) >= self.capacity:
            # Real HCAs raise a fatal async event on CQ overrun; we count
            # and drop, and tests assert the counter stays zero.
            self.overflows += 1
            return
        self._entries.append(completion)
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.resolve(None)

    def notify_next_push(self, future) -> None:
        """Resolve ``future`` when the next completion arrives.

        If entries are already queued the future resolves immediately —
        this is the hook the verbs layer uses to model busy-polling
        without simulating every empty poll iteration.
        """
        if self._entries:
            future.resolve(None)
        else:
            self._waiters.append(future)

    def poll(self, max_entries: int = 16) -> list[Completion]:
        """Pop up to ``max_entries`` completions (may return [])."""
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        out: list[Completion] = []
        while self._entries and len(out) < max_entries:
            out.append(self._entries.popleft())
        return out

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(slots=True)
class _Outstanding:
    """Requester-side tracking of one in-flight work request."""

    wr: WorkRequest
    first_psn: int
    num_packets: int
    #: For READs: payload bytes DMA'd so far (completion when == length).
    bytes_received: int = 0
    issued_at: float = 0.0
    retries: int = 0

    @property
    def last_psn(self) -> int:
        return psn_add(self.first_psn, self.num_packets - 1)


class QueuePair:
    """A reliable-connection queue pair endpoint.

    Created by :meth:`repro.rdma.nic.RNIC.create_qp` and connected to a
    remote QP during setup (Phase I).  The QP holds both requester state
    (``send_psn``, outstanding window) and responder state
    (``expected_psn``, ``msn``).
    """

    MAX_OUTSTANDING = 1024

    def __init__(self, qpn: int, nic, cq: CompletionQueue) -> None:
        self.qpn = qpn
        self.nic = nic
        self.cq = cq
        self.remote_node: Optional[str] = None
        self.remote_qpn: Optional[int] = None
        # Requester state.
        self.send_psn = 0
        self.outstanding: deque[_Outstanding] = deque()
        # Responder state.
        self.expected_psn = 0
        self.msn = 0
        # Stats.
        self.packets_sent = 0
        self.packets_received = 0
        self.retransmissions = 0
        self.naks_received = 0
        # Telemetry mirrors of the recovery stats, registered under the
        # QP's stable name so retransmit storms show up per-connection.
        tel = nic.sim.telemetry
        self._tel_retransmits = tel.counter(f"qp.{qpn}.retransmits")
        self._tel_naks = tel.counter(f"qp.{qpn}.naks_received")
        self._tel_outstanding = tel.gauge(f"qp.{qpn}.outstanding")

    @property
    def connected(self) -> bool:
        return self.remote_node is not None and self.remote_qpn is not None

    def connect(self, remote_node: str, remote_qpn: int, initial_psn: int = 0) -> None:
        """Phase I: bind this QP to its remote peer."""
        if self.connected:
            raise RuntimeError(f"QP {self.qpn} already connected")
        self.remote_node = remote_node
        self.remote_qpn = remote_qpn
        self.send_psn = initial_psn
        self.expected_psn = initial_psn

    # ------------------------------------------------------------------
    # Requester-side PSN window management
    # ------------------------------------------------------------------
    def reserve_psns(self, count: int) -> int:
        """Allocate ``count`` consecutive PSNs; return the first."""
        if count < 1:
            raise ValueError("must reserve at least one PSN")
        first = self.send_psn
        self.send_psn = psn_add(self.send_psn, count)
        return first

    def track(self, entry: _Outstanding) -> None:
        if len(self.outstanding) >= self.MAX_OUTSTANDING:
            raise RuntimeError(f"QP {self.qpn} outstanding window full")
        self.outstanding.append(entry)
        self._tel_outstanding.set(len(self.outstanding))

    def note_retransmission(self) -> None:
        """Count one Go-Back-N episode (plain stat + telemetry mirror)."""
        self.retransmissions += 1
        self._tel_retransmits.inc()

    def note_nak(self) -> None:
        """Count one received NAK (plain stat + telemetry mirror)."""
        self.naks_received += 1
        self._tel_naks.inc()

    def oldest_outstanding(self) -> Optional[_Outstanding]:
        return self.outstanding[0] if self.outstanding else None

    def find_outstanding_by_psn(self, psn: int) -> Optional[_Outstanding]:
        """Locate the in-flight WR whose PSN range covers ``psn``."""
        for entry in self.outstanding:
            if psn_distance(entry.first_psn, psn) < entry.num_packets:
                return entry
        return None

    def complete_through(self, psn: int, now: float) -> list[_Outstanding]:
        """Retire outstanding WRs fully acknowledged by ``psn`` (inclusive).

        Used on ACK receipt: an ACK for PSN p acknowledges everything at
        or before p (cumulative acknowledgment semantics) — **except**
        READs whose response data has not arrived.  An ACK proves the
        responder processed the read, but if the response packets were
        lost in flight the requester still has no data; real HCAs keep
        the read outstanding and retry it (here: the Go-Back-N timeout
        re-issues it).  Retiring it on the ACK would complete the WR
        with a garbage buffer.
        """
        retired: list[_Outstanding] = []
        while self.outstanding:
            head = self.outstanding[0]
            if psn_distance(head.last_psn, psn) >= PSN_MODULUS // 2:
                break  # head.last_psn > psn in serial arithmetic
            if (
                head.wr.work_type is WorkType.READ
                and head.bytes_received < head.wr.length
            ):
                break  # data not here yet: the timeout path must retry
            self.outstanding.popleft()
            retired.append(head)
        return retired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueuePair(qpn={self.qpn}, remote={self.remote_node}:"
            f"{self.remote_qpn}, psn={self.send_psn})"
        )
