"""Host-level verbs: the CPU-charging wrapper around the RNIC.

This layer is where the paper's Figure 2 lives.  Every ``post_send`` a
compute-node thread issues costs lock + doorbell + WQE time on *that
thread's core*; every ``poll_cq`` costs lock + CQE time — even when the
data is already sitting in the completion queue.  Synchronous verbs
additionally busy-poll, burning the core for the whole network round
trip.  Cowbird's entire contribution is making these charges disappear
from the compute node.

All methods are generators meant to be driven with ``yield from`` inside
a simulated thread's process.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.rdma.nic import RNIC
from repro.rdma.qp import (
    Completion,
    CompletionQueue,
    CompletionStatus,
    QueuePair,
    WorkRequest,
    WorkType,
)
from repro.sim.cpu import CostModel, TAG_COMM, Thread

__all__ = ["RdmaVerbs", "RdmaError"]


class RdmaError(RuntimeError):
    """A verb-level failure (retry exhaustion, remote access error)."""


class RdmaVerbs:
    """Verbs bound to one NIC and one cost model."""

    def __init__(self, nic: RNIC, cost: Optional[CostModel] = None) -> None:
        self.nic = nic
        self.cost = cost or CostModel()
        self._tel = nic.sim.telemetry

    # ------------------------------------------------------------------
    # Primitive verbs
    # ------------------------------------------------------------------
    def post_send(
        self, thread: Thread, qp: QueuePair, wr: WorkRequest
    ) -> Generator[Any, Any, None]:
        """``ibv_post_send``: charge the Figure 2 post breakdown, ring."""
        yield from thread.compute(self.cost.rdma_post_lock, tag=TAG_COMM)
        yield from thread.compute(self.cost.rdma_post_wqe, tag=TAG_COMM)
        yield from thread.compute(self.cost.rdma_post_doorbell, tag=TAG_COMM)
        self.nic.post(qp, wr)

    def post_recv(
        self, thread: Thread, qp: QueuePair, wr: WorkRequest
    ) -> Generator[Any, Any, None]:
        """``ibv_post_recv``: same queue-manipulation cost as a post."""
        yield from thread.compute(self.cost.rdma_post_lock, tag=TAG_COMM)
        yield from thread.compute(self.cost.rdma_post_wqe, tag=TAG_COMM)
        self.nic.post(qp, wr)

    def poll_cq(
        self, thread: Thread, cq: CompletionQueue, max_entries: int = 16
    ) -> Generator[Any, Any, list[Completion]]:
        """``ibv_poll_cq``: charge lock + CQE (or the cheaper empty poll)."""
        yield from thread.compute(self.cost.rdma_poll_lock, tag=TAG_COMM)
        entries = cq.poll(max_entries)
        if entries:
            yield from thread.compute(
                self.cost.rdma_poll_cqe * len(entries), tag=TAG_COMM
            )
        else:
            yield from thread.compute(
                max(0.0, self.cost.rdma_poll_empty - self.cost.rdma_poll_lock),
                tag=TAG_COMM,
            )
        return entries

    def spin_poll(
        self, thread: Thread, cq: CompletionQueue, count: int = 1
    ) -> Generator[Any, Any, list[Completion]]:
        """Busy-poll ``cq`` until ``count`` completions have been reaped.

        The spin occupies the thread's core and is charged as
        communication time, exactly like a tight ``while
        (!ibv_poll_cq(...))`` loop.
        """
        reaped: list[Completion] = []
        while len(reaped) < count:
            waiter = self.nic.sim.future()
            cq.notify_next_push(waiter)
            yield from thread.spin_wait(waiter, tag=TAG_COMM)
            entries = yield from self.poll_cq(thread, cq, max_entries=count - len(reaped))
            reaped.extend(entries)
        return reaped

    # ------------------------------------------------------------------
    # Composite operations (the baselines' building blocks)
    # ------------------------------------------------------------------
    def read_sync(
        self,
        thread: Thread,
        qp: QueuePair,
        local_addr: int,
        remote_addr: int,
        rkey: int,
        length: int,
    ) -> Generator[Any, Any, Completion]:
        """Synchronous one-sided READ: post, then busy-poll to completion."""
        wr = WorkRequest(
            work_type=WorkType.READ,
            local_addr=local_addr,
            remote_addr=remote_addr,
            rkey=rkey,
            length=length,
        )
        with self._tel.span(
            "verbs.read_sync", process=self.nic.node, track=thread.name,
            qp=qp.qpn, bytes=length,
        ):
            yield from self.post_send(thread, qp, wr)
            completions = yield from self.spin_poll(thread, qp.cq, count=1)
        completion = completions[-1]
        self._check(completion)
        return completion

    def write_sync(
        self,
        thread: Thread,
        qp: QueuePair,
        local_addr: int,
        remote_addr: int,
        rkey: int,
        length: int,
    ) -> Generator[Any, Any, Completion]:
        """Synchronous one-sided WRITE: post, then busy-poll to completion."""
        wr = WorkRequest(
            work_type=WorkType.WRITE,
            local_addr=local_addr,
            remote_addr=remote_addr,
            rkey=rkey,
            length=length,
        )
        with self._tel.span(
            "verbs.write_sync", process=self.nic.node, track=thread.name,
            qp=qp.qpn, bytes=length,
        ):
            yield from self.post_send(thread, qp, wr)
            completions = yield from self.spin_poll(thread, qp.cq, count=1)
        completion = completions[-1]
        self._check(completion)
        return completion

    def read_async(
        self,
        thread: Thread,
        qp: QueuePair,
        local_addr: int,
        remote_addr: int,
        rkey: int,
        length: int,
    ) -> Generator[Any, Any, int]:
        """Asynchronous READ: post only; the caller polls later.

        Returns the work-request id to match against completions.
        """
        wr = WorkRequest(
            work_type=WorkType.READ,
            local_addr=local_addr,
            remote_addr=remote_addr,
            rkey=rkey,
            length=length,
        )
        yield from self.post_send(thread, qp, wr)
        return wr.wr_id

    def write_async(
        self,
        thread: Thread,
        qp: QueuePair,
        local_addr: int,
        remote_addr: int,
        rkey: int,
        length: int,
    ) -> Generator[Any, Any, int]:
        """Asynchronous WRITE: post only; the caller polls later."""
        wr = WorkRequest(
            work_type=WorkType.WRITE,
            local_addr=local_addr,
            remote_addr=remote_addr,
            rkey=rkey,
            length=length,
        )
        yield from self.post_send(thread, qp, wr)
        return wr.wr_id

    @staticmethod
    def _check(completion: Completion) -> None:
        if completion.status is not CompletionStatus.SUCCESS:
            raise RdmaError(
                f"work request {completion.wr_id} failed: {completion.status.value}"
            )
