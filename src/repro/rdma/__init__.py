"""RDMA substrate: RoCEv2 wire format, queue pairs, verbs, and the RNIC.

This package implements the layer the paper builds on (and that
Cowbird-P4 spoofs): RDMA over Converged Ethernet v2.  Packets are real
byte sequences (Ethernet/IPv4/UDP/BTH/RETH/AETH, Section 5.1 Table 4),
queue pairs carry 24-bit PSN state with Go-Back-N recovery, and the
:class:`~repro.rdma.nic.RNIC` services one-sided READ/WRITE operations
against registered memory with MTU segmentation — including the
Read-Response First/Middle/Last sequence Cowbird-P4 converts into Write
First/Middle/Last packets.
"""

from repro.rdma.packets import (
    AddressBook,
    Aeth,
    Bth,
    Opcode,
    Reth,
    RocePacket,
    SYNDROME_ACK,
    SYNDROME_NAK_PSN_ERROR,
    psn_add,
    psn_distance,
)
from repro.rdma.qp import (
    Completion,
    CompletionQueue,
    CompletionStatus,
    QueuePair,
    WorkRequest,
    WorkType,
)
from repro.rdma.nic import RNIC, NicConfig
from repro.rdma.verbs import RdmaVerbs

__all__ = [
    "AddressBook",
    "Aeth",
    "Bth",
    "Completion",
    "CompletionQueue",
    "CompletionStatus",
    "NicConfig",
    "Opcode",
    "QueuePair",
    "RNIC",
    "RdmaVerbs",
    "Reth",
    "RocePacket",
    "SYNDROME_ACK",
    "SYNDROME_NAK_PSN_ERROR",
    "WorkRequest",
    "WorkType",
    "psn_add",
    "psn_distance",
]
