"""The RNIC model: DMA, segmentation, reliability, and pacing.

An :class:`RNIC` terminates a host's link and implements both halves of
the reliable-connection protocol:

* **Requester**: turns posted work requests into RoCEv2 packets —
  one READ request per read (responses consume one PSN per MTU
  segment), a First/Middle/Last WRITE train per write — and retires
  them into completion queues when responses/ACKs arrive.
* **Responder**: services incoming one-sided operations against the
  host's registered memory *without any host CPU involvement* (this is
  why the memory pool needs no compute, and why the Cowbird compute
  node can have its request queues read remotely for free).
* **Reliability**: 24-bit PSN validation, cumulative ACKs, NAK on
  sequence gaps, and Go-Back-N retransmission on NAK or timeout
  (Section 5.3's recovery story ends up exercising exactly this
  machinery).
* **Pacing**: a per-message initiation gap models the NIC's finite
  message rate — the "request-level bottleneck" that motivates
  batching in Redy and in Cowbird's offload engine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.memory.region import AccessError, BoundsError, RegionRegistry
from repro.rdma.packets import (
    Aeth,
    Bth,
    Opcode,
    Reth,
    RocePacket,
    SYNDROME_ACK,
    SYNDROME_NAK_PSN_ERROR,
    psn_add,
    psn_distance,
    PSN_MODULUS,
)
from repro.rdma.qp import (
    Completion,
    CompletionQueue,
    CompletionStatus,
    QueuePair,
    WorkRequest,
    WorkType,
    _Outstanding,
)
from repro.sim.engine import Simulator
from repro.sim.network import Link, PRIORITY_NORMAL

__all__ = ["NicConfig", "RNIC"]


@dataclass
class NicConfig:
    """RNIC performance parameters (ConnectX-5 class defaults)."""

    #: Maximum message initiation rate, millions of messages per second
    #: (a ConnectX-5 sustains ~200 M small messages/s across QPs).
    message_rate_mops: float = 200.0
    #: Fixed packet-processing latency on receive.
    processing_delay_ns: float = 250.0
    #: Path MTU; RDMA segments payloads above this (Section 5.2: 1024).
    mtu_bytes: int = 1024
    #: Go-Back-N retransmission timeout.
    retransmit_timeout_ns: float = 100_000.0
    #: Retry budget before a WR completes with RETRY_EXCEEDED.
    max_retries: int = 7
    #: Network priority stamped on generated packets.
    priority: int = PRIORITY_NORMAL

    @property
    def message_gap_ns(self) -> float:
        if self.message_rate_mops <= 0:
            return 0.0
        return 1_000.0 / self.message_rate_mops


@dataclass
class NicStats:
    packets_out: int = 0
    packets_in: int = 0
    bytes_out: int = 0
    bytes_in: int = 0
    messages_initiated: int = 0
    retransmit_timeouts: int = 0
    naks_sent: int = 0
    duplicates: int = 0


@dataclass
class _WriteContext:
    """Responder-side cursor for an in-progress multi-packet write."""

    rkey: int
    next_addr: int


class RNIC:
    """One host's RDMA NIC, attached to the host's region registry."""

    def __init__(
        self,
        sim: Simulator,
        node: str,
        registry: RegionRegistry,
        config: Optional[NicConfig] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.registry = registry
        self.config = config or NicConfig()
        self.link: Optional[Link] = None
        self.stats = NicStats()
        self._qps: dict[int, QueuePair] = {}
        self._next_qpn = 100
        self._next_send_slot = 0.0
        self._recv_queues: dict[int, deque[WorkRequest]] = {}
        self._write_contexts: dict[int, _WriteContext] = {}
        self._timer_armed: set[int] = set()
        #: Per-QP timeout callbacks, created once so re-arming a timer
        #: allocates nothing.
        self._timer_callbacks: dict[int, Callable[[], None]] = {}
        # Pending FIFOs for the two per-packet scheduling points.  Both
        # delays are constant per NIC (processing delay) or monotonic
        # (send slots), so a deque paired with one cached callback
        # replaces a fresh closure per packet without reordering.
        self._rx_pending: deque[RocePacket] = deque()
        self._initiate_pending: deque[tuple[QueuePair, WorkRequest]] = deque()
        self._dispatch_next_callback = self._dispatch_next
        self._initiate_next_callback = self._initiate_next
        #: Taps invoked on every delivered (non-dropped) packet, in
        #: attach order.  Use :meth:`add_rx_hook` to chain; the
        #: ``rx_hook`` property remains for legacy single-tap callers.
        self._rx_hooks: list[Callable[[RocePacket], None]] = []
        tel = sim.telemetry
        self._tel = tel
        self._tel_posts = tel.counter(f"nic.{node}.posts")
        self._tel_doorbells = tel.counter(f"nic.{node}.doorbells")
        self._tel_tx_packets = tel.counter(f"nic.{node}.tx_packets")
        self._tel_tx_bytes = tel.counter(f"nic.{node}.tx_bytes")
        self._tel_rx_packets = tel.counter(f"nic.{node}.rx_packets")
        self._tel_rx_bytes = tel.counter(f"nic.{node}.rx_bytes")
        self._tel_naks = tel.counter(f"nic.{node}.naks_sent")
        self._tel_timeouts = tel.counter(f"nic.{node}.retransmit_timeouts")
        self._tel_duplicates = tel.counter(f"nic.{node}.duplicates")

    # ------------------------------------------------------------------
    # Receive taps
    # ------------------------------------------------------------------
    @property
    def rx_hook(self) -> Optional[Callable[[RocePacket], None]]:
        """The most recently attached tap (legacy accessor)."""
        return self._rx_hooks[-1] if self._rx_hooks else None

    @rx_hook.setter
    def rx_hook(self, hook: Optional[Callable[[RocePacket], None]]) -> None:
        # Legacy assignment replaces all taps; prefer add_rx_hook.
        self._rx_hooks = [hook] if hook is not None else []

    def add_rx_hook(self, hook: Callable[[RocePacket], None]) -> None:
        """Chain ``hook`` after any existing taps (never overwrites)."""
        self._rx_hooks.append(hook)

    # ------------------------------------------------------------------
    # Setup (Phase I)
    # ------------------------------------------------------------------
    def attach_link(self, link: Link) -> None:
        self.link = link

    def create_qp(self, cq: Optional[CompletionQueue] = None) -> QueuePair:
        qpn = self._next_qpn
        self._next_qpn += 1
        # Note: an empty CompletionQueue is falsy (it has __len__), so an
        # explicit None check is required here.
        qp = QueuePair(qpn, self, cq if cq is not None else CompletionQueue())
        self._qps[qpn] = qp
        self._recv_queues[qpn] = deque()
        return qp

    def qp(self, qpn: int) -> QueuePair:
        return self._qps[qpn]

    # ------------------------------------------------------------------
    # Requester: posting work
    # ------------------------------------------------------------------
    def post(self, qp: QueuePair, wr: WorkRequest) -> None:
        """Ring the doorbell: initiate ``wr`` on ``qp``.

        CPU cost of the post is charged by the verbs layer; here the NIC
        schedules the work respecting its message-rate limit.
        """
        if not qp.connected:
            raise RuntimeError(f"QP {qp.qpn} not connected")
        self._tel_posts.inc()
        if wr.work_type is WorkType.RECV:
            self._recv_queues[qp.qpn].append(wr)
            return
        self._tel_doorbells.inc()
        delay = self._reserve_send_slot()
        self._initiate_pending.append((qp, wr))
        self.sim.call_after(delay, self._initiate_next_callback)

    def _reserve_send_slot(self) -> float:
        """Serialize message initiations at the NIC's message rate."""
        now = self.sim.now
        slot = max(now, self._next_send_slot)
        self._next_send_slot = slot + self.config.message_gap_ns
        return slot - now

    def _initiate_next(self) -> None:
        qp, wr = self._initiate_pending.popleft()
        self._initiate(qp, wr)

    def _initiate(self, qp: QueuePair, wr: WorkRequest) -> None:
        self.stats.messages_initiated += 1
        if wr.work_type is WorkType.READ:
            self._initiate_read(qp, wr)
        elif wr.work_type is WorkType.WRITE:
            self._initiate_write(qp, wr)
        elif wr.work_type is WorkType.SEND:
            self._initiate_send(qp, wr)
        else:  # pragma: no cover - RECV handled in post()
            raise RuntimeError(f"cannot initiate {wr.work_type}")
        self._arm_timer(qp)

    def _segments(self, length: int) -> int:
        mtu = self.config.mtu_bytes
        return max(1, (length + mtu - 1) // mtu)

    def _initiate_read(self, qp: QueuePair, wr: WorkRequest) -> None:
        num_packets = self._segments(wr.length)
        first_psn = qp.reserve_psns(num_packets)
        entry = _Outstanding(
            wr=wr, first_psn=first_psn, num_packets=num_packets,
            issued_at=self.sim.now,
        )
        qp.track(entry)
        self._emit_read_request(qp, entry)

    def _emit_read_request(self, qp: QueuePair, entry: _Outstanding) -> None:
        packet = RocePacket(
            src=self.node,
            dst=qp.remote_node,
            bth=Bth(
                opcode=Opcode.RC_RDMA_READ_REQUEST,
                dest_qp=qp.remote_qpn,
                psn=entry.first_psn,
                ack_request=True,
            ),
            reth=Reth(
                virtual_address=entry.wr.remote_addr,
                remote_key=entry.wr.rkey,
                dma_length=entry.wr.length,
            ),
            priority=entry.wr.priority
            if entry.wr.priority is not None
            else self.config.priority,
        )
        self._transmit(packet, qp)

    def _initiate_write(self, qp: QueuePair, wr: WorkRequest) -> None:
        num_packets = self._segments(wr.length)
        first_psn = qp.reserve_psns(num_packets)
        entry = _Outstanding(
            wr=wr, first_psn=first_psn, num_packets=num_packets,
            issued_at=self.sim.now,
        )
        qp.track(entry)
        self._emit_write_train(qp, entry)

    def _emit_write_train(self, qp: QueuePair, entry: _Outstanding) -> None:
        wr = entry.wr
        payload = self._dma_read_local(wr.local_addr, wr.length)
        mtu = self.config.mtu_bytes
        n = entry.num_packets
        for i in range(n):
            chunk = payload[i * mtu : (i + 1) * mtu]
            if n == 1:
                opcode = Opcode.RC_RDMA_WRITE_ONLY
            elif i == 0:
                opcode = Opcode.RC_RDMA_WRITE_FIRST
            elif i == n - 1:
                opcode = Opcode.RC_RDMA_WRITE_LAST
            else:
                opcode = Opcode.RC_RDMA_WRITE_MIDDLE
            is_tail = i == n - 1
            packet = RocePacket(
                src=self.node,
                dst=qp.remote_node,
                bth=Bth(
                    opcode=opcode,
                    dest_qp=qp.remote_qpn,
                    psn=psn_add(entry.first_psn, i),
                    ack_request=is_tail,
                ),
                reth=Reth(
                    virtual_address=wr.remote_addr,
                    remote_key=wr.rkey,
                    dma_length=wr.length,
                )
                if opcode.carries_reth
                else None,
                payload=chunk,
                priority=wr.priority if wr.priority is not None
                else self.config.priority,
            )
            self._transmit(packet, qp)

    def _initiate_send(self, qp: QueuePair, wr: WorkRequest) -> None:
        payload = wr.inline_payload or self._dma_read_local(wr.local_addr, wr.length)
        if len(payload) > self.config.mtu_bytes:
            raise ValueError("SEND payloads above one MTU are not modelled")
        first_psn = qp.reserve_psns(1)
        entry = _Outstanding(
            wr=wr, first_psn=first_psn, num_packets=1, issued_at=self.sim.now
        )
        qp.track(entry)
        packet = RocePacket(
            src=self.node,
            dst=qp.remote_node,
            bth=Bth(
                opcode=Opcode.RC_SEND_ONLY,
                dest_qp=qp.remote_qpn,
                psn=first_psn,
                ack_request=True,
            ),
            payload=payload,
            priority=self.config.priority,
        )
        self._transmit(packet, qp)

    def _dma_read_local(self, addr: int, length: int) -> bytes:
        region = self.registry.by_addr(addr, length)
        return region.read(addr, length)

    def _dma_write_local(self, addr: int, data: bytes) -> None:
        region = self.registry.by_addr(addr, len(data))
        region.write(addr, data)

    def _transmit(self, packet: RocePacket, qp: Optional[QueuePair] = None) -> None:
        if self.link is None:
            raise RuntimeError(f"NIC {self.node!r} has no link attached")
        self.stats.packets_out += 1
        self.stats.bytes_out += packet.size_bytes
        self._tel_tx_packets.inc()
        self._tel_tx_bytes.inc(packet.size_bytes)
        if qp is not None:
            qp.packets_sent += 1
        self.link.send(packet)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, packet, link) -> None:
        """Endpoint entry: delay by processing latency, then dispatch."""
        if not isinstance(packet, RocePacket):
            return  # non-RDMA traffic (e.g. TCP) addressed to this host
        self.stats.packets_in += 1
        self.stats.bytes_in += packet.size_bytes
        self._tel_rx_packets.inc()
        self._tel_rx_bytes.inc(packet.size_bytes)
        self._rx_pending.append(packet)
        self.sim.call_after(
            self.config.processing_delay_ns, self._dispatch_next_callback
        )

    def _dispatch_next(self) -> None:
        self._dispatch(self._rx_pending.popleft())

    def _dispatch(self, packet: RocePacket) -> None:
        try:
            for hook in self._rx_hooks:
                hook(packet)
            qp = self._qps.get(packet.bth.dest_qp)
            if qp is None:
                return  # no such QP: real HCAs silently drop
            qp.packets_received += 1
            opcode = packet.opcode
            if opcode is Opcode.RC_RDMA_READ_REQUEST:
                self._respond_read(qp, packet)
            elif opcode.is_write:
                self._respond_write(qp, packet)
            elif opcode is Opcode.RC_SEND_ONLY:
                self._respond_send(qp, packet)
            elif opcode.is_read_response:
                self._requester_read_response(qp, packet)
            elif opcode is Opcode.RC_ACKNOWLEDGE:
                self._requester_ack(qp, packet)
        finally:
            # The NIC is the terminal consumer of every delivered packet;
            # pool-allocated shells go back to their free-list here.
            packet.release()

    # -- responder side -------------------------------------------------
    def _psn_status(self, qp: QueuePair, psn: int) -> str:
        """Classify ``psn`` against the responder's expected PSN."""
        if psn == qp.expected_psn:
            return "expected"
        if psn_distance(psn, qp.expected_psn) < PSN_MODULUS // 2:
            return "duplicate"
        return "gap"

    def _send_nak(self, qp: QueuePair, request_psn_src: str,
                  priority: Optional[int] = None) -> None:
        self.stats.naks_sent += 1
        self._tel_naks.inc()
        packet = RocePacket(
            src=self.node,
            dst=request_psn_src,
            bth=Bth(
                opcode=Opcode.RC_ACKNOWLEDGE,
                dest_qp=qp.remote_qpn,
                psn=qp.expected_psn,
            ),
            aeth=Aeth(syndrome=SYNDROME_NAK_PSN_ERROR, msn=qp.msn),
            priority=priority if priority is not None else self.config.priority,
        )
        self._transmit(packet, qp)

    def _send_ack(self, qp: QueuePair, psn: int,
                  priority: Optional[int] = None) -> None:
        packet = RocePacket(
            src=self.node,
            dst=qp.remote_node,
            bth=Bth(opcode=Opcode.RC_ACKNOWLEDGE, dest_qp=qp.remote_qpn, psn=psn),
            aeth=Aeth(syndrome=SYNDROME_ACK, msn=qp.msn),
            priority=priority if priority is not None else self.config.priority,
        )
        self._transmit(packet, qp)

    def _respond_read(self, qp: QueuePair, packet: RocePacket) -> None:
        status = self._psn_status(qp, packet.bth.psn)
        if status == "gap":
            self._send_nak(qp, packet.src)
            return
        if status == "duplicate":
            self.stats.duplicates += 1
            self._tel_duplicates.inc()
            # Reads are replayable: re-execute without advancing state.
        reth = packet.reth
        try:
            region = self.registry.by_rkey(reth.remote_key)
            data = region.remote_read(reth.virtual_address, reth.dma_length, reth.remote_key)
        except (AccessError, BoundsError):
            self._send_nak(qp, packet.src)
            return
        mtu = self.config.mtu_bytes
        n = max(1, (len(data) + mtu - 1) // mtu)
        if status == "expected":
            qp.expected_psn = psn_add(packet.bth.psn, n)
            qp.msn = (qp.msn + 1) % PSN_MODULUS
        for i in range(n):
            chunk = data[i * mtu : (i + 1) * mtu]
            if n == 1:
                opcode = Opcode.RC_RDMA_READ_RESPONSE_ONLY
            elif i == 0:
                opcode = Opcode.RC_RDMA_READ_RESPONSE_FIRST
            elif i == n - 1:
                opcode = Opcode.RC_RDMA_READ_RESPONSE_LAST
            else:
                opcode = Opcode.RC_RDMA_READ_RESPONSE_MIDDLE
            response = RocePacket(
                src=self.node,
                dst=packet.src,
                bth=Bth(
                    opcode=opcode,
                    dest_qp=qp.remote_qpn,
                    psn=psn_add(packet.bth.psn, i),
                ),
                aeth=Aeth(syndrome=SYNDROME_ACK, msn=qp.msn)
                if opcode.carries_aeth
                else None,
                payload=chunk,
                # Echo the request's class (DSCP reflection): control
                # reads come back at control priority.
                priority=packet.priority,
            )
            self._transmit(response, qp)

    def _respond_write(self, qp: QueuePair, packet: RocePacket) -> None:
        status = self._psn_status(qp, packet.bth.psn)
        if status == "gap":
            self._send_nak(qp, packet.src)
            return
        if status == "duplicate":
            self.stats.duplicates += 1
            self._tel_duplicates.inc()
        opcode = packet.opcode
        if opcode.carries_reth:
            context = _WriteContext(
                rkey=packet.reth.remote_key,
                next_addr=packet.reth.virtual_address,
            )
            self._write_contexts[qp.qpn] = context
        else:
            context = self._write_contexts.get(qp.qpn)
            if context is None:
                self._send_nak(qp, packet.src)
                return
        try:
            region = self.registry.by_rkey(context.rkey)
            region.remote_write(context.next_addr, packet.payload, context.rkey)
        except (AccessError, BoundsError):
            self._send_nak(qp, packet.src)
            return
        context.next_addr += len(packet.payload)
        is_tail = opcode in (Opcode.RC_RDMA_WRITE_LAST, Opcode.RC_RDMA_WRITE_ONLY)
        if status == "expected":
            qp.expected_psn = psn_add(packet.bth.psn, 1)
            if is_tail:
                qp.msn = (qp.msn + 1) % PSN_MODULUS
        if packet.bth.ack_request:
            # Cumulative: acknowledge everything received so far.
            ack_psn = packet.bth.psn if status == "expected" else psn_add(qp.expected_psn, -1)
            self._send_ack(qp, ack_psn, priority=packet.priority)

    def _respond_send(self, qp: QueuePair, packet: RocePacket) -> None:
        status = self._psn_status(qp, packet.bth.psn)
        if status == "gap":
            self._send_nak(qp, packet.src)
            return
        if status == "expected":
            qp.expected_psn = psn_add(packet.bth.psn, 1)
            qp.msn = (qp.msn + 1) % PSN_MODULUS
            recvq = self._recv_queues[qp.qpn]
            if recvq:
                recv_wr = recvq.popleft()
                length = min(len(packet.payload), recv_wr.length)
                if recv_wr.local_addr:
                    self._dma_write_local(recv_wr.local_addr, packet.payload[:length])
                qp.cq.push(
                    Completion(
                        wr_id=recv_wr.wr_id,
                        status=CompletionStatus.SUCCESS,
                        work_type=WorkType.RECV,
                        byte_len=length,
                        qp_num=qp.qpn,
                        completed_at=self.sim.now,
                    )
                )
            # Receiver-not-ready without a posted recv: real RC would RNR-NAK;
            # we deliver the ACK anyway and count nothing (tests post recvs).
        else:
            self.stats.duplicates += 1
            self._tel_duplicates.inc()
        if packet.bth.ack_request:
            self._send_ack(qp, packet.bth.psn, priority=packet.priority)

    # -- requester side ---------------------------------------------------
    def _requester_read_response(self, qp: QueuePair, packet: RocePacket) -> None:
        entry = qp.find_outstanding_by_psn(packet.bth.psn)
        if entry is None:
            self.stats.duplicates += 1
            self._tel_duplicates.inc()
            return
        offset = psn_distance(entry.first_psn, packet.bth.psn) * self.config.mtu_bytes
        if entry.wr.local_addr:
            self._dma_write_local(entry.wr.local_addr + offset, packet.payload)
        entry.bytes_received += len(packet.payload)
        is_tail = packet.opcode in (
            Opcode.RC_RDMA_READ_RESPONSE_LAST,
            Opcode.RC_RDMA_READ_RESPONSE_ONLY,
        )
        if is_tail and entry.bytes_received >= entry.wr.length:
            # Read responses arrive in order on RC; the tail retires the
            # entry and everything acknowledged before it.
            retired = qp.complete_through(entry.last_psn, self.sim.now)
            for done in retired:
                self._complete(qp, done, CompletionStatus.SUCCESS)

    def _requester_ack(self, qp: QueuePair, packet: RocePacket) -> None:
        aeth = packet.aeth
        if aeth.is_nak:
            qp.note_nak()
            self._go_back_n(qp)
            return
        retired = qp.complete_through(packet.bth.psn, self.sim.now)
        for done in retired:
            self._complete(qp, done, CompletionStatus.SUCCESS)

    def _complete(self, qp: QueuePair, entry: _Outstanding, status: CompletionStatus) -> None:
        if self._tel.enabled:
            self._tel.complete(
                f"rdma.{entry.wr.work_type.value}",
                entry.issued_at, self.sim.now,
                process=self.node, track=f"qp{qp.qpn}",
                wr_id=entry.wr.wr_id, bytes=entry.wr.length,
                status=status.value, retries=entry.retries,
            )
        if not entry.wr.signaled:
            return
        qp.cq.push(
            Completion(
                wr_id=entry.wr.wr_id,
                status=status,
                work_type=entry.wr.work_type,
                byte_len=entry.wr.length,
                qp_num=qp.qpn,
                completed_at=self.sim.now,
            )
        )

    # ------------------------------------------------------------------
    # Go-Back-N recovery
    # ------------------------------------------------------------------
    def _go_back_n(self, qp: QueuePair) -> None:
        """Retransmit every outstanding WR, oldest first (Section 5.3)."""
        qp.note_retransmission()
        if self._tel.enabled:
            self._tel.instant(
                "rdma.go_back_n", process=self.node, track=f"qp{qp.qpn}",
                outstanding=len(qp.outstanding),
            )
        for entry in list(qp.outstanding):
            entry.retries += 1
            if entry.retries > self.config.max_retries:
                qp.outstanding.remove(entry)
                self._complete(qp, entry, CompletionStatus.RETRY_EXCEEDED)
                continue
            entry.issued_at = self.sim.now
            entry.bytes_received = 0
            if entry.wr.work_type is WorkType.READ:
                self._emit_read_request(qp, entry)
            elif entry.wr.work_type is WorkType.WRITE:
                self._emit_write_train(qp, entry)
            elif entry.wr.work_type is WorkType.SEND:
                # Re-emit the SEND packet with its original PSN.
                payload = entry.wr.inline_payload or self._dma_read_local(
                    entry.wr.local_addr, entry.wr.length
                )
                packet = RocePacket(
                    src=self.node,
                    dst=qp.remote_node,
                    bth=Bth(
                        opcode=Opcode.RC_SEND_ONLY,
                        dest_qp=qp.remote_qpn,
                        psn=entry.first_psn,
                        ack_request=True,
                    ),
                    payload=payload,
                    priority=self.config.priority,
                )
                self._transmit(packet, qp)

    def _arm_timer(self, qp: QueuePair) -> None:
        if qp.qpn in self._timer_armed:
            return
        self._timer_armed.add(qp.qpn)
        callback = self._timer_callbacks.get(qp.qpn)
        if callback is None:
            def callback(qp: QueuePair = qp) -> None:
                self._check_timeout(qp)
            self._timer_callbacks[qp.qpn] = callback
        self.sim.call_after(self.config.retransmit_timeout_ns, callback)

    def _check_timeout(self, qp: QueuePair) -> None:
        self._timer_armed.discard(qp.qpn)
        oldest = qp.oldest_outstanding()
        if oldest is None:
            return
        if self.sim.now - oldest.issued_at >= self.config.retransmit_timeout_ns:
            self.stats.retransmit_timeouts += 1
            self._tel_timeouts.inc()
            self._go_back_n(qp)
        self._arm_timer(qp)
