"""RoCEv2 packet formats, packed bit-for-bit.

RDMA over Converged Ethernet v2 carries InfiniBand transport packets in
UDP (destination port 4791) over IPv4 over Ethernet.  The headers the
paper's Table 4 lists — BTH for all packets, RETH on READ/WRITE
requests, AETH on read responses and acknowledgments — are implemented
here with ``struct``-level pack/unpack, because Cowbird-P4's central
mechanism is *recycling*: taking a received packet, stripping one
header, prepending another, and re-emitting it.  Tests assert on the
resulting byte layout.

Like the paper's prototype (footnote 1), we do not compute real ICRCs —
programmable switches cannot — and carry a placeholder trailer instead.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.network import PRIORITY_NORMAL

__all__ = [
    "AddressBook",
    "Aeth",
    "Bth",
    "HEADER_OVERHEAD_BYTES",
    "Opcode",
    "PSN_MODULUS",
    "Reth",
    "RocePacket",
    "ROCE_UDP_PORT",
    "SYNDROME_ACK",
    "SYNDROME_NAK_PSN_ERROR",
    "psn_add",
    "psn_distance",
]

ROCE_UDP_PORT = 4791
ETHERTYPE_IPV4 = 0x0800

ETH_HEADER_BYTES = 14
IPV4_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
BTH_BYTES = 12
RETH_BYTES = 16
AETH_BYTES = 4
ICRC_BYTES = 4

#: Fixed overhead of every RoCEv2 packet (Eth + IPv4 + UDP + BTH + ICRC).
HEADER_OVERHEAD_BYTES = (
    ETH_HEADER_BYTES + IPV4_HEADER_BYTES + UDP_HEADER_BYTES + BTH_BYTES + ICRC_BYTES
)

#: PSNs are 24-bit serial numbers.
PSN_MODULUS = 1 << 24

#: AETH syndrome for a positive acknowledgment (credit field saturated).
SYNDROME_ACK = 0x1F
#: AETH syndrome for a NAK / PSN sequence error (triggers Go-Back-N).
SYNDROME_NAK_PSN_ERROR = 0x60


def psn_add(psn: int, delta: int) -> int:
    """24-bit wrapping PSN addition."""
    return (psn + delta) % PSN_MODULUS


def psn_distance(start: int, end: int) -> int:
    """Forward distance from ``start`` to ``end`` in PSN space."""
    return (end - start) % PSN_MODULUS


class Opcode(enum.IntEnum):
    """InfiniBand RC transport opcodes used by the reproduction."""

    RC_SEND_ONLY = 0x04
    RC_RDMA_WRITE_FIRST = 0x06
    RC_RDMA_WRITE_MIDDLE = 0x07
    RC_RDMA_WRITE_LAST = 0x08
    RC_RDMA_WRITE_ONLY = 0x0A
    RC_RDMA_READ_REQUEST = 0x0C
    RC_RDMA_READ_RESPONSE_FIRST = 0x0D
    RC_RDMA_READ_RESPONSE_MIDDLE = 0x0E
    RC_RDMA_READ_RESPONSE_LAST = 0x0F
    RC_RDMA_READ_RESPONSE_ONLY = 0x10
    RC_ACKNOWLEDGE = 0x11

    @property
    def carries_reth(self) -> bool:
        """RETH appears on READ requests and the first/only WRITE packet."""
        return self in (
            Opcode.RC_RDMA_READ_REQUEST,
            Opcode.RC_RDMA_WRITE_FIRST,
            Opcode.RC_RDMA_WRITE_ONLY,
        )

    @property
    def carries_aeth(self) -> bool:
        """AETH appears on read responses (except MIDDLE) and ACKs."""
        return self in (
            Opcode.RC_RDMA_READ_RESPONSE_FIRST,
            Opcode.RC_RDMA_READ_RESPONSE_LAST,
            Opcode.RC_RDMA_READ_RESPONSE_ONLY,
            Opcode.RC_ACKNOWLEDGE,
        )

    @property
    def carries_payload(self) -> bool:
        return self in (
            Opcode.RC_SEND_ONLY,
            Opcode.RC_RDMA_WRITE_FIRST,
            Opcode.RC_RDMA_WRITE_MIDDLE,
            Opcode.RC_RDMA_WRITE_LAST,
            Opcode.RC_RDMA_WRITE_ONLY,
            Opcode.RC_RDMA_READ_RESPONSE_FIRST,
            Opcode.RC_RDMA_READ_RESPONSE_MIDDLE,
            Opcode.RC_RDMA_READ_RESPONSE_LAST,
            Opcode.RC_RDMA_READ_RESPONSE_ONLY,
        )

    @property
    def is_read_response(self) -> bool:
        return self in (
            Opcode.RC_RDMA_READ_RESPONSE_FIRST,
            Opcode.RC_RDMA_READ_RESPONSE_MIDDLE,
            Opcode.RC_RDMA_READ_RESPONSE_LAST,
            Opcode.RC_RDMA_READ_RESPONSE_ONLY,
        )

    @property
    def is_write(self) -> bool:
        return self in (
            Opcode.RC_RDMA_WRITE_FIRST,
            Opcode.RC_RDMA_WRITE_MIDDLE,
            Opcode.RC_RDMA_WRITE_LAST,
            Opcode.RC_RDMA_WRITE_ONLY,
        )


#: Read-response to write conversion map — the heart of Cowbird-P4's
#: Execute phase (Section 5.2 Phase III): Response First/Middle/Last/Only
#: become Write First/Middle/Last/Only with the payload untouched.
READ_RESPONSE_TO_WRITE = {
    Opcode.RC_RDMA_READ_RESPONSE_FIRST: Opcode.RC_RDMA_WRITE_FIRST,
    Opcode.RC_RDMA_READ_RESPONSE_MIDDLE: Opcode.RC_RDMA_WRITE_MIDDLE,
    Opcode.RC_RDMA_READ_RESPONSE_LAST: Opcode.RC_RDMA_WRITE_LAST,
    Opcode.RC_RDMA_READ_RESPONSE_ONLY: Opcode.RC_RDMA_WRITE_ONLY,
}


@dataclass
class Bth:
    """Base Transport Header (12 bytes)."""

    opcode: Opcode
    dest_qp: int
    psn: int
    ack_request: bool = False
    partition_key: int = 0xFFFF
    solicited: bool = False

    def pack(self) -> bytes:
        if not 0 <= self.dest_qp < (1 << 24):
            raise ValueError(f"dest_qp out of 24-bit range: {self.dest_qp}")
        if not 0 <= self.psn < PSN_MODULUS:
            raise ValueError(f"psn out of 24-bit range: {self.psn}")
        flags = 0x80 if self.solicited else 0x00
        ack_psn = (0x8000_0000 if self.ack_request else 0) | self.psn
        return struct.pack(
            ">BBHI I",
            int(self.opcode),
            flags,
            self.partition_key,
            self.dest_qp,  # high byte reserved, low 24 bits QPN
            ack_psn,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Bth":
        opcode, flags, pkey, dqp_word, ack_psn = struct.unpack(">BBHI I", data[:BTH_BYTES])
        return cls(
            opcode=Opcode(opcode),
            dest_qp=dqp_word & 0xFF_FFFF,
            psn=ack_psn & 0xFF_FFFF,
            ack_request=bool(ack_psn & 0x8000_0000),
            partition_key=pkey,
            solicited=bool(flags & 0x80),
        )


@dataclass
class Reth:
    """RDMA Extended Transport Header (16 bytes): vaddr, rkey, length."""

    virtual_address: int
    remote_key: int
    dma_length: int

    def pack(self) -> bytes:
        if not 0 <= self.virtual_address < (1 << 64):
            raise ValueError(f"virtual address out of range: {self.virtual_address}")
        if not 0 <= self.dma_length < (1 << 32):
            raise ValueError(f"dma_length out of range: {self.dma_length}")
        return struct.pack(
            ">QII", self.virtual_address, self.remote_key & 0xFFFF_FFFF, self.dma_length
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Reth":
        vaddr, rkey, length = struct.unpack(">QII", data[:RETH_BYTES])
        return cls(virtual_address=vaddr, remote_key=rkey, dma_length=length)


@dataclass
class Aeth:
    """ACK Extended Transport Header (4 bytes): syndrome, MSN."""

    syndrome: int
    msn: int

    def pack(self) -> bytes:
        if not 0 <= self.msn < (1 << 24):
            raise ValueError(f"msn out of 24-bit range: {self.msn}")
        return struct.pack(">I", ((self.syndrome & 0xFF) << 24) | self.msn)

    @classmethod
    def unpack(cls, data: bytes) -> "Aeth":
        word, = struct.unpack(">I", data[:AETH_BYTES])
        return cls(syndrome=(word >> 24) & 0xFF, msn=word & 0xFF_FFFF)

    @property
    def is_ack(self) -> bool:
        return (self.syndrome & 0xE0) == 0x00 or self.syndrome == SYNDROME_ACK

    @property
    def is_nak(self) -> bool:
        return (self.syndrome & 0xE0) == 0x60


class AddressBook:
    """Deterministic node-name <-> IPv4/MAC assignment for packing.

    The simulator routes by node name; the wire format needs numeric
    addresses.  Names are assigned sequential addresses in 10.0.0.0/24
    on first use, and unpacking reverses the mapping.
    """

    def __init__(self) -> None:
        self._name_to_ip: dict[str, int] = {}
        self._ip_to_name: dict[int, str] = {}

    def ip_of(self, name: str) -> int:
        ip = self._name_to_ip.get(name)
        if ip is None:
            ip = (10 << 24) | (len(self._name_to_ip) + 1)
            self._name_to_ip[name] = ip
            self._ip_to_name[ip] = name
        return ip

    def name_of(self, ip: int) -> str:
        try:
            return self._ip_to_name[ip]
        except KeyError:
            raise KeyError(f"unknown IP {ip:#010x}") from None

    def mac_of(self, name: str) -> bytes:
        return b"\x02\x00" + struct.pack(">I", self.ip_of(name))


#: Module-default address book (tests may supply their own).
DEFAULT_ADDRESS_BOOK = AddressBook()


@dataclass
class RocePacket:
    """A complete RoCEv2 packet: addressing, transport headers, payload.

    Satisfies the network layer's Packet protocol (``src``/``dst``/
    ``size_bytes``/``priority``) while carrying real header objects the
    Cowbird-P4 pipeline rewrites.
    """

    src: str
    dst: str
    bth: Bth
    reth: Optional[Reth] = None
    aeth: Optional[Aeth] = None
    payload: bytes = b""
    priority: int = PRIORITY_NORMAL

    def __post_init__(self) -> None:
        opcode = self.bth.opcode
        if opcode.carries_reth and self.reth is None:
            raise ValueError(f"{opcode.name} requires a RETH header")
        if not opcode.carries_reth and self.reth is not None:
            raise ValueError(f"{opcode.name} must not carry a RETH header")
        if opcode.carries_aeth and self.aeth is None:
            raise ValueError(f"{opcode.name} requires an AETH header")
        if opcode is Opcode.RC_ACKNOWLEDGE and self.payload:
            raise ValueError("ACK packets carry no payload")
        if opcode is Opcode.RC_RDMA_READ_REQUEST and self.payload:
            raise ValueError("READ request packets carry no payload")

    # ------------------------------------------------------------------
    @property
    def opcode(self) -> Opcode:
        return self.bth.opcode

    @property
    def size_bytes(self) -> int:
        size = HEADER_OVERHEAD_BYTES + len(self.payload)
        if self.reth is not None:
            size += RETH_BYTES
        if self.aeth is not None:
            size += AETH_BYTES
        return size

    # ------------------------------------------------------------------
    def pack(self, book: Optional[AddressBook] = None) -> bytes:
        """Serialize to wire bytes (placeholder ICRC, like the prototype)."""
        book = book or DEFAULT_ADDRESS_BOOK
        parts: list[bytes] = []
        # Ethernet
        parts.append(book.mac_of(self.dst) + book.mac_of(self.src))
        parts.append(struct.pack(">H", ETHERTYPE_IPV4))
        # IPv4 (minimal, no options): total length filled in below.
        transport_len = self.size_bytes - ETH_HEADER_BYTES - IPV4_HEADER_BYTES
        parts.append(
            struct.pack(
                ">BBHHHBBHII",
                0x45,  # version 4, IHL 5
                0,  # DSCP/ECN
                IPV4_HEADER_BYTES + transport_len,
                0,  # identification
                0x4000,  # don't fragment
                64,  # TTL
                17,  # protocol: UDP
                0,  # header checksum (placeholder)
                book.ip_of(self.src),
                book.ip_of(self.dst),
            )
        )
        # UDP
        udp_len = transport_len
        parts.append(struct.pack(">HHHH", ROCE_UDP_PORT, ROCE_UDP_PORT, udp_len, 0))
        # IB transport
        parts.append(self.bth.pack())
        if self.reth is not None:
            parts.append(self.reth.pack())
        if self.aeth is not None:
            parts.append(self.aeth.pack())
        parts.append(self.payload)
        parts.append(b"\x00" * ICRC_BYTES)  # placeholder ICRC (footnote 1)
        wire = b"".join(parts)
        assert len(wire) == self.size_bytes, (len(wire), self.size_bytes)
        return wire

    @classmethod
    def unpack(cls, data: bytes, book: Optional[AddressBook] = None) -> "RocePacket":
        book = book or DEFAULT_ADDRESS_BOOK
        if len(data) < HEADER_OVERHEAD_BYTES:
            raise ValueError(f"packet too short: {len(data)} bytes")
        offset = ETH_HEADER_BYTES
        ip_fields = struct.unpack(">BBHHHBBHII", data[offset : offset + IPV4_HEADER_BYTES])
        src = book.name_of(ip_fields[8])
        dst = book.name_of(ip_fields[9])
        offset += IPV4_HEADER_BYTES
        dst_port = struct.unpack(">HHHH", data[offset : offset + UDP_HEADER_BYTES])[1]
        if dst_port != ROCE_UDP_PORT:
            raise ValueError(f"not a RoCEv2 packet (UDP port {dst_port})")
        offset += UDP_HEADER_BYTES
        bth = Bth.unpack(data[offset : offset + BTH_BYTES])
        offset += BTH_BYTES
        reth = aeth = None
        if bth.opcode.carries_reth:
            reth = Reth.unpack(data[offset : offset + RETH_BYTES])
            offset += RETH_BYTES
        if bth.opcode.carries_aeth:
            aeth = Aeth.unpack(data[offset : offset + AETH_BYTES])
            offset += AETH_BYTES
        payload = data[offset : len(data) - ICRC_BYTES]
        return cls(src=src, dst=dst, bth=bth, reth=reth, aeth=aeth, payload=payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RocePacket({self.opcode.name}, {self.src}->{self.dst}, "
            f"qp={self.bth.dest_qp}, psn={self.bth.psn}, {len(self.payload)}B)"
        )
