"""RoCEv2 packet formats, packed bit-for-bit.

RDMA over Converged Ethernet v2 carries InfiniBand transport packets in
UDP (destination port 4791) over IPv4 over Ethernet.  The headers the
paper's Table 4 lists — BTH for all packets, RETH on READ/WRITE
requests, AETH on read responses and acknowledgments — are implemented
here with ``struct``-level pack/unpack, because Cowbird-P4's central
mechanism is *recycling*: taking a received packet, stripping one
header, prepending another, and re-emitting it.  Tests assert on the
resulting byte layout.

Like the paper's prototype (footnote 1), we do not compute real ICRCs —
programmable switches cannot — and carry a placeholder trailer instead.

Hot-path design notes:

* All ``struct`` formats are compiled once at module level.
* :meth:`RocePacket.unpack` parses the BTH eagerly (every consumer needs
  the opcode/PSN) but leaves RETH/AETH as lazy properties backed by a
  ``memoryview`` of the wire bytes, and exposes the payload as a
  zero-copy ``memoryview`` slice.
* :meth:`RocePacket.recycle` is the switch primitive — strip one header,
  prepend another — as an in-place header rewrite that never touches
  the payload.
* :class:`PacketPool` is a small free-list of packet shells so that the
  P4 engine's steady-state probe/execute loop allocates no new packet
  objects.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.sim.network import PRIORITY_NORMAL

__all__ = [
    "AddressBook",
    "Aeth",
    "Bth",
    "HEADER_OVERHEAD_BYTES",
    "Opcode",
    "PacketPool",
    "PSN_MODULUS",
    "Reth",
    "RocePacket",
    "ROCE_UDP_PORT",
    "SYNDROME_ACK",
    "SYNDROME_NAK_PSN_ERROR",
    "psn_add",
    "psn_distance",
]

ROCE_UDP_PORT = 4791
ETHERTYPE_IPV4 = 0x0800

ETH_HEADER_BYTES = 14
IPV4_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
BTH_BYTES = 12
RETH_BYTES = 16
AETH_BYTES = 4
ICRC_BYTES = 4

#: Fixed overhead of every RoCEv2 packet (Eth + IPv4 + UDP + BTH + ICRC).
HEADER_OVERHEAD_BYTES = (
    ETH_HEADER_BYTES + IPV4_HEADER_BYTES + UDP_HEADER_BYTES + BTH_BYTES + ICRC_BYTES
)

#: PSNs are 24-bit serial numbers.
PSN_MODULUS = 1 << 24

#: AETH syndrome for a positive acknowledgment (credit field saturated).
SYNDROME_ACK = 0x1F
#: AETH syndrome for a NAK / PSN sequence error (triggers Go-Back-N).
SYNDROME_NAK_PSN_ERROR = 0x60

# Precompiled wire formats — compiled once, shared by every pack/unpack.
_BTH_STRUCT = struct.Struct(">BBHII")
_RETH_STRUCT = struct.Struct(">QII")
_AETH_STRUCT = struct.Struct(">I")
_IPV4_STRUCT = struct.Struct(">BBHHHBBHII")
_UDP_STRUCT = struct.Struct(">HHHH")
_U16_STRUCT = struct.Struct(">H")
_U32_STRUCT = struct.Struct(">I")
_ETHERTYPE_IPV4_BYTES = _U16_STRUCT.pack(ETHERTYPE_IPV4)
_ICRC_PLACEHOLDER = b"\x00" * ICRC_BYTES

#: Offset of the first extension header (RETH or AETH) in the wire image.
#: RETH and AETH never appear together, so the offset is a constant.
_EXT_OFFSET = ETH_HEADER_BYTES + IPV4_HEADER_BYTES + UDP_HEADER_BYTES + BTH_BYTES


def psn_add(psn: int, delta: int) -> int:
    """24-bit wrapping PSN addition."""
    return (psn + delta) % PSN_MODULUS


def psn_distance(start: int, end: int) -> int:
    """Forward distance from ``start`` to ``end`` in PSN space."""
    return (end - start) % PSN_MODULUS


class Opcode(enum.IntEnum):
    """InfiniBand RC transport opcodes used by the reproduction."""

    RC_SEND_ONLY = 0x04
    RC_RDMA_WRITE_FIRST = 0x06
    RC_RDMA_WRITE_MIDDLE = 0x07
    RC_RDMA_WRITE_LAST = 0x08
    RC_RDMA_WRITE_ONLY = 0x0A
    RC_RDMA_READ_REQUEST = 0x0C
    RC_RDMA_READ_RESPONSE_FIRST = 0x0D
    RC_RDMA_READ_RESPONSE_MIDDLE = 0x0E
    RC_RDMA_READ_RESPONSE_LAST = 0x0F
    RC_RDMA_READ_RESPONSE_ONLY = 0x10
    RC_ACKNOWLEDGE = 0x11

    @property
    def carries_reth(self) -> bool:
        """RETH appears on READ requests and the first/only WRITE packet."""
        return self in (
            Opcode.RC_RDMA_READ_REQUEST,
            Opcode.RC_RDMA_WRITE_FIRST,
            Opcode.RC_RDMA_WRITE_ONLY,
        )

    @property
    def carries_aeth(self) -> bool:
        """AETH appears on read responses (except MIDDLE) and ACKs."""
        return self in (
            Opcode.RC_RDMA_READ_RESPONSE_FIRST,
            Opcode.RC_RDMA_READ_RESPONSE_LAST,
            Opcode.RC_RDMA_READ_RESPONSE_ONLY,
            Opcode.RC_ACKNOWLEDGE,
        )

    @property
    def carries_payload(self) -> bool:
        return self in (
            Opcode.RC_SEND_ONLY,
            Opcode.RC_RDMA_WRITE_FIRST,
            Opcode.RC_RDMA_WRITE_MIDDLE,
            Opcode.RC_RDMA_WRITE_LAST,
            Opcode.RC_RDMA_WRITE_ONLY,
            Opcode.RC_RDMA_READ_RESPONSE_FIRST,
            Opcode.RC_RDMA_READ_RESPONSE_MIDDLE,
            Opcode.RC_RDMA_READ_RESPONSE_LAST,
            Opcode.RC_RDMA_READ_RESPONSE_ONLY,
        )

    @property
    def is_read_response(self) -> bool:
        return self in (
            Opcode.RC_RDMA_READ_RESPONSE_FIRST,
            Opcode.RC_RDMA_READ_RESPONSE_MIDDLE,
            Opcode.RC_RDMA_READ_RESPONSE_LAST,
            Opcode.RC_RDMA_READ_RESPONSE_ONLY,
        )

    @property
    def is_write(self) -> bool:
        return self in (
            Opcode.RC_RDMA_WRITE_FIRST,
            Opcode.RC_RDMA_WRITE_MIDDLE,
            Opcode.RC_RDMA_WRITE_LAST,
            Opcode.RC_RDMA_WRITE_ONLY,
        )


#: Read-response to write conversion map — the heart of Cowbird-P4's
#: Execute phase (Section 5.2 Phase III): Response First/Middle/Last/Only
#: become Write First/Middle/Last/Only with the payload untouched.
READ_RESPONSE_TO_WRITE = {
    Opcode.RC_RDMA_READ_RESPONSE_FIRST: Opcode.RC_RDMA_WRITE_FIRST,
    Opcode.RC_RDMA_READ_RESPONSE_MIDDLE: Opcode.RC_RDMA_WRITE_MIDDLE,
    Opcode.RC_RDMA_READ_RESPONSE_LAST: Opcode.RC_RDMA_WRITE_LAST,
    Opcode.RC_RDMA_READ_RESPONSE_ONLY: Opcode.RC_RDMA_WRITE_ONLY,
}


@dataclass
class Bth:
    """Base Transport Header (12 bytes)."""

    opcode: Opcode
    dest_qp: int
    psn: int
    ack_request: bool = False
    partition_key: int = 0xFFFF
    solicited: bool = False

    def pack(self) -> bytes:
        if not 0 <= self.dest_qp < (1 << 24):
            raise ValueError(f"dest_qp out of 24-bit range: {self.dest_qp}")
        if not 0 <= self.psn < PSN_MODULUS:
            raise ValueError(f"psn out of 24-bit range: {self.psn}")
        flags = 0x80 if self.solicited else 0x00
        ack_psn = (0x8000_0000 if self.ack_request else 0) | self.psn
        return _BTH_STRUCT.pack(
            int(self.opcode),
            flags,
            self.partition_key,
            self.dest_qp,  # high byte reserved, low 24 bits QPN
            ack_psn,
        )

    @classmethod
    def unpack(cls, data: Union[bytes, memoryview]) -> "Bth":
        opcode, flags, pkey, dqp_word, ack_psn = _BTH_STRUCT.unpack(data[:BTH_BYTES])
        return cls(
            opcode=Opcode(opcode),
            dest_qp=dqp_word & 0xFF_FFFF,
            psn=ack_psn & 0xFF_FFFF,
            ack_request=bool(ack_psn & 0x8000_0000),
            partition_key=pkey,
            solicited=bool(flags & 0x80),
        )


@dataclass
class Reth:
    """RDMA Extended Transport Header (16 bytes): vaddr, rkey, length."""

    virtual_address: int
    remote_key: int
    dma_length: int

    def pack(self) -> bytes:
        if not 0 <= self.virtual_address < (1 << 64):
            raise ValueError(f"virtual address out of range: {self.virtual_address}")
        if not 0 <= self.dma_length < (1 << 32):
            raise ValueError(f"dma_length out of range: {self.dma_length}")
        return _RETH_STRUCT.pack(
            self.virtual_address, self.remote_key & 0xFFFF_FFFF, self.dma_length
        )

    @classmethod
    def unpack(cls, data: Union[bytes, memoryview]) -> "Reth":
        vaddr, rkey, length = _RETH_STRUCT.unpack(data[:RETH_BYTES])
        return cls(virtual_address=vaddr, remote_key=rkey, dma_length=length)


@dataclass
class Aeth:
    """ACK Extended Transport Header (4 bytes): syndrome, MSN."""

    syndrome: int
    msn: int

    def pack(self) -> bytes:
        if not 0 <= self.msn < (1 << 24):
            raise ValueError(f"msn out of 24-bit range: {self.msn}")
        return _AETH_STRUCT.pack(((self.syndrome & 0xFF) << 24) | self.msn)

    @classmethod
    def unpack(cls, data: Union[bytes, memoryview]) -> "Aeth":
        word, = _AETH_STRUCT.unpack(data[:AETH_BYTES])
        return cls(syndrome=(word >> 24) & 0xFF, msn=word & 0xFF_FFFF)

    @property
    def is_ack(self) -> bool:
        return (self.syndrome & 0xE0) == 0x00 or self.syndrome == SYNDROME_ACK

    @property
    def is_nak(self) -> bool:
        return (self.syndrome & 0xE0) == 0x60


class AddressBook:
    """Deterministic node-name <-> IPv4/MAC assignment for packing.

    The simulator routes by node name; the wire format needs numeric
    addresses.  Names are assigned sequential addresses in 10.0.0.0/24
    on first use, and unpacking reverses the mapping.
    """

    def __init__(self) -> None:
        self._name_to_ip: dict[str, int] = {}
        self._ip_to_name: dict[int, str] = {}

    def ip_of(self, name: str) -> int:
        ip = self._name_to_ip.get(name)
        if ip is None:
            ip = (10 << 24) | (len(self._name_to_ip) + 1)
            self._name_to_ip[name] = ip
            self._ip_to_name[ip] = name
        return ip

    def name_of(self, ip: int) -> str:
        try:
            return self._ip_to_name[ip]
        except KeyError:
            raise KeyError(f"unknown IP {ip:#010x}") from None

    def mac_of(self, name: str) -> bytes:
        return b"\x02\x00" + _U32_STRUCT.pack(self.ip_of(name))


#: Module-default address book (tests may supply their own).
DEFAULT_ADDRESS_BOOK = AddressBook()


class RocePacket:
    """A complete RoCEv2 packet: addressing, transport headers, payload.

    Satisfies the network layer's Packet protocol (``src``/``dst``/
    ``size_bytes``/``priority``) while carrying real header objects the
    Cowbird-P4 pipeline rewrites.

    Direct construction validates the header/opcode combination.
    :meth:`unpack` skips validation (the wire image is well-formed by
    construction) and defers RETH/AETH parsing until the ``reth``/
    ``aeth`` properties are first read; its ``payload`` is a zero-copy
    ``memoryview`` of the input buffer.
    """

    __slots__ = ("src", "dst", "bth", "payload", "priority", "_reth", "_aeth", "_wire", "_pool")

    def __init__(
        self,
        src: str,
        dst: str,
        bth: Bth,
        reth: Optional[Reth] = None,
        aeth: Optional[Aeth] = None,
        payload: Union[bytes, memoryview] = b"",
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        opcode = bth.opcode
        if opcode.carries_reth and reth is None:
            raise ValueError(f"{opcode.name} requires a RETH header")
        if not opcode.carries_reth and reth is not None:
            raise ValueError(f"{opcode.name} must not carry a RETH header")
        if opcode.carries_aeth and aeth is None:
            raise ValueError(f"{opcode.name} requires an AETH header")
        if opcode is Opcode.RC_ACKNOWLEDGE and payload:
            raise ValueError("ACK packets carry no payload")
        if opcode is Opcode.RC_RDMA_READ_REQUEST and payload:
            raise ValueError("READ request packets carry no payload")
        self.src = src
        self.dst = dst
        self.bth = bth
        self.payload = payload
        self.priority = priority
        self._reth = reth
        self._aeth = aeth
        self._wire: Optional[memoryview] = None
        self._pool: Optional["PacketPool"] = None

    # ------------------------------------------------------------------
    @property
    def opcode(self) -> Opcode:
        return self.bth.opcode

    @property
    def reth(self) -> Optional[Reth]:
        reth = self._reth
        if reth is None and self._wire is not None and self.bth.opcode.carries_reth:
            reth = self._reth = Reth.unpack(self._wire[_EXT_OFFSET:])
        return reth

    @reth.setter
    def reth(self, value: Optional[Reth]) -> None:
        self._reth = value

    @property
    def aeth(self) -> Optional[Aeth]:
        aeth = self._aeth
        if aeth is None and self._wire is not None and self.bth.opcode.carries_aeth:
            aeth = self._aeth = Aeth.unpack(self._wire[_EXT_OFFSET:])
        return aeth

    @aeth.setter
    def aeth(self, value: Optional[Aeth]) -> None:
        self._aeth = value

    @property
    def size_bytes(self) -> int:
        opcode = self.bth.opcode
        size = HEADER_OVERHEAD_BYTES + len(self.payload)
        if opcode.carries_reth:
            size += RETH_BYTES
        if opcode.carries_aeth:
            size += AETH_BYTES
        return size

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, RocePacket):
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.bth == other.bth
            and self.reth == other.reth
            and self.aeth == other.aeth
            and bytes(self.payload) == bytes(other.payload)
            and self.priority == other.priority
        )

    __hash__ = None  # type: ignore[assignment] - mutable, like a dataclass with eq

    # ------------------------------------------------------------------
    def recycle(
        self,
        src: str,
        dst: str,
        opcode: Opcode,
        dest_qp: int,
        psn: int,
        ack_request: bool = False,
        reth: Optional[Reth] = None,
        aeth: Optional[Aeth] = None,
        priority: int = PRIORITY_NORMAL,
    ) -> "RocePacket":
        """In-place header rewrite — the switch recycling primitive.

        Strips the old extension header, rewrites the BTH and addressing,
        and prepends the new extension header, leaving the payload bytes
        untouched (the data plane never parses payloads; they exceed the
        PHV).  Returns ``self`` for chaining into ``switch.inject``.
        """
        bth = self.bth
        bth.opcode = opcode
        bth.dest_qp = dest_qp
        bth.psn = psn
        bth.ack_request = ack_request
        self.src = src
        self.dst = dst
        self._reth = reth
        self._aeth = aeth
        self._wire = None
        self.priority = priority
        return self

    def release(self) -> None:
        """Return this packet to its free-list, if it came from one."""
        pool = self._pool
        if pool is not None:
            pool.release(self)

    # ------------------------------------------------------------------
    def pack(self, book: Optional[AddressBook] = None) -> bytes:
        """Serialize to wire bytes (placeholder ICRC, like the prototype)."""
        book = book or DEFAULT_ADDRESS_BOOK
        parts: list[bytes] = []
        # Ethernet
        parts.append(book.mac_of(self.dst) + book.mac_of(self.src))
        parts.append(_ETHERTYPE_IPV4_BYTES)
        # IPv4 (minimal, no options): total length filled in below.
        transport_len = self.size_bytes - ETH_HEADER_BYTES - IPV4_HEADER_BYTES
        parts.append(
            _IPV4_STRUCT.pack(
                0x45,  # version 4, IHL 5
                0,  # DSCP/ECN
                IPV4_HEADER_BYTES + transport_len,
                0,  # identification
                0x4000,  # don't fragment
                64,  # TTL
                17,  # protocol: UDP
                0,  # header checksum (placeholder)
                book.ip_of(self.src),
                book.ip_of(self.dst),
            )
        )
        # UDP
        udp_len = transport_len
        parts.append(_UDP_STRUCT.pack(ROCE_UDP_PORT, ROCE_UDP_PORT, udp_len, 0))
        # IB transport
        parts.append(self.bth.pack())
        reth = self.reth
        if reth is not None:
            parts.append(reth.pack())
        aeth = self.aeth
        if aeth is not None:
            parts.append(aeth.pack())
        parts.append(bytes(self.payload))
        parts.append(_ICRC_PLACEHOLDER)  # placeholder ICRC (footnote 1)
        wire = b"".join(parts)
        assert len(wire) == self.size_bytes, (len(wire), self.size_bytes)
        return wire

    @classmethod
    def unpack(
        cls, data: Union[bytes, memoryview], book: Optional[AddressBook] = None
    ) -> "RocePacket":
        book = book or DEFAULT_ADDRESS_BOOK
        if len(data) < HEADER_OVERHEAD_BYTES:
            raise ValueError(f"packet too short: {len(data)} bytes")
        view = memoryview(data)
        offset = ETH_HEADER_BYTES
        ip_fields = _IPV4_STRUCT.unpack(view[offset : offset + IPV4_HEADER_BYTES])
        src = book.name_of(ip_fields[8])
        dst = book.name_of(ip_fields[9])
        offset += IPV4_HEADER_BYTES
        dst_port = _UDP_STRUCT.unpack(view[offset : offset + UDP_HEADER_BYTES])[1]
        if dst_port != ROCE_UDP_PORT:
            raise ValueError(f"not a RoCEv2 packet (UDP port {dst_port})")
        offset += UDP_HEADER_BYTES
        bth = Bth.unpack(view[offset : offset + BTH_BYTES])
        offset += BTH_BYTES
        # RETH/AETH stay unparsed in the wire view; the reth/aeth
        # properties decode them on demand.
        opcode = bth.opcode
        if opcode.carries_reth:
            offset += RETH_BYTES
        if opcode.carries_aeth:
            offset += AETH_BYTES
        packet = object.__new__(cls)
        packet.src = src
        packet.dst = dst
        packet.bth = bth
        packet.payload = view[offset : len(data) - ICRC_BYTES]
        packet.priority = PRIORITY_NORMAL
        packet._reth = None
        packet._aeth = None
        packet._wire = view
        packet._pool = None
        return packet

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RocePacket({self.opcode.name}, {self.src}->{self.dst}, "
            f"qp={self.bth.dest_qp}, psn={self.bth.psn}, {len(self.payload)}B)"
        )


class PacketPool:
    """A bounded free-list of :class:`RocePacket` shells.

    ``acquire`` hands back a recycled shell when one is available (the
    steady-state case) and falls back to normal construction otherwise.
    Validation is skipped on the recycled path — every acquire site in
    the engine builds a well-formed header combination, and the direct
    constructor still validates for everyone else.  Payload and wire
    references are dropped at release so buffers do not outlive their
    packet.

    ``sanitizer`` is an optional :class:`repro.analysis.SimSanitizer`
    (duck-typed: anything with ``on_acquire``/``on_release``); when set,
    every acquire/release is reported so double releases and end-of-run
    leaks surface with allocation sites.  ``None`` (the default) keeps
    the hot path branch-one-compare cheap.
    """

    __slots__ = ("_free", "maxsize", "sanitizer")

    def __init__(self, maxsize: int = 256, sanitizer=None) -> None:
        self._free: list[RocePacket] = []
        self.maxsize = maxsize
        self.sanitizer = sanitizer

    def __len__(self) -> int:
        return len(self._free)

    def acquire(
        self,
        src: str,
        dst: str,
        bth: Bth,
        reth: Optional[Reth] = None,
        aeth: Optional[Aeth] = None,
        payload: Union[bytes, memoryview] = b"",
        priority: int = PRIORITY_NORMAL,
    ) -> RocePacket:
        free = self._free
        if free:
            packet = free.pop()
            packet.src = src
            packet.dst = dst
            packet.bth = bth
            packet.payload = payload
            packet.priority = priority
            packet._reth = reth
            packet._aeth = aeth
            packet._wire = None
        else:
            packet = RocePacket(
                src, dst, bth, reth=reth, aeth=aeth, payload=payload,
                priority=priority,
            )
        packet._pool = self
        if self.sanitizer is not None:
            self.sanitizer.on_acquire(self, packet)
        return packet

    def release(self, packet: RocePacket) -> None:
        if self.sanitizer is not None:
            self.sanitizer.on_release(self, packet, owned=packet._pool is self)
        if packet._pool is not self:
            return  # not ours (or already released): ignore
        packet._pool = None
        packet.payload = b""
        packet._wire = None
        packet._reth = None
        packet._aeth = None
        if len(self._free) < self.maxsize:
            self._free.append(packet)
