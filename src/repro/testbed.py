"""Testbed assembly: hosts, NICs, links, and the top-of-rack switch.

Reproduces the paper's Section 7 topology: servers (compute node, memory
pool, and optionally a spot VM and a TCP traffic sink) hang off one
Wedge100BF-32X switch over 100 Gb/s links.  The helper keeps experiment
code declarative::

    bed = Testbed(seed=42)
    compute = bed.add_host("compute", cpu_cores=8, smt=2)
    pool = bed.add_host("pool")
    qp_c, qp_p = bed.connect_qps(compute, pool)
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.memory.region import RegionRegistry
from repro.rdma.nic import NicConfig, RNIC
from repro.rdma.qp import CompletionQueue, QueuePair
from repro.rdma.verbs import RdmaVerbs
from repro.sim.cpu import CPU, CostModel
from repro.sim.engine import Simulator
from repro.sim.network import FaultInjector, Link, Switch
from repro import telemetry as _telemetry
from repro.telemetry import Telemetry

__all__ = ["Host", "Testbed"]


class Host:
    """A server: region registry + RNIC + (optionally) a CPU.

    The host object is the link endpoint; it hands RoCE traffic to the
    NIC and everything else to registered protocol handlers (the TCP
    sink of Figure 14 registers itself this way).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cost: CostModel,
        cpu_cores: int = 0,
        smt: int = 2,
        nic_config: Optional[NicConfig] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.registry = RegionRegistry()
        self.nic = RNIC(sim, name, self.registry, nic_config)
        self.cpu: Optional[CPU] = (
            CPU(sim, physical_cores=cpu_cores, smt=smt, cost_model=cost)
            if cpu_cores > 0
            else None
        )
        self.verbs = RdmaVerbs(self.nic, cost)
        self._protocol_handlers: list[Callable] = []
        self.uplink: Optional[Link] = None  # host -> switch

    def add_protocol_handler(self, handler: Callable) -> None:
        """Register a non-RDMA packet handler (e.g. a TCP sink/demux)."""
        self._protocol_handlers.append(handler)

    def attach_pool(self, pool) -> None:
        """Serve a :class:`~repro.memory.pool.MemoryPool` from this host.

        The pool owns the region registry; both the host and its NIC
        must resolve rkeys against it (one-sided RDMA is serviced
        entirely NIC-side).  This is the single sanctioned way to bind
        a pool to a host — callers must not mutate ``host.registry``
        and ``host.nic.registry`` by hand.
        """
        if pool.node != self.name:
            raise ValueError(
                f"pool node {pool.node!r} does not match host {self.name!r}"
            )
        self.registry = pool.registry
        self.nic.registry = pool.registry

    def receive(self, packet, link) -> None:
        self.nic.receive(packet, link)
        for handler in self._protocol_handlers:
            handler(packet, link)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name!r})"


class Testbed:
    """One switch, N hosts, 100 Gb/s links — the Section 7 testbed."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        seed: int = 0,
        cost: Optional[CostModel] = None,
        bandwidth_gbps: Optional[float] = None,
        propagation_delay_ns: Optional[float] = None,
        fault_injector: Optional[FaultInjector] = None,
        telemetry: Optional[Telemetry] = None,
        sanitize: Optional[bool] = None,
    ) -> None:
        # Telemetry must be attached before any Link/NIC/engine is built
        # so components cache live instruments; fall back to the
        # process-wide active telemetry (``repro.telemetry.activate``).
        # ``sanitize=None`` defers to the REPRO_SANITIZE environment flag.
        self.sim = Simulator(
            telemetry=telemetry or _telemetry.current(), sanitize=sanitize
        )
        self.seed = seed
        self.cost = cost or CostModel()
        self.bandwidth_gbps = bandwidth_gbps or self.cost.link_bandwidth_gbps
        self.propagation_delay_ns = (
            propagation_delay_ns
            if propagation_delay_ns is not None
            else self.cost.propagation_delay_ns
        )
        self.fault_injector = fault_injector
        self.switch = Switch(
            self.sim, "switch", forward_delay_ns=self.cost.switch_forward_delay_ns
        )
        self.hosts: dict[str, Host] = {}

    def add_host(
        self,
        name: str,
        cpu_cores: int = 0,
        smt: int = 2,
        nic_config: Optional[NicConfig] = None,
        bandwidth_gbps: Optional[float] = None,
    ) -> Host:
        """Create a host and cable it to the switch."""
        if name in self.hosts:
            raise ValueError(f"host {name!r} already exists")
        if nic_config is None:
            # Derive NIC parameters from the testbed's cost model so a
            # single CostModel instance calibrates the whole deployment.
            nic_config = NicConfig(
                message_rate_mops=self.cost.nic_message_rate_mops,
                processing_delay_ns=self.cost.nic_processing_delay_ns,
                mtu_bytes=self.cost.mtu_bytes,
            )
        host = Host(
            self.sim, name, self.cost, cpu_cores=cpu_cores, smt=smt,
            nic_config=nic_config,
        )
        bw = bandwidth_gbps or self.bandwidth_gbps
        # Host -> switch direction terminates at the switch; switch -> host
        # at the host.  Faults, when configured, apply to both directions.
        uplink = Link(
            self.sim,
            f"{name}->switch",
            self.switch,
            bandwidth_gbps=bw,
            propagation_delay_ns=self.propagation_delay_ns,
            fault_injector=self.fault_injector,
        )
        downlink = Link(
            self.sim,
            f"switch->{name}",
            host,
            bandwidth_gbps=bw,
            propagation_delay_ns=self.propagation_delay_ns,
            fault_injector=self.fault_injector,
        )
        host.nic.attach_link(uplink)
        host.uplink = uplink
        self.switch.attach(name, downlink)
        self.hosts[name] = host
        return host

    def add_pool(
        self,
        name: str,
        pool=None,
        capacity_bytes: Optional[int] = None,
        **host_kwargs,
    ) -> tuple[Host, "MemoryPool"]:
        """Create a host serving a memory pool, cabled to the switch.

        Builds the host (CPU-less by default: a disaggregated pool
        needs no compute for data transfers), then either adopts the
        given ``pool`` or creates a fresh :class:`MemoryPool` named
        after the host, and attaches it via :meth:`Host.attach_pool`.
        Returns ``(pool_host, pool)``.
        """
        from repro.memory.pool import MemoryPool

        host = self.add_host(name, **host_kwargs)
        if pool is None:
            pool = MemoryPool(name, capacity_bytes=capacity_bytes)
        host.attach_pool(pool)
        return host, pool

    def connect_qps(
        self,
        host_a: Host,
        host_b: Host,
        cq_a: Optional[CompletionQueue] = None,
        cq_b: Optional[CompletionQueue] = None,
    ) -> tuple[QueuePair, QueuePair]:
        """Phase I setup: create and cross-connect a QP on each host."""
        qp_a = host_a.nic.create_qp(cq_a)
        qp_b = host_b.nic.create_qp(cq_b)
        qp_a.connect(host_b.name, qp_b.qpn)
        qp_b.connect(host_a.name, qp_a.qpn)
        return qp_a, qp_b

    def host(self, name: str) -> Host:
        return self.hosts[name]
