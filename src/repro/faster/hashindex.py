"""FASTER's hash index: key -> hybrid-log address.

The real index is an array of cache-line-sized buckets holding
(tag, address) entries with lock-free CAS updates.  We keep the bucket
structure (so occupancy and collision behaviour are observable) but let
Python-level operations stand in for the atomics; their CPU cost is
charged from the cost model by the store layer.
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["HashIndex"]


def _mix64(value: int) -> int:
    """SplitMix64 finalizer — the index's hash function."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFF_FFFF_FFFF_FFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFF_FFFF_FFFF_FFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFF_FFFF_FFFF_FFFF
    return value ^ (value >> 31)


class HashIndex:
    """A bucketed hash index mapping keys to log addresses."""

    BUCKET_ENTRIES = 8

    def __init__(self, num_buckets: int = 1 << 16) -> None:
        if num_buckets < 1 or (num_buckets & (num_buckets - 1)) != 0:
            raise ValueError(f"num_buckets must be a power of two: {num_buckets}")
        self.num_buckets = num_buckets
        self._buckets: list[list[tuple[int, int]]] = [[] for _ in range(num_buckets)]
        self.entry_count = 0
        self.collision_overflow = 0

    def _bucket_of(self, key: int) -> list[tuple[int, int]]:
        return self._buckets[_mix64(key) & (self.num_buckets - 1)]

    def get(self, key: int) -> Optional[int]:
        """Latest log address for ``key``, or None."""
        for entry_key, address in self._bucket_of(key):
            if entry_key == key:
                return address
        return None

    def upsert(self, key: int, address: int) -> None:
        """Point ``key`` at ``address`` (a newer log position)."""
        bucket = self._bucket_of(key)
        for i, (entry_key, _old) in enumerate(bucket):
            if entry_key == key:
                bucket[i] = (key, address)
                return
        if len(bucket) >= self.BUCKET_ENTRIES:
            # Real FASTER chains overflow buckets; we track the effect.
            self.collision_overflow += 1
        bucket.append((key, address))
        self.entry_count += 1

    def delete(self, key: int) -> bool:
        bucket = self._bucket_of(key)
        for i, (entry_key, _addr) in enumerate(bucket):
            if entry_key == key:
                del bucket[i]
                self.entry_count -= 1
                return True
        return False

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self.entry_count

    def keys(self) -> Iterator[int]:
        for bucket in self._buckets:
            for key, _addr in bucket:
                yield key

    def load_factor(self) -> float:
        return self.entry_count / (self.num_buckets * self.BUCKET_ENTRIES)
