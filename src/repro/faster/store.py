"""The FASTER KV front-end and its IDevice integration (Section 7).

``FasterKv`` glues the hash index and hybrid log to a storage
:class:`~repro.baselines.backends.Backend`.  The integration mirrors the
paper's port: each application thread creates a notification handle,
issues storage I/O asynchronously, and completes pending requests by
polling — "the simple interface of Cowbird makes the integration
straightforward."

Record layout in the log: ``[key: 8 B][value: value_bytes]``.  Records
never span pages, and a record's device offset equals its log address.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.baselines.backends import Backend
from repro.faster.hashindex import HashIndex
from repro.faster.hybridlog import HybridLog, HybridLogConfig
from repro.sim.cpu import TAG_APP, Thread

__all__ = ["FasterConfig", "FasterKv", "ReadOutcome"]

KEY_BYTES = 8


@dataclass
class FasterConfig:
    """Store-level configuration."""

    value_bytes: int = 64
    index_buckets: int = 1 << 16
    log: HybridLogConfig = field(default_factory=HybridLogConfig)

    @property
    def record_bytes(self) -> int:
        return KEY_BYTES + self.value_bytes


@dataclass
class ReadOutcome:
    """Result of starting a read.

    ``source`` is "memory" (value present), "device" (token pending), or
    "missing" (no such key).
    """

    source: str
    value: Optional[bytes] = None
    token: Optional[int] = None
    key: int = 0


class FasterKv:
    """A FASTER-like store over a pluggable storage backend."""

    def __init__(self, device: Backend, cost, config: Optional[FasterConfig] = None):
        self.device = device
        self.cost = cost
        self.config = config or FasterConfig()
        self.index = HashIndex(self.config.index_buckets)
        self.log = HybridLog(self.config.log)
        #: token -> ("read", key) | ("flush", page_number)
        self._pending: dict[int, tuple[str, int]] = {}
        self.stats_reads_memory = 0
        self.stats_reads_device = 0
        self.stats_upserts = 0
        self.stats_flushes = 0

    # ------------------------------------------------------------------
    # Operations (generators driven inside a simulated thread)
    # ------------------------------------------------------------------
    def upsert(
        self, thread: Thread, key: int, value: bytes,
        device: Optional[Backend] = None,
    ) -> Generator[Any, Any, int]:
        """Append a record at the tail and point the index at it.

        Returns the number of eviction writes this call issued through
        the *calling thread's* device channel, so the caller can track
        its own in-flight token count (another thread's flushes complete
        on that thread's channel, not ours).
        """
        if len(value) != self.config.value_bytes:
            raise ValueError(
                f"value must be {self.config.value_bytes} bytes, got {len(value)}"
            )
        yield from thread.compute(self.cost.faster_op_overhead, tag=TAG_APP)
        addr = self.log.allocate(self.config.record_bytes)
        record = struct.pack("<Q", key) + value
        self.log.write(addr, record)
        yield from thread.compute(
            self.cost.memcpy_per_byte * len(record), tag=TAG_APP
        )
        self.index.upsert(key, addr)
        self.stats_upserts += 1
        flushes = yield from self._maybe_evict(thread, device or self.device)
        return flushes

    def start_read(
        self, thread: Thread, key: int, device: Optional[Backend] = None,
    ) -> Generator[Any, Any, ReadOutcome]:
        """Begin a read; in-memory hits complete inline."""
        yield from thread.compute(self.cost.faster_op_overhead, tag=TAG_APP)
        addr = self.index.get(key)
        if addr is None:
            return ReadOutcome(source="missing", key=key)
        if self.log.in_memory(addr):
            record = self.log.read(addr, self.config.record_bytes)
            self.stats_reads_memory += 1
            yield from thread.compute(
                self.cost.record_touch_per_byte * self.config.record_bytes,
                tag=TAG_APP,
            )
            return ReadOutcome(source="memory", value=record[KEY_BYTES:], key=key)
        # Cold record: fetch from the storage layer asynchronously,
        # through the calling thread's device channel.
        token = yield from (device or self.device).issue_read(
            thread, addr, self.config.record_bytes
        )
        self._pending[token] = ("read", key)
        self.stats_reads_device += 1
        return ReadOutcome(source="device", token=token, key=key)

    def complete(
        self, thread: Thread, tokens: list[int]
    ) -> Generator[Any, Any, list[int]]:
        """Process completed device I/O; returns finished read keys."""
        finished: list[int] = []
        for token in tokens:
            kind, payload = self._pending.pop(token, (None, None))
            if kind == "read":
                yield from thread.compute(
                    self.cost.record_touch_per_byte * self.config.record_bytes,
                    tag=TAG_APP,
                )
                finished.append(payload)
            elif kind == "flush":
                self.log.finish_evict(payload)
        return finished

    def pending_reads(self) -> int:
        return sum(1 for kind, _ in self._pending.values() if kind == "read")

    # ------------------------------------------------------------------
    # Eviction: spill cold pages through the IDevice
    # ------------------------------------------------------------------
    def _maybe_evict(
        self, thread: Thread, device: Optional[Backend] = None,
    ) -> Generator[Any, Any, int]:
        issued = 0
        device = device or self.device
        while self.log.pages_over_budget() > 0:
            eviction = self.log.begin_evict()
            if eviction is None:
                break
            page, device_offset, data = eviction
            token = yield from device.issue_write(thread, device_offset, data)
            self._pending[token] = ("flush", page)
            self.stats_flushes += 1
            issued += 1
        return issued

    # ------------------------------------------------------------------
    # Non-simulated helpers (loading, verification)
    # ------------------------------------------------------------------
    def load(self, items: dict[int, bytes]) -> None:
        """Bulk-load records without charging simulated time.

        Used to build the initial database before measurement starts —
        the paper's experiments also measure steady state, not loading.
        Spilled pages are written to the device's backing store
        synchronously via the drain callback the backend provides.
        """
        for key, value in items.items():
            if len(value) != self.config.value_bytes:
                raise ValueError("bad value size during load")
            addr = self.log.allocate(self.config.record_bytes)
            self.log.write(addr, struct.pack("<Q", key) + value)
            self.index.upsert(key, addr)
            while self.log.pages_over_budget() > 0:
                eviction = self.log.begin_evict()
                if eviction is None:
                    break
                page, device_offset, data = eviction
                self._store_cold_page(device_offset, data)
                self.log.finish_evict(page)

    def _store_cold_page(self, device_offset: int, data: bytes) -> None:
        """Write a page into the device's backing store instantly.

        For RDMA/Cowbird backends the backing store is the memory pool
        region; for the SSD it is a plain buffer; local memory keeps
        everything in the log.  Backends expose this through an optional
        ``backing_write`` attribute; the default silently drops the
        bytes (sufficient for pure-throughput runs, not for verifying
        reads), so verification-grade backends must provide it.
        """
        backing_write = getattr(self.device, "backing_write", None)
        if backing_write is not None:
            backing_write(device_offset, data)

    def read_sync_for_test(self, key: int) -> Optional[bytes]:
        """Non-simulated read used by tests: memory-resident data only."""
        addr = self.index.get(key)
        if addr is None or not self.log.in_memory(addr):
            return None
        record = self.log.read(addr, self.config.record_bytes)
        return record[KEY_BYTES:]
