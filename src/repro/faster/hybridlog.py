"""FASTER's hybrid log: memory tail, read-only region, cold storage.

The log is a single logical address space [0, tail).  Three regions:

* **mutable**: [read_only_addr, tail) — in memory, updated in place,
* **read-only**: [head_addr, read_only_addr) — in memory, copy-on-update,
* **stable**: [0, head_addr) — evicted to the storage device (SSD or
  remote memory); the device offset of a record equals its log address.

When the in-memory footprint exceeds the budget the head advances: the
oldest page is scheduled for flushing and dropped once the device
acknowledges the write.  Pages being flushed still serve reads from
memory, exactly like FASTER's closed-page protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["HybridLog", "HybridLogConfig"]


@dataclass
class HybridLogConfig:
    """Sizing of the hybrid log."""

    page_bits: int = 15  # 32 KB pages
    #: In-memory page budget (the paper's 5 GB / 1 GB local-log knobs).
    memory_pages: int = 64
    #: Fraction of in-memory space kept mutable (rest is read-only).
    mutable_fraction: float = 0.9

    @property
    def page_bytes(self) -> int:
        return 1 << self.page_bits

    def __post_init__(self) -> None:
        if self.memory_pages < 2:
            raise ValueError("need at least two in-memory pages")
        if not 0.0 < self.mutable_fraction <= 1.0:
            raise ValueError(f"bad mutable_fraction: {self.mutable_fraction}")


class HybridLog:
    """The log allocator and in-memory page store."""

    def __init__(self, config: Optional[HybridLogConfig] = None) -> None:
        self.config = config or HybridLogConfig()
        self.tail_addr = 0
        self.head_addr = 0
        self._pages: dict[int, bytearray] = {}
        #: Pages whose flush is in flight (still readable from memory).
        self._flushing: dict[int, bytearray] = {}
        self.pages_evicted = 0
        self.bytes_flushed = 0

    # ------------------------------------------------------------------
    # Region queries
    # ------------------------------------------------------------------
    @property
    def read_only_addr(self) -> int:
        """Boundary below which in-memory records are copy-on-update."""
        memory_span = self.tail_addr - self.head_addr
        mutable_span = int(self.config.memory_pages * self.config.page_bytes
                           * self.config.mutable_fraction)
        boundary = self.tail_addr - min(memory_span, mutable_span)
        return max(boundary, self.head_addr)

    def region_of(self, addr: int) -> str:
        """'mutable' | 'read-only' | 'stable' for a log address."""
        if addr >= self.read_only_addr:
            return "mutable"
        if addr >= self.head_addr:
            return "read-only"
        return "stable"

    def in_memory(self, addr: int) -> bool:
        page = addr >> self.config.page_bits
        return page in self._pages or page in self._flushing

    @property
    def memory_page_count(self) -> int:
        return len(self._pages)

    # ------------------------------------------------------------------
    # Allocation and access
    # ------------------------------------------------------------------
    def allocate(self, size: int) -> int:
        """Reserve ``size`` bytes at the tail; records never span pages."""
        page_bytes = self.config.page_bytes
        if size > page_bytes:
            raise ValueError(f"record of {size} bytes exceeds page size {page_bytes}")
        offset_in_page = self.tail_addr & (page_bytes - 1)
        if offset_in_page + size > page_bytes:
            self.tail_addr += page_bytes - offset_in_page  # pad to next page
        addr = self.tail_addr
        page = addr >> self.config.page_bits
        if page not in self._pages:
            self._pages[page] = bytearray(page_bytes)
        self.tail_addr += size
        return addr

    def _page_for(self, addr: int, length: int) -> tuple[bytearray, int]:
        page_bytes = self.config.page_bytes
        page = addr >> self.config.page_bits
        offset = addr & (page_bytes - 1)
        if offset + length > page_bytes:
            raise ValueError(f"access at {addr:#x} (+{length}) spans pages")
        buffer = self._pages.get(page)
        if buffer is None:
            buffer = self._flushing.get(page)
        if buffer is None:
            raise KeyError(f"page {page} not in memory (addr {addr:#x})")
        return buffer, offset

    def write(self, addr: int, data: bytes) -> None:
        buffer, offset = self._page_for(addr, len(data))
        buffer[offset : offset + len(data)] = data

    def read(self, addr: int, length: int) -> bytes:
        buffer, offset = self._page_for(addr, length)
        return bytes(buffer[offset : offset + length])

    # ------------------------------------------------------------------
    # Eviction protocol
    # ------------------------------------------------------------------
    def pages_over_budget(self) -> int:
        return max(0, len(self._pages) - self.config.memory_pages)

    def begin_evict(self) -> Optional[tuple[int, int, bytes]]:
        """Start evicting the oldest in-memory page.

        Returns ``(page_number, device_offset, page_bytes)`` for the
        caller to write to the storage device, or ``None`` if nothing is
        evictable (the tail page never evicts).
        """
        tail_page = self.tail_addr >> self.config.page_bits
        candidates = [p for p in self._pages if p < tail_page]
        if not candidates:
            return None
        page = min(candidates)
        buffer = self._pages.pop(page)
        self._flushing[page] = buffer
        data = bytes(buffer)
        self.bytes_flushed += len(data)
        return page, page << self.config.page_bits, data

    def finish_evict(self, page: int) -> None:
        """The device acknowledged the flush: drop the page, move head."""
        if page not in self._flushing:
            raise KeyError(f"page {page} is not being flushed")
        del self._flushing[page]
        self.pages_evicted += 1
        # Head = lowest address still in memory (or tail if none).
        resident = list(self._pages) + list(self._flushing)
        if resident:
            self.head_addr = min(resident) << self.config.page_bits
        else:
            self.head_addr = self.tail_addr
