"""A FASTER-like key-value store (the paper's case study, Section 7).

FASTER stores records in a *hybrid log*: the tail lives in memory and is
mutable, older data is read-only, and the cold prefix spills to a
storage device through the ``IDevice`` interface.  The paper integrates
Cowbird by instantiating an IDevice over remote memory; we reproduce
that integration point exactly — any
:class:`~repro.baselines.backends.Backend` (SSD, one-sided RDMA,
Cowbird, local memory) can serve as the storage layer.
"""

from repro.faster.hashindex import HashIndex
from repro.faster.hybridlog import HybridLog, HybridLogConfig
from repro.faster.store import FasterKv, FasterConfig, ReadOutcome

__all__ = [
    "FasterConfig",
    "FasterKv",
    "HashIndex",
    "HybridLog",
    "HybridLogConfig",
    "ReadOutcome",
]
